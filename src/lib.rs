//! # reachability
//!
//! A library of reachability indexes on graphs — a full implementation
//! of the techniques surveyed in *An Overview of Reachability Indexes
//! on Graphs* (Zhang, Bonifati, Özsu; SIGMOD-Companion 2023).
//!
//! The workspace is organized along the survey's structure:
//!
//! * [`graph`] — the substrate: CSR digraphs, edge-labeled graphs,
//!   SCC condensation, traversal, generators, reductions, and the
//!   paper's Figure-1 fixtures;
//! * [`plain`] — plain reachability indexes (§3 / Table 1): the
//!   tree-cover, 2-hop, and approximate-TC families behind one
//!   [`plain::ReachIndex`] trait;
//! * [`labeled`] — path-constrained indexes (§4 / Table 2): the
//!   alternation (LCR) and concatenation (RLC) families behind
//!   [`labeled::LcrIndex`] / [`labeled::RlcIndexApi`].
//!
//! ## Quickstart
//!
//! ```
//! use reachability::prelude::*;
//!
//! // the survey's Figure 1(a)
//! let graph = reachability::graph::fixtures::figure1a();
//! let dag = Dag::new(graph).expect("Figure 1 is acyclic");
//!
//! // a complete index: query by lookup only
//! let tree_cover = reachability::plain::tree_cover::TreeCover::build(&dag);
//! assert!(tree_cover.query(fixtures::A, fixtures::G)); // Qr(A,G) = true
//!
//! // a partial index: no-false-negative filter + guided traversal
//! let grail = reachability::plain::grail::build_grail(&dag, 2, 42);
//! assert!(grail.query(fixtures::A, fixtures::G));
//! assert!(!grail.query(fixtures::G, fixtures::A));
//!
//! // a label-constrained query on Figure 1(b):
//! // Qr(A, G, (friendOf ∪ follows)*) = false
//! let lg = reachability::graph::fixtures::figure1b();
//! let p2h = reachability::labeled::p2h::P2hPlus::build(&lg);
//! let constraint = LabelSet::from_labels([fixtures::FRIEND_OF, fixtures::FOLLOWS]);
//! assert!(!p2h.query(fixtures::A, fixtures::G, constraint));
//! ```

#![forbid(unsafe_code)]

/// Plain reachability indexes (re-export of `reach-core`).
pub use reach_core as plain;
/// The graph substrate (re-export of `reach-graph`).
pub use reach_graph as graph;
/// Path-constrained reachability indexes (re-export of `reach-labeled`).
pub use reach_labeled as labeled;

/// The types most programs need, in one import.
pub mod prelude {
    pub use reach_core::index::{
        Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
        ReachFilter, ReachIndex,
    };
    pub use reach_core::{Condensed, GuidedSearch, TransitiveClosure};
    pub use reach_graph::fixtures;
    pub use reach_graph::{
        Condensation, Dag, DiGraph, DiGraphBuilder, GraphError, Label, LabelSet, LabeledGraph,
        LabeledGraphBuilder, VertexId,
    };
    pub use reach_labeled::{
        ConstraintClass, ConstraintKind, LabeledIndexMeta, LcrFramework, LcrIndex, RlcIndexApi,
        SplsSet,
    };
}
