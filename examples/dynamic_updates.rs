//! Dynamic reachability: the survey's Table-1/Table-2 "Dynamic"
//! column exercised as a streaming workload.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```
//!
//! Streams a mixed insert/delete edge workload into the three dynamic
//! plain indexes (TOL, DAGGER, DBL — the latter insert-only, as the
//! paper notes) and the dynamic LCR index (DLCR), answering queries
//! between updates and auditing every answer against a scratch BFS.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reachability::graph::generators::{random_digraph, random_labeled_digraph, LabelDistribution};
use reachability::graph::traverse::{bfs_reaches, VisitMap};
use reachability::labeled::dlcr::Dlcr;
use reachability::labeled::online::lcr_bfs;
use reachability::plain::dagger::DynamicGrail;
use reachability::plain::dbl::Dbl;
use reachability::plain::tol::{OrderStrategy, Tol};
use reachability::prelude::*;
use std::time::Instant;

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let n = 300;

    // ---- plain dynamic indexes --------------------------------------
    let g0 = random_digraph(n, 600, &mut rng);
    let mut tol = Tol::build(&g0, OrderStrategy::DegreeDescending);
    let mut dbl = Dbl::build(&g0);

    let mut edges: Vec<(u32, u32)> = g0.edges().map(|(a, b)| (a.0, b.0)).collect();
    let mut audits = 0usize;
    let updates = 1_500usize;
    let t = Instant::now();
    let mut vm = VisitMap::new(n);
    for step in 0..updates {
        // 60% inserts, 40% deletes (DBL only sees the inserts)
        if rng.random_bool(0.6) || edges.is_empty() {
            let u = rng.random_range(0..n as u32);
            let mut v = rng.random_range(0..n as u32 - 1);
            if v >= u {
                v += 1;
            }
            if !edges.contains(&(u, v)) {
                tol.insert_edge(VertexId(u), VertexId(v));
                dbl.insert_edge(VertexId(u), VertexId(v));
                edges.push((u, v));
            }
        } else {
            let i = rng.random_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            tol.delete_edge(VertexId(u), VertexId(v));
            // DBL is insertion-only: rebuild (the honest cost the
            // survey's "insertion-only" classification implies)
            let g = DiGraph::from_edges(n, &edges);
            dbl = Dbl::build(&g);
        }
        // audit a few random queries against BFS every 50 updates
        if step % 50 == 0 {
            let g = DiGraph::from_edges(n, &edges);
            for _ in 0..20 {
                let s = VertexId(rng.random_range(0..n as u32));
                let q = VertexId(rng.random_range(0..n as u32));
                let expect = bfs_reaches(&g, s, q, &mut vm);
                assert_eq!(tol.query(s, q), expect, "TOL wrong after update {step}");
                assert_eq!(dbl.query(s, q), expect, "DBL wrong after update {step}");
                audits += 1;
            }
        }
    }
    println!(
        "plain stream: {updates} updates, {audits} audited queries, all correct ({:?})",
        t.elapsed()
    );
    println!(
        "  TOL labels now hold {} entries; DBL uses {} landmarks",
        tol.size_entries(),
        dbl.num_landmarks()
    );

    // ---- DAGGER on a DAG-maintaining stream -------------------------
    let base = reachability::graph::generators::random_dag(n, 500, &mut rng);
    let mut dagger = DynamicGrail::build(&base, 2, 11);
    let mut dag_edges: Vec<(u32, u32)> = base.graph().edges().map(|(a, b)| (a.0, b.0)).collect();
    let t = Instant::now();
    let mut dagger_audits = 0;
    for step in 0..500 {
        if rng.random_bool(0.5) || dag_edges.is_empty() {
            // forward edges keep the graph acyclic
            let u = rng.random_range(0..n as u32 - 1);
            let v = rng.random_range(u + 1..n as u32);
            dagger.insert_edge(VertexId(u), VertexId(v));
            if !dag_edges.contains(&(u, v)) {
                dag_edges.push((u, v));
            }
        } else {
            let i = rng.random_range(0..dag_edges.len());
            let (u, v) = dag_edges.swap_remove(i);
            dagger.delete_edge(VertexId(u), VertexId(v));
        }
        if step % 100 == 99 {
            // periodic re-tightening after deletion drift
            assert!(dagger.rebuild(), "stream maintained acyclicity");
        }
        let g = DiGraph::from_edges(n, &dag_edges);
        let s = VertexId(rng.random_range(0..n as u32));
        let q = VertexId(rng.random_range(0..n as u32));
        assert_eq!(dagger.query(s, q), bfs_reaches(&g, s, q, &mut vm));
        dagger_audits += 1;
    }
    println!(
        "DAGGER stream: 500 updates with periodic rebuilds, {dagger_audits} audits, all correct ({:?})",
        t.elapsed()
    );

    // ---- DLCR on a labeled stream ------------------------------------
    let lg = random_labeled_digraph(80, 200, 3, LabelDistribution::Uniform, &mut rng);
    let mut dlcr = Dlcr::build(&lg);
    let mut ledges: Vec<(u32, u8, u32)> = lg.edges().map(|(u, l, v)| (u.0, l.0, v.0)).collect();
    let t = Instant::now();
    let mut dlcr_audits = 0;
    for _ in 0..300 {
        if rng.random_bool(0.5) || ledges.is_empty() {
            let u = rng.random_range(0..80u32);
            let mut v = rng.random_range(0..79u32);
            if v >= u {
                v += 1;
            }
            let l = rng.random_range(0..3u8);
            dlcr.insert_edge(VertexId(u), Label(l), VertexId(v));
            if !ledges.contains(&(u, l, v)) {
                ledges.push((u, l, v));
            }
        } else {
            let i = rng.random_range(0..ledges.len());
            let (u, l, v) = ledges.swap_remove(i);
            dlcr.delete_edge(VertexId(u), Label(l), VertexId(v));
        }
        let g = LabeledGraph::from_edges(80, 3, &ledges);
        let s = VertexId(rng.random_range(0..80u32));
        let q = VertexId(rng.random_range(0..80u32));
        let allowed = LabelSet(rng.random_range(1..8u64));
        assert_eq!(dlcr.query(s, q, allowed), lcr_bfs(&g, s, q, allowed));
        dlcr_audits += 1;
    }
    println!(
        "DLCR stream: 300 labeled updates, {dlcr_audits} audits, all correct ({:?})",
        t.elapsed()
    );
    println!("\nAll dynamic indexes stayed exact under their update streams.");
}
