//! Social-network analysis with label-constrained reachability — the
//! survey's motivating LCR use case ("social relationships analysis in
//! social networks", §2.2).
//!
//! ```text
//! cargo run --release --example social_network
//! ```
//!
//! Generates a hub-dominated social graph with three relationship
//! types, then answers questions like "is `b` in `a`'s extended social
//! circle *without* going through employment edges?" with three
//! different LCR indexes, cross-checking them against each other and
//! the online baseline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reachability::graph::generators::{label_edges, power_law_dag, LabelDistribution};
use reachability::labeled::landmark::LandmarkIndex;
use reachability::labeled::online::lcr_bfs;
use reachability::labeled::p2h::P2hPlus;
use reachability::labeled::zou::single_source_gtc;
use reachability::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const FRIEND_OF: Label = Label(0);
const FOLLOWS: Label = Label(1);

fn main() {
    let mut rng = SmallRng::seed_from_u64(2023);
    let n = 3_000;
    // hub-dominated connection structure, Zipf-skewed relationship types
    let topology = power_law_dag(n, 3, &mut rng);
    let network = Arc::new(label_edges(
        topology.graph(),
        3,
        LabelDistribution::Zipf,
        &mut rng,
    ));
    println!(
        "social network: {} members, {} relationships",
        network.num_vertices(),
        network.num_edges()
    );

    let social_only = LabelSet::from_labels([FRIEND_OF, FOLLOWS]);
    let friends_only = LabelSet::singleton(FRIEND_OF);

    let t = Instant::now();
    let p2h = P2hPlus::build(&network);
    println!(
        "P2H+ built in {:?} ({} label entries)",
        t.elapsed(),
        p2h.size_entries()
    );

    let t = Instant::now();
    let landmark = LandmarkIndex::build(network.clone(), 16);
    println!(
        "landmark index built in {:?} ({} landmarks, {} SPLS entries)",
        t.elapsed(),
        landmark.num_landmarks(),
        landmark.size_entries()
    );

    // Q1: extended social circle, employment edges excluded
    let mut agree = 0;
    let mut social_pairs = 0;
    let queries: Vec<(VertexId, VertexId)> = (0..2_000)
        .map(|_| {
            (
                VertexId(rng.random_range(0..n as u32)),
                VertexId(rng.random_range(0..n as u32)),
            )
        })
        .collect();
    let t = Instant::now();
    for &(a, b) in &queries {
        let via_p2h = p2h.query(a, b, social_only);
        let via_landmark = landmark.query(a, b, social_only);
        let oracle = lcr_bfs(&network, a, b, social_only);
        assert_eq!(via_p2h, oracle, "P2H+ disagrees with BFS at {a}->{b}");
        assert_eq!(
            via_landmark, oracle,
            "landmark disagrees with BFS at {a}->{b}"
        );
        agree += 1;
        if oracle {
            social_pairs += 1;
        }
    }
    println!(
        "\nQ1 “can a reach b through friendOf/follows only?”: {agree} queries, \
         {social_pairs} connected, all 3 evaluators agree ({:?})",
        t.elapsed()
    );

    // Q2: influence set of the top hub under each constraint
    let hub = network
        .vertices()
        .max_by_key(|&v| network.out_degree(v))
        .unwrap();
    let rows = single_source_gtc(&network, hub);
    let reach = |allowed: LabelSet| {
        rows.iter().filter(|s| s.satisfies(allowed)).count() - 1 // minus the hub itself
    };
    println!("\nQ2 influence of the most-connected member (vertex {hub}):");
    println!(
        "   friendOf only          : {:>5} members",
        reach(friends_only)
    );
    println!(
        "   friendOf ∪ follows     : {:>5} members",
        reach(social_only)
    );
    println!(
        "   any relationship       : {:>5} members",
        reach(LabelSet::full(3))
    );

    // Q3: parse a constraint the way a query engine would receive it
    let alphabet = ["friendOf", "follows", "worksFor"];
    let ast = reachability::labeled::parse("(friendOf ∪ worksFor)*", &alphabet).unwrap();
    let ConstraintKind::Alternation(no_follows) = ast.classify() else {
        unreachable!()
    };
    let sample = queries
        .iter()
        .filter(|&&(a, b)| p2h.query(a, b, no_follows))
        .take(3);
    println!("\nQ3 pairs connected by “(friendOf ∪ worksFor)*”:");
    for &(a, b) in sample {
        println!("   member {a} ⇝ member {b}");
    }
}
