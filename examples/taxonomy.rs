//! Hierarchies with a few cross-links — the "XML databases" regime of
//! §3.1 where dual labeling and Tree+SSPI were designed to shine.
//!
//! ```text
//! cargo run --release --example taxonomy
//! ```
//!
//! Builds a product-category taxonomy (a deep tree) plus a handful of
//! "see also" cross-links, and compares the tree-cover indexes that
//! exploit the almost-tree structure against a 2-hop index and plain
//! traversal: with t non-tree edges, dual labeling stores n intervals
//! plus a t×t link table — and the paper's caveat ("works well only if
//! the number of non-tree edges is very low") becomes visible as t grows.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reachability::graph::generators::random_tree_plus_edges;
use reachability::plain::dual_labeling::DualLabeling;
use reachability::plain::pll::Pll;
use reachability::plain::sspi::TreeSspi;
use reachability::plain::tree_cover::TreeCover;
use reachability::prelude::*;
use std::time::Instant;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2024);
    let n = 5_000;

    println!("taxonomy: {n} categories, growing cross-link count\n");
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>12}",
        "cross-links", "dual-build", "dual-entries", "sspi-entries", "pll-entries"
    );
    for extra in [0usize, 10, 50, 200, 1000] {
        let dag = random_tree_plus_edges(n, extra, &mut SmallRng::seed_from_u64(7));
        let t0 = Instant::now();
        let dual = DualLabeling::build(&dag);
        let dual_build = t0.elapsed();
        let sspi = TreeSspi::build(&dag);
        let pll = Pll::build(dag.graph());
        println!(
            "{:<12} {:>10} {:>14} {:>14} {:>12}",
            extra,
            format!("{dual_build:.1?}"),
            dual.size_entries(),
            sspi.size_entries(),
            pll.size_entries()
        );
        // all agree, of course
        for _ in 0..200 {
            let s = VertexId(rng.random_range(0..n as u32));
            let t = VertexId(rng.random_range(0..n as u32));
            let expect = pll.query(s, t);
            assert_eq!(dual.query(s, t), expect);
            assert_eq!(sspi.query(s, t), expect);
        }
    }
    println!(
        "\nThe t×t link table grows quadratically in the cross-link count — the\n\
         survey's point about dual labeling's niche. The tree-cover family is\n\
         unbeatable while the data is almost a tree:"
    );

    // category subtree checks: the bread-and-butter taxonomy query
    let dag = random_tree_plus_edges(n, 25, &mut SmallRng::seed_from_u64(7));
    let tree_cover = TreeCover::build(&dag);
    let dual = DualLabeling::build(&dag);
    let queries: Vec<(VertexId, VertexId)> = (0..50_000)
        .map(|_| {
            (
                VertexId(rng.random_range(0..n as u32)),
                VertexId(rng.random_range(0..n as u32)),
            )
        })
        .collect();
    for (name, idx) in [
        ("tree cover", &tree_cover as &dyn ReachIndex),
        ("dual labeling", &dual as &dyn ReachIndex),
    ] {
        let t0 = Instant::now();
        let mut subcategories = 0usize;
        for &(s, t) in &queries {
            if idx.query(s, t) {
                subcategories += 1;
            }
        }
        println!(
            "  {name:<14} {} ancestor checks in {:.1?} ({subcategories} positive)",
            queries.len(),
            t0.elapsed()
        );
    }
}
