//! Quickstart: the survey's Figure 1 worked end-to-end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds one index from each family over the paper's example graphs
//! and replays the queries the paper discusses.

use reachability::graph::fixtures::{self, label_name, vertex_name};
use reachability::prelude::*;

fn main() {
    // ---- the plain graph of Figure 1(a) -----------------------------
    let graph = fixtures::figure1a();
    println!(
        "Figure 1(a): {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let dag = Dag::new(graph).expect("Figure 1 is acyclic");

    // A complete tree-cover index: answers by lookup only.
    let tree_cover = reachability::plain::tree_cover::TreeCover::build(&dag);
    // A partial index: GRAIL's no-false-negative filter + guided DFS.
    let grail = reachability::plain::grail::build_grail(&dag, 2, 42);
    // A 2-hop labeling on the general graph.
    let pll = reachability::plain::pll::Pll::build(dag.graph());

    println!("\nQr(A, G) — the paper's example, witness path (A, D, H, G):");
    for (name, answer) in [
        ("tree cover", tree_cover.query(fixtures::A, fixtures::G)),
        ("GRAIL", grail.query(fixtures::A, fixtures::G)),
        ("PLL", pll.query(fixtures::A, fixtures::G)),
    ] {
        println!("  {name:<12} => {answer}");
        assert!(answer);
    }

    println!("\nFull reachability matrix (tree cover):");
    print!("     ");
    for t in dag.vertices() {
        print!("{} ", vertex_name(t));
    }
    println!();
    for s in dag.vertices() {
        print!("  {}: ", vertex_name(s));
        for t in dag.vertices() {
            print!("{} ", if tree_cover.query(s, t) { "1" } else { "." });
        }
        println!();
    }

    // ---- the edge-labeled graph of Figure 1(b) ----------------------
    let lg = fixtures::figure1b();
    println!(
        "\nFigure 1(b): {} labeled edges over {{friendOf, follows, worksFor}}",
        lg.num_edges()
    );

    let p2h = reachability::labeled::p2h::P2hPlus::build(&lg);

    // constraints can be parsed from the paper's syntax
    let alphabet = ["friendOf", "follows", "worksFor"];
    let ast = reachability::labeled::parse("(friendOf ∪ follows)*", &alphabet).unwrap();
    let ConstraintKind::Alternation(allowed) = ast.classify() else {
        unreachable!("this constraint is an alternation");
    };
    println!(
        "\nQr(A, G, (friendOf ∪ follows)*) = {}   (every A→G path uses worksFor)",
        p2h.query(fixtures::A, fixtures::G, allowed)
    );
    assert!(!p2h.query(fixtures::A, fixtures::G, allowed));

    // a concatenation constraint needs the RLC index
    let rlc = reachability::labeled::rlc::RlcIndex::build(&lg, 2);
    let unit = [fixtures::WORKS_FOR, fixtures::FRIEND_OF];
    let answer = rlc.try_query(fixtures::L, fixtures::B, &unit).unwrap();
    println!(
        "Qr(L, B, ({} · {})*) = {answer}",
        label_name(unit[0]),
        label_name(unit[1])
    );
    assert!(answer);

    println!("\nEvery claim from the paper's Figure 1 reproduced. Next steps:");
    println!("  cargo run -p reach-bench --bin table1 -- --empirical");
    println!("  cargo run -p reach-bench --bin table2 -- --empirical");
    println!("  cargo run -p reach-bench --bin claims");
}
