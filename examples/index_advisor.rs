//! An index advisor: measure the Table-1 candidates on *your* workload
//! and pick one — the decision §5 of the survey says GDBMSs will have
//! to automate.
//!
//! ```text
//! cargo run --release --example index_advisor
//! ```
//!
//! The advisor scores each candidate index on a sample of the target
//! workload (build time, memory, query latency), filters by hard
//! requirements (dynamism, memory ceiling), and ranks the survivors —
//! demonstrating how the uniform `ReachIndex` + `IndexMeta` surface
//! makes the whole taxonomy mechanically comparable.

use reach_bench::queries::query_mix;
use reach_bench::registry::{build_plain, plain_feasible, plain_names};
use reach_bench::report::{fmt_bytes, fmt_duration, timed, Table};
use reach_bench::workloads::Shape;
use reachability::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// What the application needs from its reachability index.
struct Requirements {
    /// Must support edge insertions (and deletions if `deletes`).
    inserts: bool,
    deletes: bool,
    /// Hard ceiling on index memory.
    max_bytes: usize,
    /// Fraction of queries expected to be unreachable.
    negative_share: f64,
}

struct Candidate {
    name: &'static str,
    meta: IndexMeta,
    build: Duration,
    bytes: usize,
    avg_query: Duration,
}

fn admissible(meta: &IndexMeta, req: &Requirements) -> bool {
    match (req.inserts, req.deletes) {
        (false, _) => true,
        (true, false) => meta.dynamism != Dynamism::Static,
        (true, true) => meta.dynamism == Dynamism::InsertDelete,
    }
}

fn main() {
    // the application's workload: a hub-heavy dependency graph,
    // mostly-negative queries, occasional edge insertions
    let n = 20_000;
    let graph = Arc::new(Shape::PowerLaw.generate(n, 77));
    let req = Requirements {
        inserts: true,
        deletes: false,
        max_bytes: 4 << 20,
        negative_share: 0.8,
    };
    println!(
        "workload: power-law digraph n={} m={}, {:.0}% negative queries, \
         insert-capable index required, memory ceiling {}",
        graph.num_vertices(),
        graph.num_edges(),
        req.negative_share * 100.0,
        fmt_bytes(req.max_bytes)
    );

    let mix = query_mix(&graph, 2_000, 1.0 - req.negative_share, 5);
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut rejected: Vec<(String, &'static str)> = Vec::new();

    for name in plain_names() {
        if name.starts_with("online") || !plain_feasible(name, n, graph.num_edges()) {
            continue;
        }
        let (idx, build) = timed(|| build_plain(name, &graph));
        let meta = idx.meta();
        if !admissible(&meta, &req) {
            rejected.push((name.to_string(), "static index, workload needs inserts"));
            continue;
        }
        if idx.size_bytes() > req.max_bytes {
            rejected.push((name.to_string(), "exceeds the memory ceiling"));
            continue;
        }
        let (hits, total) = timed(|| mix.pairs.iter().filter(|&&(s, t)| idx.query(s, t)).count());
        assert_eq!(hits, mix.positives);
        candidates.push(Candidate {
            name,
            meta,
            build,
            bytes: idx.size_bytes(),
            avg_query: total / mix.pairs.len() as u32,
        });
    }

    // rank by query latency on the sampled mix (the requirement that
    // actually recurs); ties broken by footprint
    candidates.sort_by_key(|c| (c.avg_query, c.bytes));

    println!("\nadmissible candidates, best first:");
    let mut table = Table::new(["rank", "index", "dynamism", "avg query", "bytes", "build"]);
    for (i, c) in candidates.iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            c.name.to_string(),
            format!("{:?}", c.meta.dynamism),
            fmt_duration(c.avg_query),
            fmt_bytes(c.bytes),
            fmt_duration(c.build),
        ]);
    }
    println!("{}", table.render());

    println!("rejected:");
    for (name, why) in &rejected {
        println!("  {name:<14} {why}");
    }

    let winner = candidates.first().expect("some index is always admissible");
    println!(
        "\nrecommendation: {} — {:?} updates, {} per query at {} resident",
        winner.name,
        winner.meta.dynamism,
        fmt_duration(winner.avg_query),
        fmt_bytes(winner.bytes)
    );
    println!(
        "(the no-false-negative partials dominate mostly-negative mixes — the\n\
         survey's §5 argument, measured on your own workload)"
    );
}
