//! Money-laundering detection with concatenation-constrained
//! reachability — the survey's motivating RLC use case ("money
//! laundering detection in financial transaction networks", §2.2).
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```
//!
//! A laundering chain alternates *placement* (cash into a mule
//! account) and *integration* (value back out into assets); the
//! repeated unit `(deposit · withdraw)*` over the transaction graph is
//! exactly a recursive label-concatenated reachability query. The
//! example plants laundering chains inside a benign transaction
//! network and recovers precisely the planted source→sink pairs with
//! the RLC index, cross-checked against the online product-automaton
//! traversal.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reachability::labeled::online::{rlc_bfs, rpq_bfs};
use reachability::labeled::rlc::RlcIndex;
use reachability::labeled::{parse, Nfa};
use reachability::prelude::*;
use std::time::Instant;

const DEPOSIT: Label = Label(0);
const WITHDRAW: Label = Label(1);
const TRANSFER: Label = Label(2);

fn main() {
    let mut rng = SmallRng::seed_from_u64(777);
    let accounts = 400;
    let mut builder = LabeledGraphBuilder::new(accounts, 3);

    // benign background traffic: ordinary transfers
    for _ in 0..1_200 {
        let a = rng.random_range(0..accounts as u32);
        let mut b = rng.random_range(0..accounts as u32 - 1);
        if b >= a {
            b += 1;
        }
        builder.add_edge(VertexId(a), TRANSFER, VertexId(b));
    }
    // occasional legitimate deposits/withdrawals (not forming chains)
    for _ in 0..150 {
        let a = rng.random_range(0..accounts as u32);
        let mut b = rng.random_range(0..accounts as u32 - 1);
        if b >= a {
            b += 1;
        }
        let l = if rng.random_bool(0.5) {
            DEPOSIT
        } else {
            WITHDRAW
        };
        builder.add_edge(VertexId(a), l, VertexId(b));
    }

    // planted laundering chains: deposit → withdraw repeated 2–4 times
    let mut planted: Vec<(VertexId, VertexId)> = Vec::new();
    for chain in 0..5 {
        let hops = 2 + chain % 3;
        let mut cur = VertexId(rng.random_range(0..accounts as u32));
        let src = cur;
        for _ in 0..hops {
            let mule = VertexId(rng.random_range(0..accounts as u32));
            let out = VertexId(rng.random_range(0..accounts as u32));
            builder.add_edge(cur, DEPOSIT, mule);
            builder.add_edge(mule, WITHDRAW, out);
            cur = out;
        }
        planted.push((src, cur));
    }
    let network = builder.build();
    println!(
        "transaction network: {} accounts, {} transactions, {} planted chains",
        network.num_vertices(),
        network.num_edges(),
        planted.len()
    );

    // build the RLC index for units up to length 2
    let t = Instant::now();
    let rlc = RlcIndex::build(&network, 2);
    println!(
        "RLC index built in {:?} ({} entries, kmax = {})",
        t.elapsed(),
        rlc.size_entries(),
        rlc.kmax()
    );

    // sweep all ordered account pairs for the laundering pattern
    let unit = [DEPOSIT, WITHDRAW];
    let t = Instant::now();
    let mut flagged: Vec<(VertexId, VertexId)> = Vec::new();
    for s in network.vertices() {
        for d in network.vertices() {
            if s != d && rlc.try_query(s, d, &unit).unwrap() {
                flagged.push((s, d));
            }
        }
    }
    println!(
        "\nQr(s, d, (deposit · withdraw)*) swept over {} pairs in {:?}: {} flagged",
        accounts * (accounts - 1),
        t.elapsed(),
        flagged.len()
    );

    // every planted chain must be among the flagged pairs — and for an
    // investigator, the witness path explains each alert
    for &(src, dst) in &planted {
        assert!(
            flagged.contains(&(src, dst)),
            "planted chain {src}->{dst} missed"
        );
        let w = reachability::labeled::witness::rlc_witness(&network, src, dst, &unit)
            .expect("flagged pairs have witnesses");
        let hops: Vec<String> = w.vertices.iter().map(|v| v.to_string()).collect();
        println!(
            "  planted chain {src} ⇝ {dst}: flagged ✓  ({} repetitions via {})",
            w.len() / unit.len(),
            hops.join(" → ")
        );
    }

    // cross-check a sample against the online evaluators, including
    // the general automaton route for the same constraint
    let nfa = Nfa::compile(
        &parse(
            "(deposit · withdraw)*",
            &["deposit", "withdraw", "transfer"],
        )
        .unwrap(),
    );
    let mut checked = 0;
    for s in network.vertices().step_by(17) {
        for d in network.vertices().step_by(13) {
            if s == d {
                continue;
            }
            let by_index = rlc.try_query(s, d, &unit).unwrap();
            assert_eq!(by_index, rlc_bfs(&network, s, d, &unit));
            assert_eq!(by_index, rpq_bfs(&network, s, d, &nfa));
            checked += 1;
        }
    }
    println!("\ncross-checked {checked} pairs against product-BFS and the NFA evaluator ✓");

    // show why plain reachability is NOT enough: transfers connect far
    // more pairs than the laundering pattern does
    let plain = network.to_digraph();
    let tc = TransitiveClosure::build(&plain);
    let plain_pairs = tc.num_pairs() - accounts;
    println!(
        "\nplain reachability connects {plain_pairs} pairs — the path constraint \
         narrows that to {} ({}x fewer false leads)",
        flagged.len(),
        plain_pairs / flagged.len().max(1)
    );
}
