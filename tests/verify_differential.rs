//! The differential property suite of the verification subsystem:
//!
//! * every plain registry index agrees with the materialized
//!   transitive-closure baseline on every pair of random *cyclic*
//!   graphs (all-pairs, not sampled — the graphs are small enough);
//! * every LCR registry index agrees with the automaton-guided BFS
//!   (`online::rpq_bfs`) when driven through an alternation NFA
//!   compiled from the allowed label set, including the degenerate
//!   empty mask (where only `s == t` holds);
//! * the audit subsystem itself (`audit_plain` / `audit_lcr`) reports
//!   every registry index clean on fresh random graphs, seeds varied.
//!
//! Each test draws its cases from a seeded `SmallRng`, so failures are
//! reproducible from the printed case seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use reach_bench::registry::{
    build_lcr, build_plain_prepared, lcr_feasible, lcr_names, plain_feasible, plain_names,
    BuildOpts,
};
use reach_core::audit::{audit_plain, AuditConfig};
use reach_labeled::{audit_lcr, Nfa};
use reachability::graph::generators::{random_digraph, random_labeled_digraph, LabelDistribution};
use reachability::graph::PreparedGraph;
use reachability::prelude::*;
use std::sync::Arc;

#[test]
fn every_plain_index_matches_transitive_closure_on_cyclic_graphs() {
    for seed in [101u64, 202, 303] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Arc::new(random_digraph(70, 210, &mut rng));
        let prepared = PreparedGraph::new_shared(Arc::clone(&g));
        let tc = TransitiveClosure::build(&g);
        for name in plain_names() {
            if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
                continue;
            }
            let idx = build_plain_prepared(name, &prepared, &BuildOpts::default());
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(
                        idx.query(s, t),
                        tc.reaches(s, t),
                        "{name} (seed {seed}): mismatch at {s:?}->{t:?}"
                    );
                }
            }
        }
    }
}

/// Compiles `(l1 | l2 | …)*` over the labels of `mask` and checks the
/// index against the NFA-guided traversal — a second, independent
/// ground truth beside `lcr_bfs` (which the audit already uses).
fn alternation_expr(mask: LabelSet) -> Option<String> {
    let labels: Vec<String> = mask.iter().map(|l| l.0.to_string()).collect();
    if labels.is_empty() {
        return None;
    }
    Some(format!("({})*", labels.join("|")))
}

#[test]
fn every_lcr_index_matches_the_automaton_guided_bfs() {
    use reachability::labeled::online::rpq_bfs;
    for seed in [404u64, 505] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Arc::new(random_labeled_digraph(
            40,
            130,
            3,
            LabelDistribution::Zipf,
            &mut rng,
        ));
        let k = g.num_labels();
        let masks: Vec<LabelSet> = (0..1u64 << k).map(LabelSet).collect();
        for name in lcr_names() {
            if !lcr_feasible(name, g.num_vertices()) {
                continue;
            }
            let idx = build_lcr(name, &g);
            for &mask in &masks {
                match alternation_expr(mask) {
                    Some(expr) => {
                        let ast = reachability::labeled::parse(&expr, &[]).expect("valid expr");
                        let nfa = Nfa::compile(&ast);
                        for s in g.vertices() {
                            for t in g.vertices() {
                                assert_eq!(
                                    idx.query(s, t, mask),
                                    rpq_bfs(&g, s, t, &nfa),
                                    "{name} (seed {seed}): mismatch at {s:?}->{t:?} under {expr}"
                                );
                            }
                        }
                    }
                    None => {
                        // empty mask: only the empty path s == t remains
                        for s in g.vertices() {
                            for t in g.vertices() {
                                assert_eq!(
                                    idx.query(s, t, mask),
                                    s == t,
                                    "{name} (seed {seed}): empty-mask mismatch at {s:?}->{t:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn audit_reports_every_plain_index_clean_across_seeds() {
    for seed in [606u64, 707] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_digraph(100, 280, &mut rng);
        let prepared = PreparedGraph::new(g);
        let cfg = AuditConfig {
            pairs: 300,
            seed: seed ^ 0xC0FFEE,
        };
        for name in plain_names() {
            if !plain_feasible(name, prepared.num_vertices(), prepared.num_edges()) {
                continue;
            }
            let outcome =
                audit_plain(name, &prepared, &BuildOpts::default(), &cfg).expect("registry name");
            assert!(
                outcome.is_clean(),
                "{name} (seed {seed}) violations: {:#?}",
                outcome.violations
            );
        }
    }
}

#[test]
fn audit_reports_every_lcr_index_clean_across_seeds() {
    for seed in [808u64, 909] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Arc::new(random_labeled_digraph(
            50,
            160,
            4,
            LabelDistribution::Uniform,
            &mut rng,
        ));
        let cfg = AuditConfig {
            pairs: 200,
            seed: seed ^ 0xBEEF,
        };
        for name in lcr_names() {
            if !lcr_feasible(name, g.num_vertices()) {
                continue;
            }
            let outcome = audit_lcr(name, &g, &BuildOpts::default(), &cfg).expect("registry name");
            assert!(
                outcome.is_clean(),
                "{name} (seed {seed}) violations: {:#?}",
                outcome.violations
            );
        }
    }
}
