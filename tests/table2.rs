//! Integration test: the implemented classification matrix matches the
//! survey's **Table 2** row by row.

use reach_bench::registry::build_lcr;
use reachability::graph::fixtures;
use reachability::labeled::rlc::RlcIndex;
use reachability::labeled::RlcIndexApi;
use reachability::prelude::*;
use std::sync::Arc;

/// One expected row: (technique, framework, constraint, type, input, dynamic).
fn expected_rows() -> Vec<(
    &'static str,
    LcrFramework,
    ConstraintClass,
    Completeness,
    InputClass,
    Dynamism,
)> {
    use Completeness::*;
    use ConstraintClass::*;
    use Dynamism::*;
    use InputClass::General;
    use LcrFramework::*;
    vec![
        (
            "Jin et al.",
            TreeCover,
            Alternation,
            Complete,
            General,
            Static,
        ),
        (
            "Chen et al.",
            TreeCover,
            Alternation,
            Complete,
            General,
            Static,
        ),
        (
            "Zou et al.",
            Gtc,
            Alternation,
            Complete,
            General,
            InsertDelete,
        ),
        ("Landmark index", Gtc, Alternation, Partial, General, Static),
        ("P2H+", TwoHop, Alternation, Complete, General, Static),
        ("DLCR", TwoHop, Alternation, Complete, General, InsertDelete),
        (
            "RLC index",
            TwoHop,
            Concatenation,
            Complete,
            General,
            Static,
        ),
    ]
}

#[test]
fn matrix_matches_the_papers_table_2() {
    let g = Arc::new(fixtures::figure1b());
    for (name, framework, constraint, completeness, input, dynamism) in expected_rows() {
        let m = if name == "RLC index" {
            RlcIndex::build(&g, 2).meta()
        } else {
            build_lcr(name, &g).meta()
        };
        assert_eq!(m.name, name);
        assert_eq!(m.framework, framework, "{name}: framework column");
        assert_eq!(m.constraint, constraint, "{name}: constraint column");
        assert_eq!(m.completeness, completeness, "{name}: index-type column");
        assert_eq!(m.input, input, "{name}: input column");
        assert_eq!(m.dynamism, dynamism, "{name}: dynamic column");
    }
}

#[test]
fn no_index_supports_both_constraint_classes() {
    // §4: "there is currently no index that can support both query
    // classes" — encoded in the type system: LcrIndex vs RlcIndexApi
    // are distinct traits, and every meta claims exactly one class.
    let g = Arc::new(fixtures::figure1b());
    let mut alternation = 0;
    let mut concatenation = 0;
    for (name, ..) in expected_rows() {
        let m = if name == "RLC index" {
            RlcIndex::build(&g, 2).meta()
        } else {
            build_lcr(name, &g).meta()
        };
        match m.constraint {
            ConstraintClass::Alternation => alternation += 1,
            ConstraintClass::Concatenation => concatenation += 1,
        }
    }
    assert_eq!(alternation, 6);
    assert_eq!(concatenation, 1);
}

#[test]
fn landmark_is_the_only_partial_lcr_index() {
    // §5: "the only partial index for path-constrained reachability
    // queries is the landmark index"
    let partials: Vec<&str> = expected_rows()
        .iter()
        .filter(|r| r.3 == Completeness::Partial)
        .map(|r| r.0)
        .collect();
    assert_eq!(partials, vec!["Landmark index"]);
}
