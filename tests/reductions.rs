//! Integration test for §3.4's observation that graph reductions
//! (SCARAB / ER / RCN slot) are *orthogonal* to the indexing
//! techniques: any index built on a reduced graph answers exactly the
//! queries of the original.

use reach_bench::registry::{build_plain, plain_feasible, plain_names};
use reach_bench::workloads::Shape;
use reachability::graph::reduction::{equivalence_reduction, transitive_reduction};
use reachability::prelude::*;
use std::sync::Arc;

#[test]
fn transitive_reduction_composes_with_every_index() {
    let g = Shape::Dense.generate(60, 31);
    let dag = Dag::new(g.clone()).unwrap();
    let reduced = Arc::new(transitive_reduction(&dag));
    assert!(
        reduced.num_edges() < g.num_edges(),
        "dense DAGs have shortcuts"
    );
    let tc = TransitiveClosure::build(&g);
    for name in plain_names() {
        if !plain_feasible(name, 60, g.num_edges()) {
            continue;
        }
        let idx = build_plain(name, &reduced);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    idx.query(s, t),
                    tc.reaches(s, t),
                    "{name} on the reduced graph at {s:?}->{t:?}"
                );
            }
        }
    }
}

#[test]
fn equivalence_reduction_composes_with_every_index() {
    // a layered DAG has many same-neighborhood twins
    let g = Shape::Deep.generate(100, 7);
    let er = equivalence_reduction(&g);
    assert!(
        er.graph.num_vertices() <= g.num_vertices(),
        "reduction never grows the graph"
    );
    let tc = TransitiveClosure::build(&g);
    let reduced = Arc::new(er.graph.clone());
    let reduced_tc = TransitiveClosure::build(&reduced);
    for name in ["GRAIL", "BFL", "PLL", "Feline"] {
        let idx = build_plain(name, &reduced);
        for s in g.vertices() {
            for t in g.vertices() {
                let (cs, ct) = (er.class_of[s.index()], er.class_of[t.index()]);
                if cs == ct {
                    // distinct same-class endpoints reach each other
                    // iff a nontrivial cycle passes through the class
                    let cycles = reduced
                        .out_neighbors(cs)
                        .iter()
                        .any(|&d| reduced_tc.reaches(d, cs));
                    let expect = s == t || cycles;
                    assert_eq!(tc.reaches(s, t), expect, "class semantics at {s:?}->{t:?}");
                    continue;
                }
                assert_eq!(
                    idx.query(cs, ct),
                    tc.reaches(s, t),
                    "{name} via classes at {s:?}->{t:?}"
                );
            }
        }
    }
}

#[test]
fn reductions_preserve_index_size_ordering() {
    // the point of reducing first: indexes get smaller, answers don't change
    let g = Shape::Dense.generate(300, 13);
    let dag = Dag::new(g.clone()).unwrap();
    let reduced = Arc::new(transitive_reduction(&dag));
    let original = Arc::new(g);
    for name in ["Tree cover", "PLL", "TFL"] {
        let full = build_plain(name, &original);
        let slim = build_plain(name, &reduced);
        assert!(
            slim.size_entries() <= full.size_entries(),
            "{name}: reduction should not grow the index ({} > {})",
            slim.size_entries(),
            full.size_entries()
        );
    }
}
