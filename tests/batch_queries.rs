//! Randomized property tests for the batch-query path:
//!
//! * the multi-source bit-parallel BFS (`traverse::batch_reaches`)
//!   agrees with one BFS per pair on arbitrary DAGs and digraphs;
//! * `ReachIndex::query_batch` — both the default per-pair loop and
//!   every override (online baselines, guided search) — agrees with
//!   `query` for every registry-built index;
//! * `QueryEngine` output is byte-identical across thread counts, so
//!   sharding (including its locality-aware source sort) is invisible.
//!
//! Each test draws its cases from a seeded `SmallRng`, so failures are
//! reproducible from the printed case seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_bench::registry::{build_plain, plain_feasible, plain_names};
use reachability::graph::traverse;
use reachability::plain::QueryEngine;
use reachability::prelude::*;
use std::sync::Arc;

const CASES: u64 = 48;

/// An arbitrary DAG as (n, forward edges).
fn random_dag(rng: &mut SmallRng) -> (usize, Vec<(u32, u32)>) {
    let n = rng.random_range(4usize..24);
    let m = rng.random_range(0usize..60);
    let edges = (0..m)
        .map(|_| {
            let u = rng.random_range(0..n as u32 - 1);
            let d = rng.random_range(0..n as u32);
            let v = u + 1 + d % (n as u32 - 1 - u).max(1);
            (u, v.min(n as u32 - 1).max(u + 1))
        })
        .collect();
    (n, edges)
}

/// An arbitrary digraph (cycles allowed), no self-loops.
fn random_digraph(rng: &mut SmallRng) -> (usize, Vec<(u32, u32)>) {
    let n = rng.random_range(4usize..20);
    let m = rng.random_range(0usize..50);
    let edges = (0..m)
        .map(|_| {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32 - 1);
            let v = if v >= u { v + 1 } else { v };
            (u, v)
        })
        .collect();
    (n, edges)
}

/// A pair list with repeated sources, so the word-packing and
/// source-grouping paths both get exercised.
fn random_pairs(n: usize, rng: &mut SmallRng) -> Vec<(VertexId, VertexId)> {
    let q = rng.random_range(0usize..80);
    (0..q)
        .map(|_| {
            let s = VertexId(rng.random_range(0..n as u32) / 2);
            let t = VertexId(rng.random_range(0..n as u32));
            (s, t)
        })
        .collect()
}

#[test]
fn multi_source_bfs_matches_per_pair_bfs_on_dags() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB175_0000 + case);
        let (n, edges) = random_dag(&mut rng);
        let g = DiGraph::from_edges(n, &edges);
        let pairs = random_pairs(n, &mut rng);
        let got = traverse::batch_reaches(&g, &pairs);
        let mut visit = reachability::graph::VisitMap::new(n);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(
                got[i],
                traverse::bfs_reaches(&g, s, t, &mut visit),
                "case {case}: {s:?}->{t:?}"
            );
        }
    }
}

#[test]
fn multi_source_bfs_matches_per_pair_bfs_on_digraphs() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB176_0000 + case);
        let (n, edges) = random_digraph(&mut rng);
        let g = DiGraph::from_edges(n, &edges);
        // all-pairs, so cycles and unreachable pairs are both covered
        let pairs: Vec<(VertexId, VertexId)> = g
            .vertices()
            .flat_map(|s| g.vertices().map(move |t| (s, t)))
            .collect();
        let got = traverse::batch_reaches(&g, &pairs);
        let tc = TransitiveClosure::build(&g);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(got[i], tc.reaches(s, t), "case {case}: {s:?}->{t:?}");
        }
    }
}

#[test]
fn ms_bfs_masks_equal_forward_closures() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB177_0000 + case);
        let (n, edges) = random_digraph(&mut rng);
        let g = DiGraph::from_edges(n, &edges);
        let k = rng.random_range(1usize..=n.min(70));
        let sources: Vec<VertexId> = (0..k)
            .map(|_| VertexId(rng.random_range(0..n as u32)))
            .collect();
        let masks = traverse::ms_bfs_masks(&g, &sources);
        for (si, &s) in sources.iter().enumerate() {
            let closure = traverse::forward_closure(&g, s);
            for v in g.vertices() {
                let bit = masks[v.index()] >> si & 1 == 1;
                assert_eq!(
                    bit,
                    closure.contains(&v),
                    "case {case}: source {s:?} (lane {si}) at {v:?}"
                );
            }
        }
    }
}

#[test]
fn query_batch_matches_per_pair_query_for_every_registry_index() {
    for case in 0..12 {
        let mut rng = SmallRng::seed_from_u64(0xBA7C_0000 + case);
        let (n, edges) = random_digraph(&mut rng);
        let g = Arc::new(DiGraph::from_edges(n, &edges));
        let pairs = random_pairs(n, &mut rng);
        for name in plain_names() {
            if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
                continue;
            }
            let idx = build_plain(name, &g);
            let batch = idx.query_batch(&pairs);
            for (i, &(s, t)) in pairs.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    idx.query(s, t),
                    "case {case}: {name} at {s:?}->{t:?}"
                );
            }
        }
    }
}

#[test]
fn query_engine_is_identical_for_one_and_eight_threads() {
    for case in 0..12 {
        let mut rng = SmallRng::seed_from_u64(0xE291_0000 + case);
        let (n, edges) = random_digraph(&mut rng);
        let g = Arc::new(DiGraph::from_edges(n, &edges));
        let pairs = random_pairs(n, &mut rng);
        for name in ["online-BFS", "online-BiBFS", "GRAIL", "BFL", "PLL"] {
            if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
                continue;
            }
            let idx = build_plain(name, &g);
            let one = QueryEngine::new(1).run(idx.as_ref(), &pairs);
            let eight = QueryEngine::new(8).run(idx.as_ref(), &pairs);
            assert_eq!(
                one, eight,
                "case {case}: {name} diverged across thread counts"
            );
            for (i, &(s, t)) in pairs.iter().enumerate() {
                assert_eq!(
                    one[i],
                    idx.query(s, t),
                    "case {case}: {name} at {s:?}->{t:?}"
                );
            }
        }
    }
}
