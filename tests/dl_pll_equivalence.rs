//! Integration test for the survey's §3.2 claim: *"It has been proven
//! that DL and PLL are equivalent"* — both are TOL instantiated with
//! the degree order, one with canonical labels, one with
//! coverage-pruned labels, and they must answer identically.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use reach_bench::workloads::{Shape, ALL_SHAPES};
use reachability::plain::pll::Pll;
use reachability::plain::tol::build_dl;
use reachability::prelude::*;

#[test]
fn dl_and_pll_answer_identically_on_every_shape() {
    for shape in ALL_SHAPES {
        let g = shape.generate(80, 13);
        let dl = build_dl(&g);
        let pll = Pll::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    dl.query(s, t),
                    pll.query(s, t),
                    "{} at {s:?}->{t:?}",
                    shape.name()
                );
            }
        }
    }
}

#[test]
fn pll_labels_are_never_larger_than_canonical_dl_labels() {
    // the pruning is the whole point: PLL ⊆ canonical label volume
    let mut sizes = Vec::new();
    for shape in [Shape::Sparse, Shape::PowerLaw, Shape::Dense] {
        let g = shape.generate(300, 17);
        let dl = build_dl(&g);
        let pll = Pll::build(&g);
        assert!(
            pll.size_entries() <= dl.size_entries(),
            "{}: PLL {} > DL {}",
            shape.name(),
            pll.size_entries(),
            dl.size_entries()
        );
        sizes.push((shape.name(), pll.size_entries(), dl.size_entries()));
    }
    // and on at least one hub-heavy shape the pruning actually bites
    assert!(
        sizes.iter().any(|&(_, p, d)| p < d),
        "pruning never removed anything: {sizes:?}"
    );
}

#[test]
fn both_share_the_degree_order() {
    let mut rng = SmallRng::seed_from_u64(19);
    let g = reachability::graph::generators::random_digraph(60, 200, &mut rng);
    let dl = build_dl(&g);
    let pll = Pll::build(&g);
    for v in g.vertices() {
        assert_eq!(dl.rank_of(v), pll.rank_of(v), "order mismatch at {v:?}");
    }
}
