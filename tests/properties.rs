//! Property-based tests (proptest) for the core invariants:
//!
//! * partial-index filters keep their advertised guarantees on
//!   arbitrary DAGs (no false negatives / no false positives);
//! * every complete index equals the transitive closure;
//! * SPLS antichain algebra laws;
//! * dynamic indexes match rebuilds under arbitrary edit scripts.

use proptest::prelude::*;
use reachability::labeled::online::lcr_bfs;
use reachability::labeled::SplsSet;
use reachability::plain::{bfl, feline, ferrari, grail, ip, oreach, preach};
use reachability::prelude::*;

/// Strategy: an arbitrary DAG as (n, forward edges).
fn arb_dag() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..24).prop_flat_map(|n| {
        let edge = (0..(n as u32 - 1), 0..(n as u32)).prop_map(move |(u, d)| {
            let v = u + 1 + d % (n as u32 - 1 - u).max(1);
            (u, v.min(n as u32 - 1).max(u + 1))
        });
        (Just(n), proptest::collection::vec(edge, 0..60))
    })
}

/// Strategy: an arbitrary digraph (cycles allowed).
fn arb_digraph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..20).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32 - 1).prop_map(move |(u, v)| {
            let v = if v >= u { v + 1 } else { v };
            (u, v)
        });
        (Just(n), proptest::collection::vec(edge, 0..50))
    })
}

/// Strategy: an arbitrary labeled digraph.
fn arb_labeled() -> impl Strategy<Value = (usize, Vec<(u32, u8, u32)>)> {
    (4usize..16).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..3u8, 0..n as u32 - 1).prop_map(move |(u, l, v)| {
            let v = if v >= u { v + 1 } else { v };
            (u, l, v)
        });
        (Just(n), proptest::collection::vec(edge, 0..40))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_false_negative_filters_never_reject_reachable_pairs(
        (n, edges) in arb_dag(), seed in 0u64..1000
    ) {
        let g = DiGraph::from_edges(n, &edges);
        let dag = Dag::new(g).expect("forward edges are acyclic");
        let tc = TransitiveClosure::build_dag(&dag);
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::SmallRng::seed_from_u64(seed)
        };
        let filters: Vec<(&str, Box<dyn ReachFilter>)> = vec![
            ("GRAIL", Box::new(grail::GrailFilter::build(&dag, 2, &mut rng))),
            ("Ferrari", Box::new(ferrari::FerrariFilter::build(&dag, 2))),
            ("IP", Box::new(ip::IpFilter::build(&dag, 3, seed))),
            ("BFL", Box::new(bfl::BflFilter::build(&dag, 64, seed))),
            ("Feline", Box::new(feline::FelineFilter::build(&dag))),
            ("O'Reach", Box::new(oreach::OReachFilter::build(&dag, 4))),
            ("PReaCH", Box::new(preach::PreachFilter::build(&dag))),
        ];
        for (name, filter) in &filters {
            for s in dag.vertices() {
                for t in dag.vertices() {
                    match filter.certain(s, t) {
                        Certainty::Unreachable => prop_assert!(
                            !tc.reaches(s, t), "{name}: false negative {s:?}->{t:?}"
                        ),
                        Certainty::Reachable => prop_assert!(
                            tc.reaches(s, t), "{name}: false positive {s:?}->{t:?}"
                        ),
                        Certainty::Unknown => {}
                    }
                }
            }
        }
    }

    #[test]
    fn complete_indexes_equal_the_transitive_closure(
        (n, edges) in arb_digraph()
    ) {
        let g = DiGraph::from_edges(n, &edges);
        let tc = TransitiveClosure::build(&g);
        let pll = reachability::plain::pll::Pll::build(&g);
        let dl = reachability::plain::tol::build_dl(&g);
        let gripp = reachability::plain::gripp::Gripp::build(&g);
        let cond_tree = Condensed::build(&g, reachability::plain::tree_cover::TreeCover::build);
        for s in g.vertices() {
            for t in g.vertices() {
                let expect = tc.reaches(s, t);
                prop_assert_eq!(pll.query(s, t), expect);
                prop_assert_eq!(dl.query(s, t), expect);
                prop_assert_eq!(gripp.query(s, t), expect);
                prop_assert_eq!(cond_tree.query(s, t), expect);
            }
        }
    }

    #[test]
    fn lcr_indexes_match_constrained_bfs(
        (n, edges) in arb_labeled(), mask in 0u64..8
    ) {
        let g = LabeledGraph::from_edges(n, 3, &edges);
        let allowed = LabelSet(mask);
        let p2h = reachability::labeled::p2h::P2hPlus::build(&g);
        let chen = reachability::labeled::chen::ChenIndex::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                let expect = lcr_bfs(&g, s, t, allowed);
                prop_assert_eq!(p2h.query(s, t, allowed), expect);
                prop_assert_eq!(chen.query(s, t, allowed), expect);
            }
        }
    }

    #[test]
    fn spls_insert_keeps_minimal_antichain(sets in proptest::collection::vec(0u64..256, 0..12)) {
        let mut family = SplsSet::new();
        for &bits in &sets {
            family.insert(LabelSet(bits));
        }
        // every member minimal, no duplicates
        let members = family.sets();
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.is_subset_of(b), "{a:?} ⊆ {b:?}");
                }
            }
        }
        // the family covers exactly what the raw sets cover
        for &bits in &sets {
            prop_assert!(family.dominates(LabelSet(bits)));
        }
    }

    #[test]
    fn spls_cross_product_is_sound_and_minimal(
        left in proptest::collection::vec(0u64..64, 1..5),
        right in proptest::collection::vec(0u64..64, 1..5),
    ) {
        let mut a = SplsSet::new();
        for &bits in &left { a.insert(LabelSet(bits)); }
        let mut b = SplsSet::new();
        for &bits in &right { b.insert(LabelSet(bits)); }
        let prod = a.cross_product(&b);
        // every product member is a union of one member from each side
        for &m in prod.sets() {
            prop_assert!(
                a.sets().iter().any(|&x| b.sets().iter().any(|&y| x.union(y) == m))
            );
        }
        // every pairwise union is dominated by the product
        for &x in a.sets() {
            for &y in b.sets() {
                prop_assert!(prod.dominates(x.union(y)));
            }
        }
    }

    #[test]
    fn tol_updates_match_rebuild(
        (n, edges) in arb_digraph(),
        script in proptest::collection::vec((0usize..2, 0u32..20, 0u32..20), 1..12)
    ) {
        let g = DiGraph::from_edges(n, &edges);
        let mut tol = reachability::plain::tol::Tol::build(
            &g, reachability::plain::tol::OrderStrategy::DegreeDescending);
        let mut current: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        for (op, x, y) in script {
            let u = x % n as u32;
            let mut v = y % n as u32;
            if v == u { v = (v + 1) % n as u32; }
            if op == 0 {
                tol.insert_edge(VertexId(u), VertexId(v));
                if !current.contains(&(u, v)) { current.push((u, v)); }
            } else {
                tol.delete_edge(VertexId(u), VertexId(v));
                current.retain(|&e| e != (u, v));
            }
        }
        let now = DiGraph::from_edges(n, &current);
        let tc = TransitiveClosure::build(&now);
        for s in now.vertices() {
            for t in now.vertices() {
                prop_assert_eq!(tol.query(s, t), tc.reaches(s, t), "at {}->{}", s, t);
            }
        }
    }
}
