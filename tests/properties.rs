//! Randomized property tests for the core invariants:
//!
//! * partial-index filters keep their advertised guarantees on
//!   arbitrary DAGs (no false negatives / no false positives);
//! * every complete index equals the transitive closure;
//! * SPLS antichain algebra laws;
//! * dynamic indexes match rebuilds under arbitrary edit scripts.
//!
//! Each test draws its cases from a seeded `SmallRng`, so failures are
//! reproducible from the printed case seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reachability::labeled::online::lcr_bfs;
use reachability::labeled::SplsSet;
use reachability::plain::{bfl, feline, ferrari, grail, ip, oreach, preach};
use reachability::prelude::*;

const CASES: u64 = 64;

/// An arbitrary DAG as (n, forward edges).
fn random_dag(rng: &mut SmallRng) -> (usize, Vec<(u32, u32)>) {
    let n = rng.random_range(4usize..24);
    let m = rng.random_range(0usize..60);
    let edges = (0..m)
        .map(|_| {
            let u = rng.random_range(0..n as u32 - 1);
            let d = rng.random_range(0..n as u32);
            let v = u + 1 + d % (n as u32 - 1 - u).max(1);
            (u, v.min(n as u32 - 1).max(u + 1))
        })
        .collect();
    (n, edges)
}

/// An arbitrary digraph (cycles allowed), no self-loops.
fn random_digraph(rng: &mut SmallRng) -> (usize, Vec<(u32, u32)>) {
    let n = rng.random_range(4usize..20);
    let m = rng.random_range(0usize..50);
    let edges = (0..m)
        .map(|_| {
            let u = rng.random_range(0..n as u32);
            let v = rng.random_range(0..n as u32 - 1);
            let v = if v >= u { v + 1 } else { v };
            (u, v)
        })
        .collect();
    (n, edges)
}

/// An arbitrary labeled digraph, no self-loops.
fn random_labeled(rng: &mut SmallRng) -> (usize, Vec<(u32, u8, u32)>) {
    let n = rng.random_range(4usize..16);
    let m = rng.random_range(0usize..40);
    let edges = (0..m)
        .map(|_| {
            let u = rng.random_range(0..n as u32);
            let l = rng.random_range(0..3u8);
            let v = rng.random_range(0..n as u32 - 1);
            let v = if v >= u { v + 1 } else { v };
            (u, l, v)
        })
        .collect();
    (n, edges)
}

#[test]
fn no_false_negative_filters_never_reject_reachable_pairs() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x517A_0000 + case);
        let (n, edges) = random_dag(&mut rng);
        let seed = rng.random_range(0u64..1000);
        let g = DiGraph::from_edges(n, &edges);
        let dag = Dag::new(g).expect("forward edges are acyclic");
        let tc = TransitiveClosure::build_dag(&dag);
        let filters: Vec<(&str, Box<dyn ReachFilter>)> = vec![
            (
                "GRAIL",
                Box::new(grail::GrailFilter::build(&dag, 2, &mut rng)),
            ),
            ("Ferrari", Box::new(ferrari::FerrariFilter::build(&dag, 2))),
            ("IP", Box::new(ip::IpFilter::build(&dag, 3, seed))),
            ("BFL", Box::new(bfl::BflFilter::build(&dag, 64, seed))),
            ("Feline", Box::new(feline::FelineFilter::build(&dag))),
            ("O'Reach", Box::new(oreach::OReachFilter::build(&dag, 4))),
            ("PReaCH", Box::new(preach::PreachFilter::build(&dag))),
        ];
        for (name, filter) in &filters {
            for s in dag.vertices() {
                for t in dag.vertices() {
                    match filter.certain(s, t) {
                        Certainty::Unreachable => assert!(
                            !tc.reaches(s, t),
                            "case {case}: {name}: false negative {s:?}->{t:?}"
                        ),
                        Certainty::Reachable => assert!(
                            tc.reaches(s, t),
                            "case {case}: {name}: false positive {s:?}->{t:?}"
                        ),
                        Certainty::Unknown => {}
                    }
                }
            }
        }
    }
}

#[test]
fn complete_indexes_equal_the_transitive_closure() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC0B7_0000 + case);
        let (n, edges) = random_digraph(&mut rng);
        let g = DiGraph::from_edges(n, &edges);
        let tc = TransitiveClosure::build(&g);
        let pll = reachability::plain::pll::Pll::build(&g);
        let dl = reachability::plain::tol::build_dl(&g);
        let gripp = reachability::plain::gripp::Gripp::build(&g);
        let cond_tree = Condensed::build(&g, reachability::plain::tree_cover::TreeCover::build);
        for s in g.vertices() {
            for t in g.vertices() {
                let expect = tc.reaches(s, t);
                assert_eq!(pll.query(s, t), expect, "case {case}: PLL at {s}->{t}");
                assert_eq!(dl.query(s, t), expect, "case {case}: DL at {s}->{t}");
                assert_eq!(gripp.query(s, t), expect, "case {case}: GRIPP at {s}->{t}");
                assert_eq!(
                    cond_tree.query(s, t),
                    expect,
                    "case {case}: Tree cover at {s}->{t}"
                );
            }
        }
    }
}

#[test]
fn lcr_indexes_match_constrained_bfs() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1C20_0000 + case);
        let (n, edges) = random_labeled(&mut rng);
        let mask = rng.random_range(0u64..8);
        let g = LabeledGraph::from_edges(n, 3, &edges);
        let allowed = LabelSet(mask);
        let p2h = reachability::labeled::p2h::P2hPlus::build(&g);
        let chen = reachability::labeled::chen::ChenIndex::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                let expect = lcr_bfs(&g, s, t, allowed);
                assert_eq!(
                    p2h.query(s, t, allowed),
                    expect,
                    "case {case}: P2H+ at {s}->{t}"
                );
                assert_eq!(
                    chen.query(s, t, allowed),
                    expect,
                    "case {case}: Chen at {s}->{t}"
                );
            }
        }
    }
}

#[test]
fn spls_insert_keeps_minimal_antichain() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5915_0000 + case);
        let sets: Vec<u64> = (0..rng.random_range(0usize..12))
            .map(|_| rng.random_range(0u64..256))
            .collect();
        let mut family = SplsSet::new();
        for &bits in &sets {
            family.insert(LabelSet(bits));
        }
        // every member minimal, no duplicates
        let members = family.sets();
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset_of(b), "case {case}: {a:?} ⊆ {b:?}");
                }
            }
        }
        // the family covers exactly what the raw sets cover
        for &bits in &sets {
            assert!(family.dominates(LabelSet(bits)), "case {case}");
        }
    }
}

#[test]
fn spls_cross_product_is_sound_and_minimal() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5920_0000 + case);
        let left: Vec<u64> = (0..rng.random_range(1usize..5))
            .map(|_| rng.random_range(0u64..64))
            .collect();
        let right: Vec<u64> = (0..rng.random_range(1usize..5))
            .map(|_| rng.random_range(0u64..64))
            .collect();
        let mut a = SplsSet::new();
        for &bits in &left {
            a.insert(LabelSet(bits));
        }
        let mut b = SplsSet::new();
        for &bits in &right {
            b.insert(LabelSet(bits));
        }
        let prod = a.cross_product(&b);
        // every product member is a union of one member from each side
        for &m in prod.sets() {
            assert!(
                a.sets()
                    .iter()
                    .any(|&x| b.sets().iter().any(|&y| x.union(y) == m)),
                "case {case}: stray member {m:?}"
            );
        }
        // every pairwise union is dominated by the product
        for &x in a.sets() {
            for &y in b.sets() {
                assert!(
                    prod.dominates(x.union(y)),
                    "case {case}: missing {x:?} ∪ {y:?}"
                );
            }
        }
    }
}

#[test]
fn tol_updates_match_rebuild() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x701A_0000 + case);
        let (n, edges) = random_digraph(&mut rng);
        let script: Vec<(usize, u32, u32)> = (0..rng.random_range(1usize..12))
            .map(|_| {
                (
                    rng.random_range(0usize..2),
                    rng.random_range(0u32..20),
                    rng.random_range(0u32..20),
                )
            })
            .collect();
        let g = DiGraph::from_edges(n, &edges);
        let mut tol = reachability::plain::tol::Tol::build(
            &g,
            reachability::plain::tol::OrderStrategy::DegreeDescending,
        );
        let mut current: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        for (op, x, y) in script {
            let u = x % n as u32;
            let mut v = y % n as u32;
            if v == u {
                v = (v + 1) % n as u32;
            }
            if op == 0 {
                tol.insert_edge(VertexId(u), VertexId(v));
                if !current.contains(&(u, v)) {
                    current.push((u, v));
                }
            } else {
                tol.delete_edge(VertexId(u), VertexId(v));
                current.retain(|&e| e != (u, v));
            }
        }
        let now = DiGraph::from_edges(n, &current);
        let tc = TransitiveClosure::build(&now);
        for s in now.vertices() {
            for t in now.vertices() {
                assert_eq!(
                    tol.query(s, t),
                    tc.reaches(s, t),
                    "case {case}: at {s}->{t}"
                );
            }
        }
    }
}
