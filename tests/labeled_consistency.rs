//! Integration test: every LCR index agrees with the
//! label-constrained BFS oracle, the RLC index agrees with the
//! product-space BFS, and the general automaton evaluator subsumes
//! both fragments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_bench::registry::{build_lcr, lcr_feasible, lcr_names};
use reach_bench::workloads::Shape;
use reachability::labeled::online::{lcr_bfs, rlc_bfs, rpq_bfs};
use reachability::labeled::rlc::RlcIndex;
use reachability::labeled::{parse, Nfa};
use reachability::prelude::*;
use std::sync::Arc;

fn check_lcr_shape(shape: Shape, n: usize, k: usize, seed: u64) {
    let g = Arc::new(shape.generate_labeled(n, k, seed));
    for name in lcr_names() {
        if !lcr_feasible(name, n) {
            continue;
        }
        let idx = build_lcr(name, &g);
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..(1u64 << k) {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(&g, s, t, allowed),
                        "{name} on {} at {s:?}->{t:?} under {allowed:?}",
                        shape.name()
                    );
                }
            }
        }
    }
}

#[test]
fn lcr_indexes_agree_on_sparse_dags() {
    check_lcr_shape(Shape::Sparse, 30, 3, 1);
}

#[test]
fn lcr_indexes_agree_on_cyclic_graphs() {
    check_lcr_shape(Shape::Cyclic, 25, 3, 2);
}

#[test]
fn lcr_indexes_agree_on_power_law_graphs() {
    check_lcr_shape(Shape::PowerLaw, 30, 4, 3);
}

#[test]
fn lcr_indexes_agree_on_tree_like_graphs() {
    check_lcr_shape(Shape::TreeLike, 35, 3, 4);
}

#[test]
fn rlc_index_agrees_with_product_bfs() {
    let mut rng = SmallRng::seed_from_u64(5);
    for shape in [Shape::Sparse, Shape::Cyclic] {
        let g = Arc::new(shape.generate_labeled(20, 3, 6));
        let idx = RlcIndex::build(&g, 2);
        for _ in 0..120 {
            let len = 1 + rng.random_range(0..2usize);
            let unit: Vec<Label> = (0..len).map(|_| Label(rng.random_range(0..3u8))).collect();
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(
                        idx.try_query(s, t, &unit),
                        Some(rlc_bfs(&g, s, t, &unit)),
                        "unit {unit:?} at {s:?}->{t:?} on {}",
                        shape.name()
                    );
                }
            }
        }
    }
}

#[test]
fn automaton_evaluator_subsumes_alternation() {
    let g = Shape::Cyclic.generate_labeled(20, 3, 7);
    let alphabet = ["a", "b", "c"];
    for (expr, mask) in [
        ("(a)*", 0b001u64),
        ("(a ∪ b)*", 0b011),
        ("(a ∪ b ∪ c)*", 0b111),
    ] {
        let nfa = Nfa::compile(&parse(expr, &alphabet).unwrap());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    rpq_bfs(&g, s, t, &nfa),
                    lcr_bfs(&g, s, t, LabelSet(mask)),
                    "{expr} at {s:?}->{t:?}"
                );
            }
        }
    }
}

#[test]
fn automaton_evaluator_subsumes_concatenation() {
    let g = Shape::Sparse.generate_labeled(20, 3, 8);
    let alphabet = ["a", "b", "c"];
    for (expr, unit) in [
        ("(a·b)*", vec![Label(0), Label(1)]),
        ("(c)*", vec![Label(2)]),
        ("(b·b)*", vec![Label(1), Label(1)]),
    ] {
        let nfa = Nfa::compile(&parse(expr, &alphabet).unwrap());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    rpq_bfs(&g, s, t, &nfa),
                    rlc_bfs(&g, s, t, &unit),
                    "{expr} at {s:?}->{t:?}"
                );
            }
        }
    }
}

#[test]
fn lcr_indexes_handle_degenerate_graphs() {
    // no edges; single labeled edge; parallel multi-labeled edges
    for edges in [
        vec![],
        vec![(0u32, 0u8, 1u32)],
        vec![(0, 0, 1), (0, 1, 1), (1, 2, 0)],
    ] {
        let g = Arc::new(LabeledGraph::from_edges(3, 3, &edges));
        for name in lcr_names() {
            let idx = build_lcr(name, &g);
            for s in g.vertices() {
                for t in g.vertices() {
                    for mask in 0..8u64 {
                        let allowed = LabelSet(mask);
                        assert_eq!(
                            idx.query(s, t, allowed),
                            lcr_bfs(&g, s, t, allowed),
                            "{name} on {edges:?}"
                        );
                    }
                }
            }
        }
    }
}
