//! Integration test: the implemented classification matrix matches the
//! survey's **Table 1** row by row (with the substitutions documented
//! in DESIGN.md §2).

use reach_bench::registry::plain_native_meta;
use reachability::prelude::*;

/// One expected row: (technique, framework, index type, input, dynamic).
fn expected_rows() -> Vec<(&'static str, Framework, Completeness, InputClass, Dynamism)> {
    use Completeness::*;
    use Dynamism::*;
    use Framework::*;
    use InputClass::*;
    vec![
        // §3.1, Table 1 block 1: tree-cover framework
        ("Tree cover", TreeCover, Complete, Dag, Static),
        ("Tree+SSPI", TreeCover, Partial, Dag, Static),
        ("Dual labeling", TreeCover, Complete, Dag, Static),
        ("GRIPP", TreeCover, Partial, General, Static),
        // paper row "Path-tree [24,27]": represented by chain cover
        ("Chain cover", TreeCover, Complete, Dag, Static),
        ("GRAIL", TreeCover, Partial, Dag, Static),
        ("Ferrari", TreeCover, Partial, Dag, Static),
        ("DAGGER", TreeCover, Partial, Dag, InsertDelete),
        // block 2: 2-hop framework
        ("2-Hop", TwoHop, Complete, General, Static),
        ("PLL", TwoHop, Complete, General, Static),
        ("TFL", TwoHop, Complete, Dag, Static),
        ("DL", TwoHop, Complete, General, Static),
        ("TOL", TwoHop, Complete, Dag, InsertDelete),
        ("DBL", TwoHop, Partial, General, InsertOnly),
        ("O'Reach", TwoHop, Partial, Dag, Static),
        // block 3: approximate TC
        // paper lists IP as dynamic (via DAGGER-based relabeling);
        // this implementation is static — documented deviation
        ("IP", ApproximateTc, Partial, Dag, Static),
        ("BFL", ApproximateTc, Partial, Dag, Static),
        // block 4: other techniques
        ("HL", Other, Complete, Dag, Static),
        ("Feline", Other, Partial, Dag, Static),
        ("PReaCH", Other, Partial, Dag, Static),
        // baseline
        ("TC", TransitiveClosure, Complete, General, Static),
    ]
}

#[test]
fn matrix_matches_the_papers_table_1() {
    for (name, framework, completeness, input, dynamism) in expected_rows() {
        let m = plain_native_meta(name);
        assert_eq!(m.name, name);
        assert_eq!(m.framework, framework, "{name}: framework column");
        assert_eq!(m.completeness, completeness, "{name}: index-type column");
        assert_eq!(m.input, input, "{name}: input column");
        assert_eq!(m.dynamism, dynamism, "{name}: dynamic column");
    }
}

#[test]
fn every_registered_technique_has_a_table_row() {
    let expected: Vec<&str> = expected_rows().iter().map(|r| r.0).collect();
    for name in reach_bench::registry::plain_names() {
        if name.starts_with("online") {
            continue; // §2.3 baselines, not Table-1 rows
        }
        assert!(
            expected.contains(&name),
            "{name} missing from the expected matrix"
        );
    }
}

#[test]
fn partial_indexes_expose_filter_guarantees() {
    // §5's argument needs the no-false-negative property to be
    // machine-checkable; verify the flagship filters advertise it.
    use reachability::plain::{bfl, feline, ferrari, grail, ip, oreach};
    let dag = Dag::new(reachability::graph::fixtures::figure1a()).unwrap();
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(1)
    };
    let filters: Vec<(&str, FilterGuarantees)> = vec![
        (
            "GRAIL",
            grail::GrailFilter::build(&dag, 2, &mut rng).guarantees(),
        ),
        (
            "Ferrari",
            ferrari::FerrariFilter::build(&dag, 2).guarantees(),
        ),
        ("IP", ip::IpFilter::build(&dag, 4, 1).guarantees()),
        ("BFL", bfl::BflFilter::build(&dag, 64, 1).guarantees()),
        ("Feline", feline::FelineFilter::build(&dag).guarantees()),
        ("O'Reach", oreach::OReachFilter::build(&dag, 4).guarantees()),
    ];
    for (name, g) in filters {
        assert!(g.definite_negative, "{name} must have no false negatives");
    }
}
