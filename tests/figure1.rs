//! Integration test: every worked example of the survey's Figure 1,
//! verified against every implemented index (the claim-by-claim list
//! is DESIGN.md §4, rows "Figure 1(a)" and "Figure 1(b)").

use reach_bench::registry::{build_lcr, build_plain, lcr_names, plain_names};
use reachability::graph::fixtures::{
    self, A, B, C, D, FOLLOWS, FRIEND_OF, G, H, K, L, M, WORKS_FOR,
};
use reachability::labeled::online::{lcr_bfs, rlc_bfs};
use reachability::labeled::rlc::RlcIndex;
use reachability::labeled::zou::single_source_gtc;
use reachability::prelude::*;
use std::sync::Arc;

#[test]
fn qr_a_g_is_true_for_every_plain_index() {
    // §2.1: "Qr(A,G) = true because of an s-t path (A, D, H, G)"
    let g = Arc::new(fixtures::figure1a());
    assert!(g.has_edge(A, D) && g.has_edge(D, H) && g.has_edge(H, G));
    for name in plain_names() {
        let idx = build_plain(name, &g);
        assert!(idx.query(A, G), "{name}: Qr(A,G) must be true");
    }
}

#[test]
fn alternation_example_is_false_for_every_lcr_index() {
    // §2.2: "Qr(A, G, (friendOf ∪ follows)*) = false … because every
    // path from A to G includes worksFor"
    let g = Arc::new(fixtures::figure1b());
    let constraint = LabelSet::from_labels([FRIEND_OF, FOLLOWS]);
    assert!(!lcr_bfs(&g, A, G, constraint));
    for name in lcr_names() {
        let idx = build_lcr(name, &g);
        assert!(!idx.query(A, G, constraint), "{name}");
        assert!(idx.query(A, G, LabelSet::full(3)), "{name}: unconstrained");
    }
}

#[test]
fn spls_l_to_m_example() {
    // §4.1: p1 = (L,worksFor,C,worksFor,M), p2 = (L,follows,K,worksFor,M);
    // p1's label set is the SPLS.
    let g = fixtures::figure1b();
    // both witness paths exist
    let has = |u: VertexId, l: Label, v: VertexId| g.out_edges(u).any(|(w, el)| w == v && el == l);
    assert!(has(L, WORKS_FOR, C) && has(C, WORKS_FOR, M));
    assert!(has(L, FOLLOWS, K) && has(K, WORKS_FOR, M));
    let rows = single_source_gtc(&g, L);
    assert_eq!(rows[M.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
}

#[test]
fn spls_transitivity_example() {
    // §4.1: SPLS(A→M) = {follows, worksFor} = SPLS(A→L) × SPLS(L→M)
    let g = fixtures::figure1b();
    let from_a = single_source_gtc(&g, A);
    let from_l = single_source_gtc(&g, L);
    assert_eq!(from_a[L.index()].sets(), &[LabelSet::singleton(FOLLOWS)]);
    assert_eq!(from_l[M.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
    let product = from_a[L.index()].cross_product(&from_l[M.index()]);
    assert_eq!(from_a[M.index()], product);
    assert_eq!(
        from_a[M.index()].sets(),
        &[LabelSet::from_labels([FOLLOWS, WORKS_FOR])]
    );
}

#[test]
fn zou_dijkstra_example() {
    // §4.1.2: among p3 = (L,worksFor,C,worksFor,H) (1 distinct label)
    // and p4 = (L,worksFor,D,friendOf,H) (2), p3 wins.
    let g = fixtures::figure1b();
    let rows = single_source_gtc(&g, L);
    assert_eq!(rows[H.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
    // and the dominated set is genuinely a path label set
    assert!(rows[H.index()].satisfies(LabelSet::from_labels([WORKS_FOR])));
    assert!(!rows[H.index()]
        .sets()
        .contains(&LabelSet::from_labels([WORKS_FOR, FRIEND_OF])));
}

#[test]
fn mr_example_and_rlc_query() {
    // §4.2: the path (L,worksFor,D,friendOf,H,worksFor,G,friendOf,B)
    // has MR (worksFor, friendOf), so Qr(L,B,(worksFor·friendOf)*) = true
    let g = fixtures::figure1b();
    assert!(rlc_bfs(&g, L, B, &[WORKS_FOR, FRIEND_OF]));
    let idx = RlcIndex::build(&g, 2);
    assert_eq!(idx.try_query(L, B, &[WORKS_FOR, FRIEND_OF]), Some(true));
    // and the MR really is minimal: neither single label suffices
    assert_eq!(idx.try_query(L, B, &[WORKS_FOR]), Some(false));
    assert_eq!(idx.try_query(L, B, &[FRIEND_OF]), Some(false));
}

#[test]
fn figure1_reachability_matrix_is_consistent_across_all_indexes() {
    let g = Arc::new(fixtures::figure1a());
    let tc = TransitiveClosure::build(&g);
    for name in plain_names() {
        let idx = build_plain(name, &g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "{name} at {s:?}->{t:?}");
            }
        }
    }
}

#[test]
fn figure1_lcr_matrix_is_consistent_across_all_indexes() {
    let g = Arc::new(fixtures::figure1b());
    for name in lcr_names() {
        let idx = build_lcr(name, &g);
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..8u64 {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(&g, s, t, allowed),
                        "{name} at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }
}
