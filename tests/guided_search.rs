//! Integration test for §5's guided-traversal mechanics: the filters
//! must demonstrably *reduce work*, not just stay correct — a partial
//! index whose lookups never prune would silently degenerate to DFS.

use rand::SeedableRng;
use reach_bench::queries::query_mix;
use reach_bench::workloads::Shape;
use reachability::plain::engine::GuidedSearch;
use reachability::plain::grail::GrailFilter;
use reachability::plain::{bfl, ferrari, grail};
use reachability::prelude::*;

fn oblivious_meta() -> IndexMeta {
    IndexMeta {
        name: "oblivious",
        citation: "[-]",
        framework: Framework::Other,
        completeness: Completeness::Partial,
        input: InputClass::Dag,
        dynamism: Dynamism::Static,
    }
}

/// A filter that never decides — guided search over it IS plain DFS,
/// giving a work baseline.
struct Oblivious;
impl ReachFilter for Oblivious {
    fn certain(&self, _: VertexId, _: VertexId) -> Certainty {
        Certainty::Unknown
    }
    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: false,
            definite_negative: false,
        }
    }
    fn size_bytes(&self) -> usize {
        0
    }
    fn size_entries(&self) -> usize {
        0
    }
}

#[test]
fn real_filters_expand_fewer_vertices_than_dfs() {
    let graph = Shape::Sparse.generate(2_000, 55);
    let dag = Dag::new(graph).unwrap();
    let shared = dag.shared_graph();
    let mix = query_mix(&shared, 400, 0.5, 3);

    let baseline = GuidedSearch::new(shared.clone(), Oblivious, oblivious_meta());
    let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
    let candidates: Vec<(&str, GuidedSearch<Box<dyn ReachFilter>>)> = vec![
        (
            "GRAIL",
            GuidedSearch::new(
                shared.clone(),
                Box::new(GrailFilter::build(&dag, 3, &mut rng)) as Box<dyn ReachFilter>,
                oblivious_meta(),
            ),
        ),
        (
            "Ferrari",
            GuidedSearch::new(
                shared.clone(),
                Box::new(ferrari::FerrariFilter::build(&dag, 4)),
                oblivious_meta(),
            ),
        ),
        (
            "BFL",
            GuidedSearch::new(
                shared.clone(),
                Box::new(bfl::BflFilter::build(&dag, 256, 1)),
                oblivious_meta(),
            ),
        ),
    ];

    let mut base_work = 0usize;
    for &(s, t) in &mix.pairs {
        base_work += baseline.query_counted(s, t).1.expanded;
    }
    for (name, idx) in &candidates {
        let mut work = 0usize;
        for &(s, t) in &mix.pairs {
            let (answer, stats) = idx.query_counted(s, t);
            assert_eq!(answer, baseline.query(s, t), "{name} wrong at {s:?}->{t:?}");
            work += stats.expanded;
        }
        assert!(
            work * 2 < base_work,
            "{name} should prune at least half the DFS expansions \
             ({work} vs baseline {base_work})"
        );
    }
}

#[test]
fn definite_positive_filters_short_circuit() {
    // Ferrari's exact intervals answer reachable tree pairs with zero
    // expansions
    let mut rng = rand::rngs::SmallRng::seed_from_u64(10);
    let dag = reachability::graph::generators::random_tree_plus_edges(500, 5, &mut rng);
    let idx = grail::build_grail(&dag, 2, 3);
    let ferrari = ferrari::build_ferrari(&dag, 8);
    let mut zero_expansion_hits = 0;
    for s in dag.vertices().step_by(7) {
        for t in dag.vertices().step_by(11) {
            let (answer, stats) = ferrari.query_counted(s, t);
            assert_eq!(answer, idx.query(s, t));
            if answer && stats.expanded == 0 {
                zero_expansion_hits += 1;
            }
        }
    }
    assert!(
        zero_expansion_hits > 0,
        "exact intervals should answer some positives by lookup alone"
    );
}
