//! Randomized tests for the dynamic indexes (the "Dynamic" columns of
//! Tables 1 and 2): arbitrary edit scripts must leave every dynamic
//! index equivalent to a fresh rebuild, and the constraint parser must
//! be total (never panic) on arbitrary input.
//!
//! Each test draws its cases from a seeded `SmallRng`, so failures are
//! reproducible from the printed case seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reachability::graph::traverse::{bfs_reaches, VisitMap};
use reachability::labeled::dlcr::Dlcr;
use reachability::labeled::online::lcr_bfs;
use reachability::plain::dagger::DynamicGrail;
use reachability::plain::dbl::Dbl;
use reachability::prelude::*;

const CASES: u64 = 48;

/// An edit: insert (op = 0) or delete (op = 1) the edge derived from
/// `(x, y)` on an `n`-vertex graph.
type Edit = (u8, u32, u32);

fn apply_plain(edits: &[Edit], n: u32, edges: &mut Vec<(u32, u32)>) -> Vec<(u8, u32, u32)> {
    let mut resolved = Vec::new();
    for &(op, x, y) in edits {
        let u = x % n;
        let mut v = y % n;
        if v == u {
            v = (v + 1) % n;
        }
        resolved.push((op % 2, u, v));
        if op % 2 == 0 {
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
        } else {
            edges.retain(|&e| e != (u, v));
        }
    }
    resolved
}

#[test]
fn dbl_inserts_match_rebuild() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xDB1_0000 + case);
        let n = 15u32;
        let mut edges: Vec<(u32, u32)> = (0..rng.random_range(0usize..30))
            .map(|_| (rng.random_range(0..15u32), rng.random_range(0..15u32)))
            .filter(|&(u, v)| u != v)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let g = DiGraph::from_edges(n as usize, &edges);
        let mut dbl = Dbl::build(&g);
        for _ in 0..rng.random_range(1usize..15) {
            let u = rng.random_range(0..15u32);
            let mut v = rng.random_range(0..15u32) % n;
            if v == u {
                v = (v + 1) % n;
            }
            dbl.insert_edge(VertexId(u), VertexId(v));
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
        }
        let now = DiGraph::from_edges(n as usize, &edges);
        let mut vm = VisitMap::new(n as usize);
        for s in now.vertices() {
            for t in now.vertices() {
                assert_eq!(
                    dbl.query(s, t),
                    bfs_reaches(&now, s, t, &mut vm),
                    "case {case}: at {s}->{t}"
                );
            }
        }
    }
}

#[test]
fn dagger_survives_arbitrary_edit_scripts() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xDA6_0000 + case);
        let m = rng.random_range(0usize..40);
        let edits: Vec<Edit> = (0..rng.random_range(1usize..20))
            .map(|_| {
                (
                    rng.random_range(0u8..2),
                    rng.random_range(0u32..12),
                    rng.random_range(0u32..12),
                )
            })
            .collect();
        let seed = rng.random_range(0u64..100);
        // base DAG: forward edges derived from the seed
        let n = 12u32;
        let mut gen = SmallRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32)> = (0..m)
            .map(|_| {
                let u = gen.random_range(0..n - 1);
                let v = gen.random_range(u + 1..n);
                (u, v)
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let dag = Dag::new(DiGraph::from_edges(n as usize, &edges)).unwrap();
        let mut dagger = DynamicGrail::build(&dag, 2, seed);
        // DAGGER tolerates arbitrary (even cycle-creating) edits
        let resolved = apply_plain(&edits, n, &mut edges);
        for (op, u, v) in resolved {
            if op == 0 {
                dagger.insert_edge(VertexId(u), VertexId(v));
            } else {
                dagger.delete_edge(VertexId(u), VertexId(v));
            }
        }
        let now = DiGraph::from_edges(n as usize, &edges);
        let mut vm = VisitMap::new(n as usize);
        for s in now.vertices() {
            for t in now.vertices() {
                assert_eq!(
                    dagger.query(s, t),
                    bfs_reaches(&now, s, t, &mut vm),
                    "case {case}: at {s}->{t}"
                );
            }
        }
    }
}

#[test]
fn dlcr_edit_scripts_match_rebuild() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD1C2_0000 + case);
        let n = 10u32;
        let mut edges: Vec<(u32, u8, u32)> = (0..rng.random_range(0usize..20))
            .map(|_| {
                (
                    rng.random_range(0..10u32),
                    rng.random_range(0..2u8),
                    rng.random_range(0..10u32),
                )
            })
            .filter(|&(u, _, v)| u != v)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let g = LabeledGraph::from_edges(n as usize, 2, &edges);
        let mut dlcr = Dlcr::build(&g);
        for _ in 0..rng.random_range(1usize..10) {
            let op = rng.random_range(0u8..2);
            let u = rng.random_range(0..10u32);
            let l = rng.random_range(0..2u8);
            let mut v = rng.random_range(0..10u32) % n;
            if v == u {
                v = (v + 1) % n;
            }
            if op % 2 == 0 {
                dlcr.insert_edge(VertexId(u), Label(l), VertexId(v));
                if !edges.contains(&(u, l, v)) {
                    edges.push((u, l, v));
                }
            } else {
                dlcr.delete_edge(VertexId(u), Label(l), VertexId(v));
                edges.retain(|&e| e != (u, l, v));
            }
        }
        let now = LabeledGraph::from_edges(n as usize, 2, &edges);
        for s in now.vertices() {
            for t in now.vertices() {
                for mask in 0..4u64 {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        dlcr.query(s, t, allowed),
                        lcr_bfs(&now, s, t, allowed),
                        "case {case}: at {s}->{t} under {allowed:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn constraint_parser_is_total() {
    // printable-ish alphabet plus the grammar's own tokens: the parser
    // must never panic, only parse or report a positioned error
    let pool: Vec<char> = ('!'..='~')
        .chain(['∪', '∘', '*', '(', ')', ' ', 'a', 'b', 'c', '⋅', 'λ', '∅'])
        .collect();
    for case in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0x9A25_0000 + case);
        let len = rng.random_range(0usize..=40);
        let input: String = (0..len)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        let _ = reachability::labeled::parse(&input, &["a", "b", "c"]);
    }
}

#[test]
fn parser_roundtrips_valid_alternations() {
    let names = ["a", "b", "c"];
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9A40_0000 + case);
        let labels: Vec<u8> = (0..rng.random_range(1usize..4))
            .map(|_| rng.random_range(0u8..3))
            .collect();
        let expr = format!(
            "({})*",
            labels
                .iter()
                .map(|&l| names[l as usize])
                .collect::<Vec<_>>()
                .join(" ∪ ")
        );
        let ast = reachability::labeled::parse(&expr, &names).unwrap();
        let expect = LabelSet::from_labels(labels.iter().map(|&l| Label(l)));
        assert_eq!(
            ast.classify(),
            ConstraintKind::Alternation(expect),
            "case {case}: {expr}"
        );
    }
}

#[test]
fn io_roundtrip_is_identity() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x10F0_0000 + case);
        let edges: Vec<(u32, u8, u32)> = (0..rng.random_range(0usize..50))
            .map(|_| {
                (
                    rng.random_range(0..20u32),
                    rng.random_range(0..4u8),
                    rng.random_range(0..20u32),
                )
            })
            .collect();
        let g = LabeledGraph::from_edges(20, 4, &edges);
        let text = reachability::graph::io::write_labeled(&g);
        let back = reachability::graph::io::read_labeled(&text).unwrap();
        assert_eq!(g, back, "case {case}");
    }
}
