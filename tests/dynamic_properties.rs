//! Property-based tests for the dynamic indexes (the "Dynamic"
//! columns of Tables 1 and 2): arbitrary edit scripts must leave every
//! dynamic index equivalent to a fresh rebuild, and the constraint
//! parser must be total (never panic) on arbitrary input.

use proptest::prelude::*;
use reachability::graph::traverse::{bfs_reaches, VisitMap};
use reachability::labeled::dlcr::Dlcr;
use reachability::labeled::online::lcr_bfs;
use reachability::plain::dagger::DynamicGrail;
use reachability::plain::dbl::Dbl;
use reachability::prelude::*;

/// An edit: insert (op = 0) or delete (op = 1) the edge derived from
/// `(x, y)` on an `n`-vertex graph.
type Edit = (u8, u32, u32);

fn apply_plain(edits: &[Edit], n: u32, edges: &mut Vec<(u32, u32)>) -> Vec<(u8, u32, u32)> {
    let mut resolved = Vec::new();
    for &(op, x, y) in edits {
        let u = x % n;
        let mut v = y % n;
        if v == u {
            v = (v + 1) % n;
        }
        resolved.push((op % 2, u, v));
        if op % 2 == 0 {
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
        } else {
            edges.retain(|&e| e != (u, v));
        }
    }
    resolved
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dbl_inserts_match_rebuild(
        base in proptest::collection::vec((0u32..15, 0u32..15), 0..30),
        inserts in proptest::collection::vec((0u32..15, 0u32..15), 1..15),
    ) {
        let n = 15u32;
        let mut edges: Vec<(u32, u32)> = base
            .into_iter()
            .filter(|&(u, v)| u != v)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let g = DiGraph::from_edges(n as usize, &edges);
        let mut dbl = Dbl::build(&g);
        for (u, v) in inserts {
            let mut v = v % n;
            if v == u {
                v = (v + 1) % n;
            }
            dbl.insert_edge(VertexId(u), VertexId(v));
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
        }
        let now = DiGraph::from_edges(n as usize, &edges);
        let mut vm = VisitMap::new(n as usize);
        for s in now.vertices() {
            for t in now.vertices() {
                prop_assert_eq!(
                    dbl.query(s, t),
                    bfs_reaches(&now, s, t, &mut vm),
                    "at {}->{}", s, t
                );
            }
        }
    }

    #[test]
    fn dagger_survives_arbitrary_edit_scripts(
        m in 0usize..40,
        edits in proptest::collection::vec((0u8..2, 0u32..12, 0u32..12), 1..20),
        seed in 0u64..100,
    ) {
        // base DAG: forward edges derived from the seed
        let n = 12u32;
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::SmallRng::seed_from_u64(seed)
        };
        use rand::Rng;
        let mut edges: Vec<(u32, u32)> = (0..m)
            .map(|_| {
                let u = rng.random_range(0..n - 1);
                let v = rng.random_range(u + 1..n);
                (u, v)
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let dag = Dag::new(DiGraph::from_edges(n as usize, &edges)).unwrap();
        let mut dagger = DynamicGrail::build(&dag, 2, seed);
        // DAGGER tolerates arbitrary (even cycle-creating) edits
        let resolved = apply_plain(&edits, n, &mut edges);
        for (op, u, v) in resolved {
            if op == 0 {
                dagger.insert_edge(VertexId(u), VertexId(v));
            } else {
                dagger.delete_edge(VertexId(u), VertexId(v));
            }
        }
        let now = DiGraph::from_edges(n as usize, &edges);
        let mut vm = VisitMap::new(n as usize);
        for s in now.vertices() {
            for t in now.vertices() {
                prop_assert_eq!(dagger.query(s, t), bfs_reaches(&now, s, t, &mut vm));
            }
        }
    }

    #[test]
    fn dlcr_edit_scripts_match_rebuild(
        base in proptest::collection::vec((0u32..10, 0u8..2, 0u32..10), 0..20),
        edits in proptest::collection::vec((0u8..2, 0u32..10, 0u8..2, 0u32..10), 1..10),
    ) {
        let n = 10u32;
        let mut edges: Vec<(u32, u8, u32)> = base
            .into_iter()
            .filter(|&(u, _, v)| u != v)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let g = LabeledGraph::from_edges(n as usize, 2, &edges);
        let mut dlcr = Dlcr::build(&g);
        for (op, u, l, v) in edits {
            let mut v = v % n;
            if v == u {
                v = (v + 1) % n;
            }
            if op % 2 == 0 {
                dlcr.insert_edge(VertexId(u), Label(l), VertexId(v));
                if !edges.contains(&(u, l, v)) {
                    edges.push((u, l, v));
                }
            } else {
                dlcr.delete_edge(VertexId(u), Label(l), VertexId(v));
                edges.retain(|&e| e != (u, l, v));
            }
        }
        let now = LabeledGraph::from_edges(n as usize, 2, &edges);
        for s in now.vertices() {
            for t in now.vertices() {
                for mask in 0..4u64 {
                    let allowed = LabelSet(mask);
                    prop_assert_eq!(
                        dlcr.query(s, t, allowed),
                        lcr_bfs(&now, s, t, allowed),
                        "at {}->{} under {:?}", s, t, allowed
                    );
                }
            }
        }
    }

    #[test]
    fn constraint_parser_is_total(input in "\\PC{0,40}") {
        // never panics; either parses or reports a positioned error
        let _ = reachability::labeled::parse(&input, &["a", "b", "c"]);
    }

    #[test]
    fn parser_roundtrips_valid_alternations(labels in proptest::collection::vec(0u8..3, 1..4)) {
        let names = ["a", "b", "c"];
        let expr = format!(
            "({})*",
            labels.iter().map(|&l| names[l as usize]).collect::<Vec<_>>().join(" ∪ ")
        );
        let ast = reachability::labeled::parse(&expr, &names).unwrap();
        let expect = LabelSet::from_labels(labels.iter().map(|&l| Label(l)));
        prop_assert_eq!(ast.classify(), ConstraintKind::Alternation(expect));
    }

    #[test]
    fn io_roundtrip_is_identity(
        edges in proptest::collection::vec((0u32..20, 0u8..4, 0u32..20), 0..50)
    ) {
        let g = LabeledGraph::from_edges(20, 4, &edges);
        let text = reachability::graph::io::write_labeled(&g);
        let back = reachability::graph::io::read_labeled(&text).unwrap();
        prop_assert_eq!(g, back);
    }
}
