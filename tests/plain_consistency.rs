//! Integration test: every plain index agrees with the transitive
//! closure on every graph shape the workload generators produce —
//! the central cross-index invariant of the workspace.

use reach_bench::registry::{build_plain, plain_feasible, PLAIN_NAMES};
use reach_bench::workloads::Shape;
use reachability::prelude::*;
use std::sync::Arc;

fn check_shape(shape: Shape, n: usize, seed: u64) {
    let g = Arc::new(shape.generate(n, seed));
    let tc = TransitiveClosure::build(&g);
    for name in PLAIN_NAMES {
        if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
            continue;
        }
        let idx = build_plain(name, &g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    idx.query(s, t),
                    tc.reaches(s, t),
                    "{name} on {} at {s:?}->{t:?}",
                    shape.name()
                );
            }
        }
    }
}

#[test]
fn all_indexes_agree_on_sparse_dags() {
    check_shape(Shape::Sparse, 60, 1);
}

#[test]
fn all_indexes_agree_on_dense_dags() {
    check_shape(Shape::Dense, 50, 2);
}

#[test]
fn all_indexes_agree_on_deep_dags() {
    check_shape(Shape::Deep, 100, 3);
}

#[test]
fn all_indexes_agree_on_power_law_dags() {
    check_shape(Shape::PowerLaw, 70, 4);
}

#[test]
fn all_indexes_agree_on_tree_like_dags() {
    check_shape(Shape::TreeLike, 80, 5);
}

#[test]
fn all_indexes_agree_on_cyclic_graphs() {
    check_shape(Shape::Cyclic, 60, 6);
}

#[test]
fn all_indexes_agree_on_edge_cases() {
    // empty graph, single edge, self-contained clique
    for edges in [vec![], vec![(0u32, 1u32)], vec![(0, 1), (1, 2), (2, 0)]] {
        let g = Arc::new(DiGraph::from_edges(3, &edges));
        let tc = TransitiveClosure::build(&g);
        for name in PLAIN_NAMES {
            let idx = build_plain(name, &g);
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(idx.query(s, t), tc.reaches(s, t), "{name} on {edges:?}");
                }
            }
        }
    }
}

#[test]
fn sizes_are_reported_consistently() {
    let g = Arc::new(Shape::Sparse.generate(120, 9));
    for name in PLAIN_NAMES {
        if !plain_feasible(name, 120, g.num_edges()) {
            continue;
        }
        let idx = build_plain(name, &g);
        if name.starts_with("online") {
            assert_eq!(idx.size_bytes(), 0, "{name}");
        } else {
            assert!(idx.size_bytes() > 0, "{name} must report a footprint");
            assert!(idx.size_entries() > 0, "{name} must report entries");
        }
    }
}
