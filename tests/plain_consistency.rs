//! Integration test: every plain index agrees with the transitive
//! closure on every graph shape the workload generators produce —
//! the central cross-index invariant of the workspace.

use reach_bench::registry::{
    build_plain, build_plain_prepared, plain_feasible, plain_names, BuildOpts,
};
use reach_bench::workloads::Shape;
use reach_graph::PreparedGraph;
use reachability::prelude::*;
use std::sync::Arc;

fn check_shape(shape: Shape, n: usize, seed: u64) {
    let g = Arc::new(shape.generate(n, seed));
    let tc = TransitiveClosure::build(&g);
    for name in plain_names() {
        if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
            continue;
        }
        let idx = build_plain(name, &g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    idx.query(s, t),
                    tc.reaches(s, t),
                    "{name} on {} at {s:?}->{t:?}",
                    shape.name()
                );
            }
        }
    }
}

#[test]
fn all_indexes_agree_on_sparse_dags() {
    check_shape(Shape::Sparse, 60, 1);
}

#[test]
fn all_indexes_agree_on_dense_dags() {
    check_shape(Shape::Dense, 50, 2);
}

#[test]
fn all_indexes_agree_on_deep_dags() {
    check_shape(Shape::Deep, 100, 3);
}

#[test]
fn all_indexes_agree_on_power_law_dags() {
    check_shape(Shape::PowerLaw, 70, 4);
}

#[test]
fn all_indexes_agree_on_tree_like_dags() {
    check_shape(Shape::TreeLike, 80, 5);
}

#[test]
fn all_indexes_agree_on_cyclic_graphs() {
    check_shape(Shape::Cyclic, 60, 6);
}

#[test]
fn all_indexes_agree_on_edge_cases() {
    // empty graph, single edge, self-contained clique
    for edges in [vec![], vec![(0u32, 1u32)], vec![(0, 1), (1, 2), (2, 0)]] {
        let g = Arc::new(DiGraph::from_edges(3, &edges));
        let tc = TransitiveClosure::build(&g);
        for name in plain_names() {
            let idx = build_plain(name, &g);
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(idx.query(s, t), tc.reaches(s, t), "{name} on {edges:?}");
                }
            }
        }
    }
}

/// Pipeline builds (shared [`PreparedGraph`]) must answer identically
/// to legacy standalone builds, for every registry entry.
fn check_pipeline_matches_legacy(g: &Arc<DiGraph>, what: &str) {
    let prepared = PreparedGraph::new_shared(Arc::clone(g));
    let opts = BuildOpts::default();
    for name in plain_names() {
        if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
            continue;
        }
        let legacy = build_plain(name, g);
        let piped = build_plain_prepared(name, &prepared, &opts);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    piped.query(s, t),
                    legacy.query(s, t),
                    "{name} pipeline vs legacy on {what} at {s:?}->{t:?}"
                );
            }
        }
    }
    assert!(
        prepared.condensation_runs() <= 1,
        "the pipeline sweep over {what} must condense at most once"
    );
}

#[test]
fn pipeline_matches_legacy_on_figure1() {
    let g = Arc::new(reach_graph::fixtures::figure1a());
    check_pipeline_matches_legacy(&g, "figure-1a");
}

#[test]
fn pipeline_matches_legacy_on_random_graphs() {
    for (shape, n, seed) in [
        (Shape::Sparse, 60, 11),
        (Shape::Cyclic, 50, 12),
        (Shape::PowerLaw, 55, 13),
    ] {
        let g = Arc::new(shape.generate(n, seed));
        check_pipeline_matches_legacy(&g, shape.name());
    }
}

#[test]
fn two_builds_on_one_prepared_graph_share_the_condensation() {
    let g = Arc::new(Shape::Cyclic.generate(80, 21));
    let prepared = PreparedGraph::new_shared(Arc::clone(&g));
    let a = reach_core::Condensed::from_prepared(&prepared, |dag| {
        reach_core::tree_cover::TreeCover::build(dag)
    });
    let b = reach_core::Condensed::from_prepared(&prepared, |dag| reach_core::pll::Pll::build(dag));
    assert!(Arc::ptr_eq(
        &a.shared_condensation(),
        &b.shared_condensation()
    ));
    assert!(Arc::ptr_eq(
        &a.shared_condensation(),
        prepared.condensation()
    ));
    assert_eq!(prepared.condensation_runs(), 1);
    // the prepared graph also hands out the original digraph by Arc,
    // never by deep copy
    assert!(Arc::ptr_eq(prepared.graph(), &g));
}

#[test]
fn sizes_are_reported_consistently() {
    let g = Arc::new(Shape::Sparse.generate(120, 9));
    for name in plain_names() {
        if !plain_feasible(name, 120, g.num_edges()) {
            continue;
        }
        let idx = build_plain(name, &g);
        if name.starts_with("online") {
            assert_eq!(idx.size_bytes(), 0, "{name}");
        } else {
            assert!(idx.size_bytes() > 0, "{name} must report a footprint");
            assert!(idx.size_entries() > 0, "{name} must report entries");
        }
    }
}
