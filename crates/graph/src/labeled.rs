//! Edge-labeled graphs and bitset label sets (§2.2 of the survey).

use crate::digraph::{DiGraph, DiGraphBuilder};
use crate::error::GraphError;
use crate::vertex::VertexId;
use std::fmt;

/// Maximum alphabet size supported by [`LabelSet`].
pub const MAX_LABELS: usize = 64;

/// An edge label: an index into a small alphabet (`0..64`).
///
/// All path-constrained indexing work surveyed in §4 assumes a small
/// label alphabet (the paper's running example has three labels:
/// `friendOf`, `follows`, `worksFor`); 64 labels lets every
/// sufficient-path-label-set operation run on a single machine word.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Label(pub u8);

impl Label {
    /// Builds a label, checking it fits the alphabet.
    pub fn try_new(l: u32) -> Result<Self, GraphError> {
        if (l as usize) < MAX_LABELS {
            Ok(Label(l as u8))
        } else {
            Err(GraphError::LabelOutOfRange { label: l })
        }
    }

    /// The label as a table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A set of edge labels, packed into one `u64`.
///
/// This is the currency of label-constrained reachability: an
/// alternation constraint `(l1 ∪ l2 ∪ …)*` *is* a `LabelSet`, and the
/// sufficient path-label sets of §4.1 are `LabelSet`s ordered by
/// inclusion.
///
/// ```
/// use reach_graph::{Label, LabelSet};
///
/// let s = LabelSet::from_labels([Label(0), Label(2)]);
/// assert!(s.contains(Label(2)) && !s.contains(Label(1)));
/// assert!(LabelSet::singleton(Label(0)).is_subset_of(s));
/// assert_eq!(s.union(LabelSet::singleton(Label(1))), LabelSet::full(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LabelSet(pub u64);

impl LabelSet {
    /// The empty label set.
    pub const EMPTY: LabelSet = LabelSet(0);

    /// The set containing every label of a `k`-label alphabet.
    pub fn full(k: usize) -> Self {
        assert!(k <= MAX_LABELS);
        if k == MAX_LABELS {
            LabelSet(u64::MAX)
        } else {
            LabelSet((1u64 << k) - 1)
        }
    }

    /// The singleton set `{l}`.
    #[inline]
    pub fn singleton(l: Label) -> Self {
        LabelSet(1u64 << l.0)
    }

    /// Builds a set from an iterator of labels.
    pub fn from_labels<I: IntoIterator<Item = Label>>(labels: I) -> Self {
        labels.into_iter().fold(LabelSet::EMPTY, |s, l| s.insert(l))
    }

    /// Set with `l` added.
    #[inline]
    #[must_use]
    pub fn insert(self, l: Label) -> Self {
        LabelSet(self.0 | (1u64 << l.0))
    }

    /// Whether `l` is a member.
    #[inline]
    pub fn contains(self, l: Label) -> bool {
        self.0 & (1u64 << l.0) != 0
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: LabelSet) -> Self {
        LabelSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: LabelSet) -> Self {
        LabelSet(self.0 & other.0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: LabelSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of labels in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the member labels in ascending order.
    pub fn iter(self) -> impl Iterator<Item = Label> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let l = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(Label(l))
            }
        })
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", l.0)?;
        }
        write!(f, "}}")
    }
}

/// Mutable builder for [`LabeledGraph`].
#[derive(Debug, Clone, Default)]
pub struct LabeledGraphBuilder {
    num_vertices: usize,
    num_labels: usize,
    edges: Vec<(u32, u32, u8)>,
}

impl LabeledGraphBuilder {
    /// Creates a builder for `n` vertices and a `k`-label alphabet.
    ///
    /// # Panics
    /// Panics if `k > 64`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k <= MAX_LABELS, "label alphabet capped at {MAX_LABELS}");
        LabeledGraphBuilder {
            num_vertices: n,
            num_labels: k,
            edges: Vec::new(),
        }
    }

    /// Adds a fresh vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = VertexId::new(self.num_vertices);
        self.num_vertices += 1;
        v
    }

    /// Adds the labeled edge `u -l-> v`.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints or labels; use
    /// [`try_add_edge`](Self::try_add_edge) for fallible insertion.
    pub fn add_edge(&mut self, u: VertexId, l: Label, v: VertexId) {
        self.try_add_edge(u, l, v).expect("invalid labeled edge");
    }

    /// Adds the labeled edge `u -l-> v`, checking bounds.
    pub fn try_add_edge(&mut self, u: VertexId, l: Label, v: VertexId) -> Result<(), GraphError> {
        for w in [u, v] {
            if w.index() >= self.num_vertices {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: w.0,
                    num_vertices: self.num_vertices,
                });
            }
        }
        if l.index() >= self.num_labels {
            return Err(GraphError::LabelOutOfRange { label: l.0 as u32 });
        }
        self.edges.push((u.0, v.0, l.0));
        Ok(())
    }

    /// Freezes the builder into a [`LabeledGraph`]. Multi-edges with
    /// different labels are kept; exact duplicates are removed.
    pub fn build(mut self) -> LabeledGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        LabeledGraph::from_sorted_edges(self.num_vertices, self.num_labels, &self.edges)
    }
}

/// An immutable edge-labeled digraph in CSR form (§2.2's
/// `G = (V, E, L)`), with forward and reverse adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledGraph {
    num_labels: usize,
    out_offsets: Vec<u32>,
    out_targets: Vec<VertexId>,
    out_labels: Vec<Label>,
    in_offsets: Vec<u32>,
    in_sources: Vec<VertexId>,
    in_labels: Vec<Label>,
}

impl LabeledGraph {
    /// Builds a labeled graph from an explicit `(u, label, v)` edge list.
    pub fn from_edges(n: usize, k: usize, edges: &[(u32, u8, u32)]) -> Self {
        let mut b = LabeledGraphBuilder::new(n, k);
        for &(u, l, v) in edges {
            b.add_edge(VertexId(u), Label(l), VertexId(v));
        }
        b.build()
    }

    fn from_sorted_edges(n: usize, k: usize, edges: &[(u32, u32, u8)]) -> Self {
        let m = edges.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for &(u, v, _) in edges {
            out_offsets[u as usize + 1] += 1;
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_targets = vec![VertexId(0); m];
        let mut out_labels = vec![Label(0); m];
        let mut in_sources = vec![VertexId(0); m];
        let mut in_labels = vec![Label(0); m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(u, v, l) in edges {
            let o = &mut out_cursor[u as usize];
            out_targets[*o as usize] = VertexId(v);
            out_labels[*o as usize] = Label(l);
            *o += 1;
            let i = &mut in_cursor[v as usize];
            in_sources[*i as usize] = VertexId(u);
            in_labels[*i as usize] = Label(l);
            *i += 1;
        }
        LabeledGraph {
            num_labels: k,
            out_offsets,
            out_targets,
            out_labels,
            in_offsets,
            in_sources,
            in_labels,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of labeled edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Size of the label alphabet.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over all edges as `(source, label, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, Label, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_edges(u).map(move |(v, l)| (u, l, v)))
    }

    /// Out-edges of `v` as `(target, label)` pairs.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Label)> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        self.out_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.out_labels[lo..hi].iter().copied())
    }

    /// In-edges of `v` as `(source, label)` pairs.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Label)> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        self.in_sources[lo..hi]
            .iter()
            .copied()
            .zip(self.in_labels[lo..hi].iter().copied())
    }

    /// Out-degree of `v` (labeled multi-edges counted individually).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Total degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Forgets labels, producing the underlying plain digraph
    /// (parallel edges with distinct labels collapse to one).
    pub fn to_digraph(&self) -> DiGraph {
        let mut b = DiGraphBuilder::with_capacity(self.num_vertices(), self.num_edges());
        for (u, _, v) in self.edges() {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The subgraph containing only edges whose label lies in `allowed`
    /// (the "projection" a label-constrained query restricts traversal to).
    pub fn project(&self, allowed: LabelSet) -> DiGraph {
        let mut b = DiGraphBuilder::with_capacity(self.num_vertices(), self.num_edges());
        for (u, l, v) in self.edges() {
            if allowed.contains(l) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        4 * (self.out_offsets.len() + self.in_offsets.len())
            + 5 * (self.out_targets.len() + self.in_sources.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_label_graph() -> LabeledGraph {
        // 0 -a-> 1 -b-> 2, 0 -b-> 2
        LabeledGraph::from_edges(3, 2, &[(0, 0, 1), (1, 1, 2), (0, 1, 2)])
    }

    #[test]
    fn label_set_algebra() {
        let a = Label(0);
        let b = Label(1);
        let s = LabelSet::singleton(a).insert(b);
        assert!(s.contains(a) && s.contains(b));
        assert_eq!(s.len(), 2);
        assert!(LabelSet::singleton(a).is_subset_of(s));
        assert!(!s.is_subset_of(LabelSet::singleton(a)));
        assert_eq!(s.intersect(LabelSet::singleton(b)), LabelSet::singleton(b));
        assert_eq!(LabelSet::singleton(a).union(LabelSet::singleton(b)), s);
        assert!(LabelSet::EMPTY.is_empty());
        assert_eq!(LabelSet::full(3).len(), 3);
        assert_eq!(LabelSet::full(64).len(), 64);
    }

    #[test]
    fn label_set_iter_ascending() {
        let s = LabelSet::from_labels([Label(5), Label(1), Label(63)]);
        let got: Vec<u8> = s.iter().map(|l| l.0).collect();
        assert_eq!(got, vec![1, 5, 63]);
    }

    #[test]
    fn label_set_debug_format() {
        let s = LabelSet::from_labels([Label(2), Label(0)]);
        assert_eq!(format!("{s:?}"), "{0,2}");
    }

    #[test]
    fn labeled_adjacency() {
        let g = two_label_graph();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_labels(), 2);
        let out0: Vec<_> = g.out_edges(VertexId(0)).collect();
        assert_eq!(out0, vec![(VertexId(1), Label(0)), (VertexId(2), Label(1))]);
        let in2: Vec<_> = g.in_edges(VertexId(2)).collect();
        assert_eq!(in2, vec![(VertexId(0), Label(1)), (VertexId(1), Label(1))]);
    }

    #[test]
    fn multi_edges_with_distinct_labels_kept() {
        let g = LabeledGraph::from_edges(2, 2, &[(0, 0, 1), (0, 1, 1), (0, 1, 1)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn builder_validates() {
        let mut b = LabeledGraphBuilder::new(2, 2);
        assert!(b.try_add_edge(VertexId(0), Label(5), VertexId(1)).is_err());
        assert!(b.try_add_edge(VertexId(0), Label(1), VertexId(9)).is_err());
        assert!(b.try_add_edge(VertexId(0), Label(1), VertexId(1)).is_ok());
    }

    #[test]
    fn projection_filters_labels() {
        let g = two_label_graph();
        let only_a = g.project(LabelSet::singleton(Label(0)));
        assert_eq!(only_a.num_edges(), 1);
        assert!(only_a.has_edge(VertexId(0), VertexId(1)));
        let only_b = g.project(LabelSet::singleton(Label(1)));
        assert_eq!(only_b.num_edges(), 2);
    }

    #[test]
    fn to_digraph_collapses_parallel_edges() {
        let g = LabeledGraph::from_edges(2, 2, &[(0, 0, 1), (0, 1, 1)]);
        assert_eq!(g.to_digraph().num_edges(), 1);
    }

    #[test]
    fn label_try_new_bounds() {
        assert!(Label::try_new(63).is_ok());
        assert!(Label::try_new(64).is_err());
    }
}
