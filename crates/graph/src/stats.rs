//! Workload statistics for bench-harness reporting.

use crate::digraph::DiGraph;
use crate::scc::{tarjan_scc, SccDecomposition};
use crate::topo::topological_levels;

/// Structural statistics of a digraph, printed alongside every
/// experiment so the reproduced "shape" claims can be interpreted.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Average degree `m / n`.
    pub avg_degree: f64,
    /// Maximum total degree of any vertex.
    pub max_degree: usize,
    /// Number of strongly connected components.
    pub num_sccs: usize,
    /// Size of the largest SCC.
    pub largest_scc: usize,
    /// Longest-path depth if acyclic, else `None`.
    pub depth: Option<u32>,
    /// Number of source vertices (in-degree 0).
    pub num_sources: usize,
    /// Number of sink vertices (out-degree 0).
    pub num_sinks: usize,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &DiGraph) -> GraphStats {
    graph_stats_with_scc(g, &tarjan_scc(g))
}

/// [`graph_stats`] reusing an SCC decomposition computed elsewhere
/// (the prepared-graph layer memoizes one per graph).
pub fn graph_stats_with_scc(g: &DiGraph, scc: &SccDecomposition) -> GraphStats {
    let n = g.num_vertices();
    let m = g.num_edges();
    let mut sizes = vec![0usize; scc.num_components()];
    for v in g.vertices() {
        sizes[scc.component_of(v) as usize] += 1;
    }
    GraphStats {
        num_vertices: n,
        num_edges: m,
        avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_degree: g.vertices().map(|v| g.degree(v)).max().unwrap_or(0),
        num_sccs: scc.num_components(),
        largest_scc: sizes.iter().copied().max().unwrap_or(0),
        depth: topological_levels(g).map(|l| l.into_iter().max().unwrap_or(0)),
        num_sources: g.vertices().filter(|&v| g.in_degree(v) == 0).count(),
        num_sinks: g.vertices().filter(|&v| g.out_degree(v) == 0).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_a_chain() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.num_sccs, 4);
        assert_eq!(s.largest_scc, 1);
        assert_eq!(s.depth, Some(3));
        assert_eq!(s.num_sources, 1);
        assert_eq!(s.num_sinks, 1);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn stats_of_a_cycle() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = graph_stats(&g);
        assert_eq!(s.num_sccs, 1);
        assert_eq!(s.largest_scc, 3);
        assert_eq!(s.depth, None);
        assert_eq!(s.num_sources, 0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }
}
