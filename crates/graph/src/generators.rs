//! Synthetic workload generators.
//!
//! The survey's comparisons span graph shapes with very different index
//! behaviour: shallow-and-wide DAGs (tree-cover indexes shine), deep
//! layered DAGs (level filters shine), hub-heavy power-law graphs
//! (2-hop/landmark orders shine), and cyclic general graphs (exercise
//! the condensation path). These generators produce each shape
//! deterministically from a caller-supplied RNG, standing in for the
//! real-world datasets of the cited systems (see DESIGN.md §2).

use crate::digraph::{Dag, DiGraph, DiGraphBuilder};
use crate::labeled::{Label, LabeledGraph, LabeledGraphBuilder};
use rand::Rng;

/// A uniform random DAG with `n` vertices and (up to) `m` edges: edges
/// are sampled uniformly over pairs `(u, v)` with `u < v`, so vertex id
/// order is a topological order. Duplicate samples are deduplicated,
/// so the realized edge count can be slightly below `m`.
pub fn random_dag<R: Rng>(n: usize, m: usize, rng: &mut R) -> Dag {
    assert!(n >= 2, "need at least two vertices");
    let mut b = DiGraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let u = rng.random_range(0..n as u32 - 1);
        let v = rng.random_range(u + 1..n as u32);
        b.add_edge(u.into(), v.into());
    }
    Dag::new(b.build()).expect("construction is acyclic by id order")
}

/// A layered DAG: `layers` layers of `width` vertices; each vertex gets
/// edges to `fan_out` random vertices in the next layer. This is the
/// deep, narrow shape where topological-level filters prune best.
pub fn layered_dag<R: Rng>(layers: usize, width: usize, fan_out: usize, rng: &mut R) -> Dag {
    assert!(layers >= 1 && width >= 1);
    let n = layers * width;
    let mut b = DiGraphBuilder::with_capacity(n, n * fan_out);
    for layer in 0..layers - 1 {
        for i in 0..width {
            let u = (layer * width + i) as u32;
            for _ in 0..fan_out {
                let v = ((layer + 1) * width + rng.random_range(0..width)) as u32;
                b.add_edge(u.into(), v.into());
            }
        }
    }
    Dag::new(b.build()).expect("layered construction is acyclic")
}

/// A preferential-attachment DAG: vertex `v` links to `edges_per_vertex`
/// predecessors chosen with probability proportional to their current
/// degree (plus one). Produces the hub-dominated, power-law-ish degree
/// distribution of citation and social graphs, where degree-ordered
/// 2-hop labelings (DL/PLL/TOL) prune dramatically.
pub fn power_law_dag<R: Rng>(n: usize, edges_per_vertex: usize, rng: &mut R) -> Dag {
    assert!(n >= 2);
    let mut b = DiGraphBuilder::with_capacity(n, n * edges_per_vertex);
    // repeated-vertex urn: hubs appear many times
    let mut urn: Vec<u32> = vec![0];
    for v in 1..n as u32 {
        for _ in 0..edges_per_vertex.min(v as usize) {
            let u = urn[rng.random_range(0..urn.len())];
            // edge from older to newer keeps the graph acyclic
            b.add_edge(u.into(), v.into());
            urn.push(u);
        }
        urn.push(v);
    }
    Dag::new(b.build()).expect("attachment construction is acyclic")
}

/// A random tree on `n` vertices (each vertex's parent is a uniformly
/// random earlier vertex) plus `extra_edges` additional random forward
/// edges — the "spanning tree + few non-tree edges" regime where
/// tree-cover indexes (dual labeling, GRIPP) were designed to excel.
pub fn random_tree_plus_edges<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> Dag {
    assert!(n >= 2);
    let mut b = DiGraphBuilder::with_capacity(n, n - 1 + extra_edges);
    for v in 1..n as u32 {
        let parent = rng.random_range(0..v);
        b.add_edge(parent.into(), v.into());
    }
    for _ in 0..extra_edges {
        let u = rng.random_range(0..n as u32 - 1);
        let v = rng.random_range(u + 1..n as u32);
        b.add_edge(u.into(), v.into());
    }
    Dag::new(b.build()).expect("forward edges keep the graph acyclic")
}

/// A general (possibly cyclic) Erdős–Rényi style digraph `G(n, m)`:
/// `m` edges sampled uniformly over all ordered pairs, self-loops
/// excluded. Exercises the SCC-condensation path of every DAG-only index.
pub fn random_digraph<R: Rng>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    assert!(n >= 2);
    let mut b = DiGraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let u = rng.random_range(0..n as u32);
        let mut v = rng.random_range(0..n as u32 - 1);
        if v >= u {
            v += 1;
        }
        b.add_edge(u.into(), v.into());
    }
    b.build()
}

/// Weights for assigning labels to generated edges.
///
/// Real edge-labeled graphs are skewed (a few relationship types
/// dominate); `zipf` reproduces that, `uniform` is the control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelDistribution {
    /// Every label equally likely.
    Uniform,
    /// Label `i` has weight `1 / (i + 1)` (Zipf with exponent 1).
    Zipf,
}

fn sample_label<R: Rng>(k: usize, dist: LabelDistribution, rng: &mut R) -> Label {
    match dist {
        LabelDistribution::Uniform => Label(rng.random_range(0..k as u8)),
        LabelDistribution::Zipf => {
            let total: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
            let mut x = rng.random_range(0.0..total);
            for i in 0..k {
                x -= 1.0 / (i + 1) as f64;
                if x <= 0.0 {
                    return Label(i as u8);
                }
            }
            Label(k as u8 - 1)
        }
    }
}

/// Assigns labels from a `k`-letter alphabet to every edge of `g`.
pub fn label_edges<R: Rng>(
    g: &DiGraph,
    k: usize,
    dist: LabelDistribution,
    rng: &mut R,
) -> LabeledGraph {
    let mut b = LabeledGraphBuilder::new(g.num_vertices(), k);
    for (u, v) in g.edges() {
        b.add_edge(u, sample_label(k, dist, rng), v);
    }
    b.build()
}

/// A labeled uniform random digraph: [`random_digraph`] + [`label_edges`].
pub fn random_labeled_digraph<R: Rng>(
    n: usize,
    m: usize,
    k: usize,
    dist: LabelDistribution,
    rng: &mut R,
) -> LabeledGraph {
    let g = random_digraph(n, m, rng);
    label_edges(&g, k, dist, rng)
}

/// A labeled random DAG: [`random_dag`] + [`label_edges`].
pub fn random_labeled_dag<R: Rng>(
    n: usize,
    m: usize,
    k: usize,
    dist: LabelDistribution,
    rng: &mut R,
) -> LabeledGraph {
    let g = random_dag(n, m, rng);
    label_edges(g.graph(), k, dist, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn random_dag_is_acyclic_and_sized() {
        let dag = random_dag(100, 300, &mut rng());
        assert_eq!(dag.num_vertices(), 100);
        assert!(dag.num_edges() <= 300);
        assert!(dag.num_edges() > 250, "dedup should lose only a few edges");
    }

    #[test]
    fn layered_dag_shape() {
        let dag = layered_dag(5, 10, 2, &mut rng());
        assert_eq!(dag.num_vertices(), 50);
        // last layer has no out-edges
        for i in 40..50 {
            assert_eq!(dag.out_degree(crate::VertexId(i)), 0);
        }
    }

    #[test]
    fn power_law_dag_has_hubs() {
        let dag = power_law_dag(500, 3, &mut rng());
        let max_deg = dag.vertices().map(|v| dag.degree(v)).max().unwrap();
        let avg = 2.0 * dag.num_edges() as f64 / dag.num_vertices() as f64;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "expected hub structure: max {max_deg} vs avg {avg}"
        );
    }

    #[test]
    fn tree_plus_edges_counts() {
        let dag = random_tree_plus_edges(50, 10, &mut rng());
        assert!(dag.num_edges() >= 49);
        assert!(dag.num_edges() <= 59);
    }

    #[test]
    fn random_digraph_no_self_loops() {
        let g = random_digraph(30, 200, &mut rng());
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn determinism_under_seed() {
        let a = random_dag(50, 120, &mut SmallRng::seed_from_u64(7));
        let b = random_dag(50, 120, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn zipf_labels_are_skewed() {
        let g = random_digraph(200, 2000, &mut rng());
        let lg = label_edges(&g, 8, LabelDistribution::Zipf, &mut rng());
        let mut counts = [0usize; 8];
        for (_, l, _) in lg.edges() {
            counts[l.index()] += 1;
        }
        assert!(
            counts[0] > 2 * counts[7],
            "label 0 should dominate: {counts:?}"
        );
    }

    #[test]
    fn uniform_labels_cover_alphabet() {
        let lg = random_labeled_digraph(100, 800, 4, LabelDistribution::Uniform, &mut rng());
        let mut seen = [false; 4];
        for (_, l, _) in lg.edges() {
            seen[l.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labeled_dag_is_acyclic() {
        let lg = random_labeled_dag(60, 150, 4, LabelDistribution::Uniform, &mut rng());
        assert!(Dag::new(lg.to_digraph()).is_ok());
    }
}
