//! Shared build artifacts: compute condensation, reverse graph, and
//! stats at most once per input graph.
//!
//! §5 of the survey compares the whole taxonomy on construction cost,
//! yet a naive sweep over all ~24 plain techniques re-runs SCC
//! condensation and re-derives the topological order once *per index*.
//! [`PreparedGraph`] is the shared substrate: an `Arc`-shared bundle
//! that memoizes each artifact on first use, so a full-registry sweep
//! condenses exactly once. The memoization is observable —
//! [`condensation_runs`](PreparedGraph::condensation_runs) counts how
//! many times the condensation was actually computed, which the test
//! suite pins to 1.

use crate::condense::{Condensation, CondenseTiming};
use crate::digraph::{Dag, DiGraph};
use crate::stats::{graph_stats_with_scc, GraphStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Lazily memoized build artifacts for one input graph.
///
/// Every builder in the registry receives the same `Arc<PreparedGraph>`
/// and pulls whichever artifacts it needs:
///
/// * [`condensation`](Self::condensation) — SCC decomposition,
///   vertex → component map, and the condensed [`Dag`] with topo
///   order/ranks (the §3.1 general-graph reduction);
/// * [`reverse`](Self::reverse) — the edge-reversed graph, for indexes
///   that label "who reaches v";
/// * [`stats`](Self::stats) — the degree/SCC/depth summary printed by
///   the bench harness.
///
/// Each artifact is computed at most once, on first request, and then
/// shared by reference; the input graph itself is behind an `Arc` so
/// builders can retain it without deep-copying CSR arrays.
///
/// ```
/// use reach_graph::{DiGraph, PreparedGraph};
/// use std::sync::Arc;
///
/// let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let prepared = PreparedGraph::new(g);
/// assert_eq!(prepared.condensation_runs(), 0);
/// let a = prepared.condensation();
/// let b = prepared.condensation();
/// assert!(Arc::ptr_eq(a, b));
/// assert_eq!(prepared.condensation_runs(), 1);
/// ```
#[derive(Debug)]
pub struct PreparedGraph {
    graph: Arc<DiGraph>,
    condensation: OnceLock<(Arc<Condensation>, CondenseTiming)>,
    reverse: OnceLock<Arc<DiGraph>>,
    stats: OnceLock<GraphStats>,
    condensation_runs: AtomicUsize,
}

impl PreparedGraph {
    /// Prepares an owned graph.
    pub fn new(graph: DiGraph) -> Arc<Self> {
        Self::new_shared(Arc::new(graph))
    }

    /// Prepares an already-shared graph without copying it.
    pub fn new_shared(graph: Arc<DiGraph>) -> Arc<Self> {
        Arc::new(PreparedGraph {
            graph,
            condensation: OnceLock::new(),
            reverse: OnceLock::new(),
            stats: OnceLock::new(),
            condensation_runs: AtomicUsize::new(0),
        })
    }

    /// The input graph.
    #[inline]
    pub fn graph(&self) -> &Arc<DiGraph> {
        &self.graph
    }

    /// Number of vertices of the input graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges of the input graph.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn condensation_cell(&self) -> &(Arc<Condensation>, CondenseTiming) {
        self.condensation.get_or_init(|| {
            self.condensation_runs.fetch_add(1, Ordering::Relaxed);
            let (cond, timing) = Condensation::new_timed(&self.graph);
            (Arc::new(cond), timing)
        })
    }

    /// The SCC condensation (memoized; computed on first call).
    pub fn condensation(&self) -> &Arc<Condensation> {
        &self.condensation_cell().0
    }

    /// The condensed DAG with its topological order and ranks.
    pub fn dag(&self) -> &Dag {
        self.condensation().dag()
    }

    /// Wall-clock breakdown of the (single) condensation, forcing it
    /// if it has not run yet.
    pub fn condense_timing(&self) -> CondenseTiming {
        self.condensation_cell().1
    }

    /// Condensation cost attributable to *this* build: the real timing
    /// the first time it is requested, zero once the artifact is
    /// already shared. `BuildReport` uses this so only one index in a
    /// sweep is charged for condensing.
    pub fn take_condense_cost(&self) -> CondenseTiming {
        let before = self.condensation.get().is_some();
        let timing = self.condense_timing();
        if before {
            CondenseTiming::default()
        } else {
            timing
        }
    }

    /// How many times the condensation has actually been computed for
    /// this graph — 0 before first use, and never more than 1.
    pub fn condensation_runs(&self) -> usize {
        self.condensation_runs.load(Ordering::Relaxed)
    }

    /// The edge-reversed input graph (memoized).
    pub fn reverse(&self) -> &Arc<DiGraph> {
        self.reverse.get_or_init(|| Arc::new(self.graph.reverse()))
    }

    /// Structural statistics of the input graph (memoized; reuses the
    /// condensation's SCC decomposition instead of re-running Tarjan).
    pub fn stats(&self) -> &GraphStats {
        self.stats
            .get_or_init(|| graph_stats_with_scc(&self.graph, self.condensation().scc()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::VertexId;

    fn figure_eight() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
    }

    #[test]
    fn condensation_is_computed_exactly_once() {
        let prepared = PreparedGraph::new(figure_eight());
        assert_eq!(prepared.condensation_runs(), 0);
        for _ in 0..5 {
            let _ = prepared.condensation();
            let _ = prepared.dag();
            let _ = prepared.stats();
        }
        assert_eq!(prepared.condensation_runs(), 1);
    }

    #[test]
    fn artifacts_are_pointer_shared() {
        let prepared = PreparedGraph::new(figure_eight());
        assert!(Arc::ptr_eq(
            prepared.condensation(),
            prepared.condensation()
        ));
        assert!(Arc::ptr_eq(prepared.reverse(), prepared.reverse()));
    }

    #[test]
    fn dag_matches_direct_condensation() {
        let g = figure_eight();
        let direct = Condensation::new(&g);
        let prepared = PreparedGraph::new(g);
        assert_eq!(prepared.dag().num_vertices(), direct.dag().num_vertices());
        assert_eq!(prepared.dag().num_edges(), direct.dag().num_edges());
        for v in prepared.graph().vertices() {
            assert_eq!(
                prepared.condensation().component_of(v),
                direct.component_of(v)
            );
        }
    }

    #[test]
    fn first_build_is_charged_for_condensing_later_builds_are_not() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let prepared = PreparedGraph::new(g);
        let _first = prepared.take_condense_cost();
        let second = prepared.take_condense_cost();
        assert_eq!(second, CondenseTiming::default());
    }

    #[test]
    fn reverse_and_stats_agree_with_graph() {
        let prepared = PreparedGraph::new(figure_eight());
        assert!(prepared.reverse().has_edge(VertexId(1), VertexId(0)));
        assert_eq!(prepared.stats().num_vertices, 6);
        assert_eq!(prepared.stats().num_sccs, 2);
    }
}
