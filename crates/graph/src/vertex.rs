//! Dense vertex identifiers.

use std::fmt;

/// A vertex identifier: a dense index into a graph's vertex set.
///
/// `VertexId` is a transparent `u32` newtype, so vertex-indexed tables
/// are plain `Vec`s and adjacency lists can be stored as `Vec<VertexId>`
/// with no conversion cost. Graphs in this workspace are capped at
/// `u32::MAX` vertices, which matches the scale the surveyed indexes
/// target (millions of vertices).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex id as a `usize`, for indexing vertex tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a vertex id from a table index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn new(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "vertex index exceeds u32");
        VertexId(i as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn ordering_matches_ids() {
        assert!(VertexId(1) < VertexId(2));
        assert_eq!(VertexId(7), VertexId(7));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", VertexId(3)), "v3");
        assert_eq!(format!("{}", VertexId(3)), "3");
    }
}
