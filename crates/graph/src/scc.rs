//! Strongly connected components via iterative Tarjan.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// The result of an SCC decomposition.
///
/// Components are numbered `0..num_components` in **reverse topological
/// order of the condensation**: Tarjan pops a component only after all
/// components reachable from it, so if component `a` can reach
/// component `b` (with `a != b`) then `comp(a) > comp(b)`.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    comp_of: Vec<u32>,
    num_components: usize,
}

impl SccDecomposition {
    /// The component id of vertex `v`.
    #[inline]
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.comp_of[v.index()]
    }

    /// The number of strongly connected components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Whether `s` and `t` are in the same SCC (mutually reachable).
    #[inline]
    pub fn same_component(&self, s: VertexId, t: VertexId) -> bool {
        self.comp_of[s.index()] == self.comp_of[t.index()]
    }

    /// Component id per vertex, as a slice.
    pub fn components(&self) -> &[u32] {
        &self.comp_of
    }

    /// Groups vertices by component id.
    pub fn members(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.num_components];
        for (i, &c) in self.comp_of.iter().enumerate() {
            groups[c as usize].push(VertexId::new(i));
        }
        groups
    }
}

/// Computes the SCCs of `g` with an iterative Tarjan traversal
/// (explicit stack, so deep graphs cannot overflow the call stack).
pub fn tarjan_scc(g: &DiGraph) -> SccDecomposition {
    const UNVISITED: u32 = u32::MAX;
    let n = g.num_vertices();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0u32;

    // Each frame is (vertex, cursor into its out-neighbor list).
    let mut call: Vec<(u32, u32)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            let neighbors = g.out_neighbors(VertexId(v));
            if (*cursor as usize) < neighbors.len() {
                let w = neighbors[*cursor as usize].0;
                *cursor += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of a component: pop it off the Tarjan stack.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = num_components;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }

    SccDecomposition {
        comp_of,
        num_components: num_components as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_in_a_dag() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 4);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(scc.same_component(u, v), u == v);
            }
        }
    }

    #[test]
    fn one_big_cycle() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 1);
        assert!(scc.same_component(VertexId(0), VertexId(2)));
    }

    #[test]
    fn two_cycles_bridged() {
        // {0,1} -> {2,3}
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 2);
        assert!(scc.same_component(VertexId(0), VertexId(1)));
        assert!(scc.same_component(VertexId(2), VertexId(3)));
        assert!(!scc.same_component(VertexId(0), VertexId(2)));
        // reverse topological numbering: source component gets the larger id
        assert!(scc.component_of(VertexId(0)) > scc.component_of(VertexId(2)));
    }

    #[test]
    fn component_ids_are_reverse_topological() {
        // chain of singleton components 0 -> 1 -> 2
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let scc = tarjan_scc(&g);
        assert!(scc.component_of(VertexId(0)) > scc.component_of(VertexId(1)));
        assert!(scc.component_of(VertexId(1)) > scc.component_of(VertexId(2)));
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), 2);
    }

    #[test]
    fn members_partition_vertices() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3)]);
        let scc = tarjan_scc(&g);
        let members = scc.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        for (cid, group) in members.iter().enumerate() {
            for &v in group {
                assert_eq!(scc.component_of(v), cid as u32);
            }
        }
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // A long path exercises the explicit stack.
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, &edges);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components(), n);
    }
}
