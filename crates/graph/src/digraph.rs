//! Frozen CSR digraphs and the checked [`Dag`] wrapper.

use crate::error::GraphError;
use crate::topo;
use crate::vertex::VertexId;
use std::ops::Deref;
use std::sync::Arc;

/// Mutable builder for [`DiGraph`].
///
/// Collects edges in insertion order, then [`build`](Self::build)
/// freezes them into CSR form. Duplicate edges are deduplicated and
/// self-loops are kept (they matter for SCC condensation of general
/// graphs but are rejected by [`Dag::new`]).
#[derive(Debug, Clone, Default)]
pub struct DiGraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl DiGraphBuilder {
    /// Creates a builder for a graph with `n` vertices `0..n`.
    pub fn new(n: usize) -> Self {
        DiGraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with a capacity hint for the edge list.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        DiGraphBuilder {
            num_vertices: n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds a fresh vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = VertexId::new(self.num_vertices);
        self.num_vertices += 1;
        v
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds; use
    /// [`try_add_edge`](Self::try_add_edge) for fallible insertion.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.try_add_edge(u, v)
            .expect("edge endpoint out of bounds");
    }

    /// Adds the directed edge `u -> v`, checking bounds.
    pub fn try_add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        for w in [u, v] {
            if w.index() >= self.num_vertices {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: w.0,
                    num_vertices: self.num_vertices,
                });
            }
        }
        self.edges.push((u.0, v.0));
        Ok(())
    }

    /// Freezes the builder into a CSR [`DiGraph`].
    pub fn build(mut self) -> DiGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        DiGraph::from_sorted_edges(self.num_vertices, &self.edges)
    }
}

/// An immutable directed graph in compressed-sparse-row form.
///
/// Stores both forward (`out`) and reverse (`in`) adjacency, each as an
/// offset array plus a flat neighbor array, so the per-vertex neighbor
/// lists are contiguous slices with no pointer chasing. Neighbor lists
/// are sorted by vertex id.
///
/// ```
/// use reach_graph::{DiGraph, VertexId};
///
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(1), VertexId(2)]);
/// assert_eq!(g.in_degree(VertexId(2)), 2);
/// assert!(g.has_edge(VertexId(0), VertexId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<u32>,
    in_sources: Vec<VertexId>,
}

impl DiGraph {
    /// Builds a graph from an explicit edge list (convenience for
    /// tests and examples).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = DiGraphBuilder::with_capacity(n, edges.len());
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v));
        }
        b.build()
    }

    fn from_sorted_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let m = edges.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for &(u, v) in edges {
            out_offsets[u as usize + 1] += 1;
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut out_targets = vec![VertexId(0); m];
        let mut in_sources = vec![VertexId(0); m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        // `edges` is sorted by (u, v), so out-lists come out sorted; the
        // in-lists come out sorted too because sources are scanned in
        // ascending order.
        for &(u, v) in edges {
            let o = &mut out_cursor[u as usize];
            out_targets[*o as usize] = VertexId(v);
            *o += 1;
            let i = &mut in_cursor[v as usize];
            in_sources[*i as usize] = VertexId(u);
            *i += 1;
        }
        DiGraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over all edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Out-neighbors of `v`, sorted by id.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbors of `v`, sorted by id.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Whether the edge `u -> v` exists (binary search on the sorted
    /// out-list).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// The graph with every edge reversed. Indexes that label "who
    /// reaches v" run on the reverse graph.
    pub fn reverse(&self) -> DiGraph {
        DiGraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
        }
    }

    /// Approximate heap footprint in bytes, used by index-size
    /// reporting in the bench harness.
    pub fn size_bytes(&self) -> usize {
        4 * (self.out_offsets.len()
            + self.out_targets.len()
            + self.in_offsets.len()
            + self.in_sources.len())
    }
}

/// A [`DiGraph`] verified to be acyclic, carrying its topological order.
///
/// Most plain reachability indexes in the survey's Table 1 assume DAG
/// input; this wrapper makes that precondition explicit and un-forgeable.
/// General graphs are handled by condensing SCCs first
/// (see [`crate::condense`]), exactly as §3.1 of the survey describes.
///
/// The graph is held behind an [`Arc`] so builders that retain the
/// vertex set (guided search, hop labelings over the original edges)
/// can share one allocation via [`shared_graph`](Self::shared_graph)
/// instead of deep-cloning the CSR arrays per index.
#[derive(Debug, Clone)]
pub struct Dag {
    graph: Arc<DiGraph>,
    topo_order: Vec<VertexId>,
    /// position of each vertex in `topo_order`
    topo_rank: Vec<u32>,
}

impl Dag {
    /// Checks acyclicity and wraps the graph.
    pub fn new(graph: DiGraph) -> Result<Self, GraphError> {
        Self::new_shared(Arc::new(graph))
    }

    /// Checks acyclicity and wraps an already-shared graph without
    /// copying it.
    pub fn new_shared(graph: Arc<DiGraph>) -> Result<Self, GraphError> {
        match topo::topological_sort(&graph) {
            Some(order) => {
                let mut rank = vec![0u32; graph.num_vertices()];
                for (i, &v) in order.iter().enumerate() {
                    rank[v.index()] = i as u32;
                }
                Ok(Dag {
                    graph,
                    topo_order: order,
                    topo_rank: rank,
                })
            }
            None => Err(GraphError::NotAcyclic),
        }
    }

    /// Wraps a graph already known to be acyclic together with a valid
    /// topological order. Used by the condensation code, which produces
    /// both at once.
    ///
    /// # Panics
    /// Debug-asserts that `order` is a topological order of `graph`.
    pub fn from_parts(graph: DiGraph, order: Vec<VertexId>) -> Self {
        Self::from_parts_shared(Arc::new(graph), order)
    }

    /// [`from_parts`](Self::from_parts) over an already-shared graph.
    ///
    /// # Panics
    /// Debug-asserts that `order` is a topological order of `graph`.
    pub fn from_parts_shared(graph: Arc<DiGraph>, order: Vec<VertexId>) -> Self {
        debug_assert!(topo::is_topological_order(&graph, &order));
        let mut rank = vec![0u32; graph.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            rank[v.index()] = i as u32;
        }
        Dag {
            graph,
            topo_order: order,
            topo_rank: rank,
        }
    }

    /// The vertices in topological order (sources first).
    #[inline]
    pub fn topo_order(&self) -> &[VertexId] {
        &self.topo_order
    }

    /// The position of `v` in the topological order.
    #[inline]
    pub fn topo_rank(&self, v: VertexId) -> u32 {
        self.topo_rank[v.index()]
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// A shared handle to the underlying graph. Cloning the handle is
    /// O(1); every clone points at the same CSR arrays.
    #[inline]
    pub fn shared_graph(&self) -> Arc<DiGraph> {
        Arc::clone(&self.graph)
    }

    /// Consumes the wrapper, returning the underlying graph (cloning
    /// only if other handles to it are still alive).
    pub fn into_graph(self) -> DiGraph {
        Arc::try_unwrap(self.graph).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl Deref for Dag {
    type Target = DiGraph;

    fn deref(&self) -> &DiGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_adjacency() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.in_neighbors(VertexId(3)), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.in_degree(VertexId(0)), 0);
        assert_eq!(g.degree(VertexId(1)), 2);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn has_edge_checks_membership() {
        let g = diamond();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
    }

    #[test]
    fn reverse_swaps_directions() {
        let g = diamond().reverse();
        assert_eq!(g.out_neighbors(VertexId(3)), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.in_neighbors(VertexId(1)), &[VertexId(3)]);
    }

    #[test]
    fn edges_iterator_lists_all() {
        let g = diamond();
        let edges: Vec<_> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn builder_add_vertex_grows() {
        let mut b = DiGraphBuilder::new(0);
        let a = b.add_vertex();
        let c = b.add_vertex();
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.num_vertices(), 2);
        assert!(g.has_edge(a, c));
    }

    #[test]
    fn builder_rejects_out_of_bounds() {
        let mut b = DiGraphBuilder::new(1);
        let err = b.try_add_edge(VertexId(0), VertexId(5)).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfBounds {
                vertex: 5,
                num_vertices: 1
            }
        );
    }

    #[test]
    fn dag_accepts_acyclic_rejects_cyclic() {
        assert!(Dag::new(diamond()).is_ok());
        let cyclic = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(Dag::new(cyclic).unwrap_err(), GraphError::NotAcyclic);
    }

    #[test]
    fn dag_topo_rank_respects_edges() {
        let dag = Dag::new(diamond()).unwrap();
        for (u, v) in dag.graph().edges() {
            assert!(dag.topo_rank(u) < dag.topo_rank(v));
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(Dag::new(g).is_ok());
    }
}
