//! SCC condensation: the general-graph → DAG reduction of §3.1.
//!
//! Most plain reachability indexes assume DAG input. The survey's
//! standard recipe (after Tarjan \[42\]) is: coalesce every strongly
//! connected component into a representative vertex, index the
//! resulting DAG, and answer `Qr(s,t)` as
//! `same_scc(s,t) || dag_reachable(comp(s), comp(t))`.

use crate::digraph::{Dag, DiGraph, DiGraphBuilder};
use crate::scc::{tarjan_scc, SccDecomposition};
use crate::vertex::VertexId;
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one condensation, reported per build by the
/// pipeline layer (`BuildReport` in `reach-core`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CondenseTiming {
    /// Time spent in Tarjan's SCC decomposition.
    pub scc: Duration,
    /// Time spent assembling the condensed DAG and its topo order.
    pub assemble: Duration,
}

impl CondenseTiming {
    /// Total condensation time.
    pub fn total(&self) -> Duration {
        self.scc + self.assemble
    }
}

/// A condensed graph: the SCC DAG plus the vertex → component mapping.
///
/// ```
/// use reach_graph::{Condensation, DiGraph, VertexId};
///
/// // a 3-cycle feeding a sink
/// let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let c = Condensation::new(&g);
/// assert_eq!(c.dag().num_vertices(), 2);
/// assert!(c.same_component(VertexId(0), VertexId(2)));
/// assert!(!c.same_component(VertexId(0), VertexId(3)));
/// ```
#[derive(Debug, Clone)]
pub struct Condensation {
    scc: SccDecomposition,
    dag: Dag,
}

impl Condensation {
    /// Condenses `g` into its SCC DAG.
    ///
    /// Component ids double as DAG vertex ids. Tarjan numbers
    /// components in reverse topological order, so
    /// `num_components-1, ..., 1, 0` is a valid topological order of
    /// the condensation — no second sort is needed.
    pub fn new(g: &DiGraph) -> Self {
        Self::new_timed(g).0
    }

    /// [`new`](Self::new), additionally reporting how long each phase
    /// took. The pipeline layer stores the timing alongside the shared
    /// artifact so every index built on it can report the (single)
    /// condensation cost.
    pub fn new_timed(g: &DiGraph) -> (Self, CondenseTiming) {
        let start = Instant::now();
        let scc = tarjan_scc(g);
        let scc_time = start.elapsed();
        let assemble_start = Instant::now();
        let nc = scc.num_components();
        let mut b = DiGraphBuilder::with_capacity(nc, g.num_edges());
        for (u, v) in g.edges() {
            let cu = scc.component_of(u);
            let cv = scc.component_of(v);
            if cu != cv {
                b.add_edge(VertexId(cu), VertexId(cv));
            }
        }
        let graph = b.build();
        let order: Vec<VertexId> = (0..nc as u32).rev().map(VertexId).collect();
        let dag = Dag::from_parts(graph, order);
        let timing = CondenseTiming {
            scc: scc_time,
            assemble: assemble_start.elapsed(),
        };
        (Condensation { scc, dag }, timing)
    }

    /// The SCC DAG. Its vertex ids are component ids.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The component (= DAG vertex) containing original vertex `v`.
    #[inline]
    pub fn component_of(&self, v: VertexId) -> VertexId {
        VertexId(self.scc.component_of(v))
    }

    /// Whether `s` and `t` lie in the same SCC of the original graph.
    #[inline]
    pub fn same_component(&self, s: VertexId, t: VertexId) -> bool {
        self.scc.same_component(s, t)
    }

    /// The underlying SCC decomposition.
    pub fn scc(&self) -> &SccDecomposition {
        &self.scc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse;

    #[test]
    fn condensing_a_dag_is_isomorphic() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = Condensation::new(&g);
        assert_eq!(c.dag().num_vertices(), 4);
        assert_eq!(c.dag().num_edges(), 4);
    }

    #[test]
    fn cycle_collapses_to_point() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = Condensation::new(&g);
        assert_eq!(c.dag().num_vertices(), 1);
        assert_eq!(c.dag().num_edges(), 0);
    }

    #[test]
    fn parallel_component_edges_are_merged() {
        // two edges crossing between the same pair of components
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)]);
        let c = Condensation::new(&g);
        assert_eq!(c.dag().num_vertices(), 2);
        assert_eq!(c.dag().num_edges(), 1);
    }

    #[test]
    fn reachability_is_preserved() {
        // figure-eight-ish general graph
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let c = Condensation::new(&g);
        let mut visit = traverse::VisitMap::new(g.num_vertices());
        let mut dag_visit = traverse::VisitMap::new(c.dag().num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                let direct = traverse::bfs_reaches(&g, s, t, &mut visit);
                let via = c.same_component(s, t)
                    || traverse::bfs_reaches(
                        c.dag().graph(),
                        c.component_of(s),
                        c.component_of(t),
                        &mut dag_visit,
                    );
                assert_eq!(direct, via, "mismatch for {s:?}->{t:?}");
            }
        }
    }
}
