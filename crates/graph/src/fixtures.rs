//! The worked-example graphs of the survey's Figure 1.
//!
//! The paper draws a 9-vertex graph twice: Figure 1(a) plain and
//! Figure 1(b) with labels `friendOf`, `follows`, `worksFor`. The text
//! pins down 12 of the 13 labeled edges through its worked examples
//! (the paths p1–p4, the SPLS claims for L→M, A→L, A→M, the MR example
//! path L→B, and the `Qr(A,G)` path (A,D,H,G)); the label multiset in
//! the figure (3× friendOf, 3× follows, 7× worksFor) fixes the counts.
//! The one remaining `follows` edge is placed as `M → B`, which is
//! consistent with every claim in the text. `tests/figure1.rs` at the
//! workspace root re-verifies each claim against these fixtures.

use crate::digraph::DiGraph;
use crate::labeled::{Label, LabeledGraph};
use crate::vertex::VertexId;

/// Vertex `A` of Figure 1.
pub const A: VertexId = VertexId(0);
/// Vertex `B` of Figure 1.
pub const B: VertexId = VertexId(1);
/// Vertex `C` of Figure 1.
pub const C: VertexId = VertexId(2);
/// Vertex `D` of Figure 1.
pub const D: VertexId = VertexId(3);
/// Vertex `G` of Figure 1.
pub const G: VertexId = VertexId(4);
/// Vertex `H` of Figure 1.
pub const H: VertexId = VertexId(5);
/// Vertex `K` of Figure 1.
pub const K: VertexId = VertexId(6);
/// Vertex `L` of Figure 1.
pub const L: VertexId = VertexId(7);
/// Vertex `M` of Figure 1.
pub const M: VertexId = VertexId(8);

/// The `friendOf` label of Figure 1(b).
pub const FRIEND_OF: Label = Label(0);
/// The `follows` label of Figure 1(b).
pub const FOLLOWS: Label = Label(1);
/// The `worksFor` label of Figure 1(b).
pub const WORKS_FOR: Label = Label(2);

/// Number of vertices in the Figure 1 graphs.
pub const NUM_VERTICES: usize = 9;
/// Alphabet size of Figure 1(b).
pub const NUM_LABELS: usize = 3;

const EDGES: [(VertexId, Label, VertexId); 13] = [
    (A, FRIEND_OF, D),
    (A, FOLLOWS, L),
    (L, WORKS_FOR, C),
    (L, WORKS_FOR, D),
    (L, FOLLOWS, K),
    (C, WORKS_FOR, M),
    (C, WORKS_FOR, H),
    (K, WORKS_FOR, M),
    (K, WORKS_FOR, H),
    (D, FRIEND_OF, H),
    (H, WORKS_FOR, G),
    (G, FRIEND_OF, B),
    (M, FOLLOWS, B),
];

/// The plain graph of Figure 1(a).
pub fn figure1a() -> DiGraph {
    let edges: Vec<(u32, u32)> = EDGES.iter().map(|&(u, _, v)| (u.0, v.0)).collect();
    DiGraph::from_edges(NUM_VERTICES, &edges)
}

/// The edge-labeled graph of Figure 1(b).
pub fn figure1b() -> LabeledGraph {
    let edges: Vec<(u32, u8, u32)> = EDGES.iter().map(|&(u, l, v)| (u.0, l.0, v.0)).collect();
    LabeledGraph::from_edges(NUM_VERTICES, NUM_LABELS, &edges)
}

/// The display name of a Figure 1 vertex (`"A"`, `"B"`, ...).
pub fn vertex_name(v: VertexId) -> &'static str {
    match v {
        A => "A",
        B => "B",
        C => "C",
        D => "D",
        G => "G",
        H => "H",
        K => "K",
        L => "L",
        M => "M",
        _ => "?",
    }
}

/// The display name of a Figure 1(b) label.
pub fn label_name(l: Label) -> &'static str {
    match l {
        FRIEND_OF => "friendOf",
        FOLLOWS => "follows",
        WORKS_FOR => "worksFor",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::Dag;
    use crate::traverse::{bfs_reaches, VisitMap};

    #[test]
    fn figure1a_matches_figure1b_topology() {
        let a = figure1a();
        let b = figure1b().to_digraph();
        assert_eq!(a, b);
    }

    #[test]
    fn label_multiset_matches_the_figure() {
        let g = figure1b();
        let mut counts = [0usize; 3];
        for (_, l, _) in g.edges() {
            counts[l.index()] += 1;
        }
        assert_eq!(counts, [3, 3, 7], "friendOf×3, follows×3, worksFor×7");
    }

    #[test]
    fn figure1_is_acyclic() {
        assert!(Dag::new(figure1a()).is_ok());
    }

    #[test]
    fn qr_a_g_is_true_via_a_d_h_g() {
        let g = figure1a();
        // the witness path the paper names: (A, D, H, G)
        assert!(g.has_edge(A, D));
        assert!(g.has_edge(D, H));
        assert!(g.has_edge(H, G));
        let mut vm = VisitMap::new(g.num_vertices());
        assert!(bfs_reaches(&g, A, G, &mut vm));
    }

    #[test]
    fn every_a_to_g_path_uses_works_for() {
        // Qr(A, G, (friendOf ∪ follows)*) = false: dropping worksFor
        // edges must disconnect A from G.
        let g = figure1b();
        let restricted = g.project(crate::LabelSet::from_labels([FRIEND_OF, FOLLOWS]));
        let mut vm = VisitMap::new(restricted.num_vertices());
        assert!(!bfs_reaches(&restricted, A, G, &mut vm));
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(vertex_name(A), "A");
        assert_eq!(vertex_name(M), "M");
        assert_eq!(vertex_name(VertexId(99)), "?");
        assert_eq!(label_name(WORKS_FOR), "worksFor");
        assert_eq!(label_name(Label(9)), "?");
    }
}
