//! Graph reduction preprocessing (§3.4: the SCARAB / ER / RCN slot).
//!
//! Reductions shrink the graph *before* any index is built, and are
//! orthogonal to the indexing technique — any index can be composed
//! with them. Two classic reductions are provided:
//!
//! * **transitive reduction** — remove every edge implied by a longer
//!   path (the minimal graph with the same transitive closure);
//! * **equivalence reduction** (the core of ER \[54\]) — merge vertices
//!   with identical out- and in-neighborhoods, which answer every
//!   reachability query identically.

use crate::digraph::{Dag, DiGraph, DiGraphBuilder};
use crate::vertex::VertexId;
use std::collections::HashMap;

/// Computes the transitive reduction of a DAG.
///
/// An edge `(u, v)` is redundant iff some other out-neighbor of `u`
/// reaches `v`. Runs one reverse-topological sweep maintaining
/// per-vertex descendant bitsets, so it is `O(n·m / 64)` time and
/// `O(n² / 64)` space — intended for the moderate graph sizes used in
/// ablation benches, not for million-vertex inputs.
pub fn transitive_reduction(dag: &Dag) -> DiGraph {
    let n = dag.num_vertices();
    let words = n.div_ceil(64);
    // closure[v] = bitset of vertices reachable from v (excluding v)
    let mut closure = vec![0u64; n * words];
    let mut keep: Vec<(VertexId, VertexId)> = Vec::new();

    for &u in dag.topo_order().iter().rev() {
        // A neighbor v is redundant if it is already in the closure of
        // some other (kept or not — closures are full) neighbor.
        for &v in dag.out_neighbors(u) {
            let mut implied = false;
            for &w in dag.out_neighbors(u) {
                if w == v {
                    continue;
                }
                let bits = &closure[w.index() * words..(w.index() + 1) * words];
                if bits[v.index() / 64] >> (v.index() % 64) & 1 == 1 {
                    implied = true;
                    break;
                }
            }
            if !implied {
                keep.push((u, v));
            }
        }
        // closure[u] = union of ({v} ∪ closure[v]) over all out-neighbors
        let neighbors: Vec<VertexId> = dag.out_neighbors(u).to_vec();
        for v in neighbors {
            let (head, tail) = if u.index() < v.index() {
                let (a, b) = closure.split_at_mut(v.index() * words);
                (
                    &mut a[u.index() * words..u.index() * words + words],
                    &b[..words],
                )
            } else {
                let (a, b) = closure.split_at_mut(u.index() * words);
                (
                    &mut b[..words],
                    &a[v.index() * words..v.index() * words + words] as &[u64],
                )
            };
            for w in 0..words {
                head[w] |= tail[w];
            }
            closure[u.index() * words + v.index() / 64] |= 1u64 << (v.index() % 64);
        }
    }

    let mut b = DiGraphBuilder::with_capacity(n, keep.len());
    for (u, v) in keep {
        b.add_edge(u, v);
    }
    b.build()
}

/// Result of an equivalence reduction: the reduced graph and the
/// original-vertex → reduced-vertex map.
#[derive(Debug, Clone)]
pub struct EquivalenceReduction {
    /// The reduced graph over equivalence-class representatives.
    pub graph: DiGraph,
    /// Class id of each original vertex.
    pub class_of: Vec<VertexId>,
}

/// Merges vertices whose out-neighbor *and* in-neighbor lists are
/// identical. Such vertices are reachability-equivalent: any query
/// `Qr(s, t)` can be answered on the reduced graph with the mapped
/// endpoints (distinct same-class endpoints are handled by the caller
/// noting that equivalent vertices reach each other iff they reach the
/// class, i.e. never directly unless a self-class edge exists — in a
/// simple digraph, `s ≠ t` in one class means `Qr(s,t)` is `false`
/// unless the class has an edge to itself in the reduced graph).
pub fn equivalence_reduction(g: &DiGraph) -> EquivalenceReduction {
    let n = g.num_vertices();
    let mut classes: HashMap<(Vec<VertexId>, Vec<VertexId>), u32> = HashMap::new();
    let mut class_of = vec![VertexId(0); n];
    for v in g.vertices() {
        let key = (g.out_neighbors(v).to_vec(), g.in_neighbors(v).to_vec());
        let next = classes.len() as u32;
        let id = *classes.entry(key).or_insert(next);
        class_of[v.index()] = VertexId(id);
    }
    let nc = classes.len();
    let mut b = DiGraphBuilder::with_capacity(nc, g.num_edges());
    for (u, v) in g.edges() {
        b.add_edge(class_of[u.index()], class_of[v.index()]);
    }
    EquivalenceReduction {
        graph: b.build(),
        class_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::{bfs_reaches, VisitMap};

    #[test]
    fn reduction_drops_shortcut_edges() {
        // chain with a shortcut 0 -> 2
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let dag = Dag::new(g).unwrap();
        let r = transitive_reduction(&dag);
        assert_eq!(r.num_edges(), 2);
        assert!(!r.has_edge(VertexId(0), VertexId(2)));
    }

    #[test]
    fn reduction_preserves_reachability() {
        let g = DiGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (0, 3),
                (3, 4),
                (1, 4),
                (4, 5),
                (0, 5),
            ],
        );
        let dag = Dag::new(g.clone()).unwrap();
        let r = transitive_reduction(&dag);
        assert!(r.num_edges() < g.num_edges());
        let mut vm1 = VisitMap::new(g.num_vertices());
        let mut vm2 = VisitMap::new(g.num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    bfs_reaches(&g, s, t, &mut vm1),
                    bfs_reaches(&r, s, t, &mut vm2),
                    "mismatch at {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn reduction_of_reduced_graph_is_identity() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let dag = Dag::new(g.clone()).unwrap();
        assert_eq!(transitive_reduction(&dag), g);
    }

    #[test]
    fn equivalence_merges_twins() {
        // 1 and 2 have identical in/out neighborhoods
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let r = equivalence_reduction(&g);
        assert_eq!(r.graph.num_vertices(), 3);
        assert_eq!(r.class_of[1], r.class_of[2]);
        assert_ne!(r.class_of[0], r.class_of[3]);
    }

    #[test]
    fn equivalence_preserves_cross_class_reachability() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let r = equivalence_reduction(&g);
        let mut vm1 = VisitMap::new(g.num_vertices());
        let mut vm2 = VisitMap::new(r.graph.num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                if r.class_of[s.index()] == r.class_of[t.index()] {
                    continue; // same-class pairs handled separately by callers
                }
                assert_eq!(
                    bfs_reaches(&g, s, t, &mut vm1),
                    bfs_reaches(
                        &r.graph,
                        r.class_of[s.index()],
                        r.class_of[t.index()],
                        &mut vm2
                    ),
                );
            }
        }
    }

    #[test]
    fn distinct_neighborhoods_stay_separate() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = equivalence_reduction(&g);
        assert_eq!(r.graph.num_vertices(), 3);
    }
}
