//! # reach-graph
//!
//! Graph substrate for the `reachability` workspace: compact CSR
//! digraphs, edge-labeled graphs with bitset label sets, strongly
//! connected component condensation, topological utilities, online
//! traversal primitives, workload generators, graph reductions, and
//! the worked-example fixtures of the SIGMOD'23 survey
//! *An Overview of Reachability Indexes on Graphs* (Figure 1).
//!
//! Every reachability index in `reach-core` and `reach-labeled` is
//! built on the types in this crate. The representation choices follow
//! the survey's assumptions:
//!
//! * directed graphs, vertices identified by dense `u32` ids
//!   ([`VertexId`]);
//! * frozen compressed-sparse-row adjacency with both forward and
//!   reverse neighbor lists ([`DiGraph`]), because 2-hop style indexes
//!   run backward *and* forward BFSs;
//! * a checked acyclic wrapper ([`Dag`]) for the many indexes that
//!   assume DAG input (Table 1, "Input" column), plus Tarjan
//!   condensation ([`condense`]) for the standard general-graph
//!   reduction the survey describes in §3.1;
//! * edge labels from a small alphabet packed into a `u64` bitset
//!   ([`LabelSet`]), the representation implied by the
//!   sufficient-path-label-set machinery of §4.

#![deny(unsafe_code)]

pub mod condense;
pub mod digraph;
pub mod error;
pub mod fixtures;
pub mod generators;
pub mod io;
pub mod labeled;
pub mod prepare;
pub mod reduction;
pub mod scc;
// the one sanctioned unsafe island: the lock-free ScratchPool slots
#[allow(unsafe_code)]
pub mod scratch;
pub mod stats;
pub mod topo;
pub mod traverse;
pub mod vertex;

pub use condense::{Condensation, CondenseTiming};
pub use digraph::{Dag, DiGraph, DiGraphBuilder};
pub use error::GraphError;
pub use labeled::{Label, LabelSet, LabeledGraph, LabeledGraphBuilder};
pub use prepare::PreparedGraph;
pub use scc::SccDecomposition;
pub use scratch::{overflow_count as scratch_overflow_count, ScratchGuard, ScratchPool};
pub use traverse::VisitMap;
pub use vertex::VertexId;
