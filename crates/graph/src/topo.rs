//! Topological sorting and level utilities for DAGs.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// Kahn's algorithm. Returns the vertices in a topological order, or
/// `None` if the graph contains a directed cycle.
///
/// Ties are broken by vertex id (a binary min-heap would give the
/// lexicographically smallest order; a plain FIFO is cheaper and any
/// valid order serves the indexes).
pub fn topological_sort(g: &DiGraph) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut in_deg: Vec<u32> = (0..n)
        .map(|v| g.in_degree(VertexId::new(v)) as u32)
        .collect();
    let mut queue: Vec<VertexId> = g.vertices().filter(|&v| in_deg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &v in g.out_neighbors(u) {
            in_deg[v.index()] -= 1;
            if in_deg[v.index()] == 0 {
                queue.push(v);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Checks that `order` is a permutation of the vertices in which every
/// edge goes from an earlier to a later position.
pub fn is_topological_order(g: &DiGraph, order: &[VertexId]) -> bool {
    let n = g.num_vertices();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![u32::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if v.index() >= n || pos[v.index()] != u32::MAX {
            return false;
        }
        pos[v.index()] = i as u32;
    }
    g.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

/// Longest-path topological levels: sources get level 0, and every
/// other vertex gets `1 + max(level of in-neighbors)`.
///
/// Levels are the filter used by BFL, IP, and PReaCH: if
/// `level(s) >= level(t)` with `s != t` then `t` is unreachable from `s`.
/// Returns `None` on cyclic input.
pub fn topological_levels(g: &DiGraph) -> Option<Vec<u32>> {
    let order = topological_sort(g)?;
    let mut level = vec![0u32; g.num_vertices()];
    for &u in &order {
        for &v in g.out_neighbors(u) {
            level[v.index()] = level[v.index()].max(level[u.index()] + 1);
        }
    }
    Some(level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn sorts_diamond() {
        let g = diamond();
        let order = topological_sort(&g).unwrap();
        assert!(is_topological_order(&g, &order));
    }

    #[test]
    fn detects_cycle() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(topological_sort(&g).is_none());
        assert!(topological_levels(&g).is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = DiGraph::from_edges(1, &[(0, 0)]);
        assert!(topological_sort(&g).is_none());
    }

    #[test]
    fn rejects_bad_orders() {
        let g = diamond();
        // wrong length
        assert!(!is_topological_order(&g, &[VertexId(0)]));
        // duplicate vertex
        assert!(!is_topological_order(
            &g,
            &[VertexId(0), VertexId(0), VertexId(1), VertexId(2)]
        ));
        // edge violation: 3 before 1
        assert!(!is_topological_order(
            &g,
            &[VertexId(0), VertexId(3), VertexId(1), VertexId(2)]
        ));
    }

    #[test]
    fn levels_are_longest_paths() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, plus shortcut 0 -> 3: level(3) must be 2.
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let level = topological_levels(&g).unwrap();
        assert_eq!(level, vec![0, 1, 1, 2]);
    }

    #[test]
    fn isolated_vertices_are_level_zero() {
        let g = DiGraph::from_edges(3, &[]);
        assert_eq!(topological_levels(&g).unwrap(), vec![0, 0, 0]);
    }
}
