//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex id outside `0..n`.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// A DAG was required but the graph contains a directed cycle.
    NotAcyclic,
    /// An edge label was outside the supported alphabet (`0..64`).
    LabelOutOfRange {
        /// The offending label value.
        label: u32,
    },
    /// A textual edge list could not be parsed.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of bounds for graph with {num_vertices} vertices"
            ),
            GraphError::NotAcyclic => {
                write!(f, "graph contains a directed cycle but a DAG was required")
            }
            GraphError::LabelOutOfRange { label } => {
                write!(f, "edge label {label} outside supported alphabet 0..64")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfBounds {
            vertex: 9,
            num_vertices: 3,
        };
        assert!(e.to_string().contains("vertex id 9"));
        assert!(GraphError::NotAcyclic.to_string().contains("cycle"));
        let e = GraphError::LabelOutOfRange { label: 99 };
        assert!(e.to_string().contains("99"));
        let e = GraphError::Parse {
            line: 2,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 2"));
    }
}
