//! Online traversal primitives: BFS, DFS, and bidirectional BFS.
//!
//! These are the index-free baselines of §2.3 of the survey and the
//! fallback machinery behind every *partial* index. All traversals use
//! an epoch-stamped [`VisitMap`] so repeated queries reuse one buffer
//! without an `O(n)` clear per query.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// A reusable visited-set over `0..n` vertices.
///
/// Marking is `O(1)` and resetting between queries is `O(1)` (bump the
/// epoch); the backing array is only rewritten lazily as vertices are
/// marked. The bidirectional search uses two distinct marks per epoch.
#[derive(Debug, Clone)]
pub struct VisitMap {
    stamp: Vec<u64>,
    epoch: u64,
}

/// Which search frontier marked a vertex (for bidirectional search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The forward frontier (from the source).
    Forward,
    /// The backward frontier (from the target).
    Backward,
}

impl VisitMap {
    /// Creates a visit map for vertex ids `0..n`.
    pub fn new(n: usize) -> Self {
        // epoch starts at 2 so that a zeroed stamp never matches
        // either the forward mark (epoch) or the backward mark (epoch+1)
        VisitMap {
            stamp: vec![0; n],
            epoch: 2,
        }
    }

    /// Starts a fresh traversal: all vertices become unvisited.
    #[inline]
    pub fn reset(&mut self) {
        self.epoch += 2;
    }

    /// Marks `v` as visited by `side`. Returns `true` if it was not
    /// already marked by that side.
    #[inline]
    pub fn mark(&mut self, v: VertexId, side: Side) -> bool {
        let want = match side {
            Side::Forward => self.epoch,
            Side::Backward => self.epoch + 1,
        };
        let s = &mut self.stamp[v.index()];
        if *s == want {
            false
        } else {
            *s = want;
            true
        }
    }

    /// Whether `v` has been marked by `side` in the current traversal.
    #[inline]
    pub fn is_marked(&self, v: VertexId, side: Side) -> bool {
        let want = match side {
            Side::Forward => self.epoch,
            Side::Backward => self.epoch + 1,
        };
        self.stamp[v.index()] == want
    }

    /// Number of vertices the map covers.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the map covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }
}

/// Statistics from a single traversal, used by the `claims` harness to
/// reproduce the survey's "online traversal visits a large portion of
/// the graph" observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Vertices popped from the frontier.
    pub visited: usize,
    /// Edges relaxed.
    pub edges_scanned: usize,
}

/// Breadth-first reachability: does `t` lie in the forward closure of `s`?
pub fn bfs_reaches(g: &DiGraph, s: VertexId, t: VertexId, visit: &mut VisitMap) -> bool {
    bfs_reaches_counted(g, s, t, visit).0
}

/// [`bfs_reaches`] with traversal statistics.
pub fn bfs_reaches_counted(
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    visit: &mut VisitMap,
) -> (bool, TraversalStats) {
    let mut stats = TraversalStats::default();
    if s == t {
        return (true, stats);
    }
    visit.reset();
    visit.mark(s, Side::Forward);
    let mut queue = vec![s];
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        stats.visited += 1;
        for &v in g.out_neighbors(u) {
            stats.edges_scanned += 1;
            if v == t {
                return (true, stats);
            }
            if visit.mark(v, Side::Forward) {
                queue.push(v);
            }
        }
    }
    (false, stats)
}

/// Depth-first reachability with an explicit stack.
pub fn dfs_reaches(g: &DiGraph, s: VertexId, t: VertexId, visit: &mut VisitMap) -> bool {
    if s == t {
        return true;
    }
    visit.reset();
    visit.mark(s, Side::Forward);
    let mut stack = vec![s];
    while let Some(u) = stack.pop() {
        for &v in g.out_neighbors(u) {
            if v == t {
                return true;
            }
            if visit.mark(v, Side::Forward) {
                stack.push(v);
            }
        }
    }
    false
}

/// Bidirectional BFS: expands the smaller of the forward frontier from
/// `s` and the backward frontier from `t`, answering when they meet.
pub fn bibfs_reaches(g: &DiGraph, s: VertexId, t: VertexId, visit: &mut VisitMap) -> bool {
    if s == t {
        return true;
    }
    visit.reset();
    visit.mark(s, Side::Forward);
    visit.mark(t, Side::Backward);
    // Double-buffered frontiers: `next` is drained by the swap and
    // reused every level, so the loop allocates at most two vectors
    // total instead of one fresh vector per level.
    let mut fwd = vec![s];
    let mut bwd = vec![t];
    let mut next = Vec::new();
    while !fwd.is_empty() && !bwd.is_empty() {
        if fwd.len() <= bwd.len() {
            for &u in &fwd {
                for &v in g.out_neighbors(u) {
                    if visit.is_marked(v, Side::Backward) {
                        return true;
                    }
                    if visit.mark(v, Side::Forward) {
                        next.push(v);
                    }
                }
            }
            std::mem::swap(&mut fwd, &mut next);
        } else {
            for &u in &bwd {
                for &v in g.in_neighbors(u) {
                    if visit.is_marked(v, Side::Forward) {
                        return true;
                    }
                    if visit.mark(v, Side::Backward) {
                        next.push(v);
                    }
                }
            }
            std::mem::swap(&mut bwd, &mut next);
        }
        next.clear();
    }
    false
}

/// Collects the full forward closure of `s` (including `s` itself).
pub fn forward_closure(g: &DiGraph, s: VertexId) -> Vec<VertexId> {
    let mut visit = VisitMap::new(g.num_vertices());
    let mut out = Vec::new();
    forward_closure_with(g, s, &mut visit, &mut out);
    out
}

/// Collects the full backward closure of `s` (including `s` itself).
pub fn backward_closure(g: &DiGraph, s: VertexId) -> Vec<VertexId> {
    let mut visit = VisitMap::new(g.num_vertices());
    let mut out = Vec::new();
    backward_closure_with(g, s, &mut visit, &mut out);
    out
}

/// [`forward_closure`] into caller-owned scratch: the epoch-stamped
/// `visit` map is reset in O(1) and `out` is cleared, so repeated
/// closures (one per landmark in the HL-style builders) stop paying an
/// O(n) allocation each.
pub fn forward_closure_with(
    g: &DiGraph,
    s: VertexId,
    visit: &mut VisitMap,
    out: &mut Vec<VertexId>,
) {
    closure_with(g, s, true, visit, out)
}

/// [`backward_closure`] into caller-owned scratch (see
/// [`forward_closure_with`]).
pub fn backward_closure_with(
    g: &DiGraph,
    s: VertexId,
    visit: &mut VisitMap,
    out: &mut Vec<VertexId>,
) {
    closure_with(g, s, false, visit, out)
}

fn closure_with(
    g: &DiGraph,
    s: VertexId,
    forward: bool,
    visit: &mut VisitMap,
    out: &mut Vec<VertexId>,
) {
    visit.reset();
    visit.mark(s, Side::Forward);
    out.clear();
    out.push(s);
    let mut head = 0;
    while head < out.len() {
        let u = out[head];
        head += 1;
        let neighbors = if forward {
            g.out_neighbors(u)
        } else {
            g.in_neighbors(u)
        };
        for &v in neighbors {
            if visit.mark(v, Side::Forward) {
                out.push(v);
            }
        }
    }
}

/// Multi-source bit-parallel BFS: computes, for up to 64 sources at
/// once, which of them reach each vertex.
///
/// `masks[v]` has bit `i` set iff `sources[i]` reaches `v` (every
/// source reaches itself). One frontier expansion serves all 64
/// sources — the MS-BFS idea: reachability from source `i` is one bit
/// lane of a `u64` word, and an edge relaxation ORs whole words, so a
/// batch of queries costs roughly one traversal instead of 64.
///
/// Works on arbitrary digraphs (the propagation is a monotone
/// fixpoint, so cycles are harmless).
///
/// # Panics
/// Panics if more than 64 sources are given.
pub fn ms_bfs_masks(g: &DiGraph, sources: &[VertexId]) -> Vec<u64> {
    let mut masks = vec![0u64; g.num_vertices()];
    ms_bfs_masks_into(g, sources, &mut masks);
    masks
}

/// [`ms_bfs_masks`] into a caller-owned buffer (zeroed here), so
/// word-batched callers reuse one allocation.
pub fn ms_bfs_masks_into(g: &DiGraph, sources: &[VertexId], masks: &mut Vec<u64>) {
    assert!(
        sources.len() <= 64,
        "one u64 word carries at most 64 sources"
    );
    let n = g.num_vertices();
    masks.clear();
    masks.resize(n, 0);
    let mut in_frontier = vec![false; n];
    let mut cur: Vec<VertexId> = Vec::with_capacity(sources.len());
    for (i, &s) in sources.iter().enumerate() {
        masks[s.index()] |= 1u64 << i;
        if !in_frontier[s.index()] {
            in_frontier[s.index()] = true;
            cur.push(s);
        }
    }
    let mut next: Vec<VertexId> = Vec::new();
    while !cur.is_empty() {
        for &u in &cur {
            in_frontier[u.index()] = false;
        }
        for &u in &cur {
            let mu = masks[u.index()];
            for &v in g.out_neighbors(u) {
                let add = mu & !masks[v.index()];
                if add != 0 {
                    masks[v.index()] |= add;
                    if !in_frontier[v.index()] {
                        in_frontier[v.index()] = true;
                        next.push(v);
                    }
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
        next.clear();
    }
}

/// Answers a batch of reachability pairs with word-batched MS-BFS:
/// distinct sources are packed 64 per `u64` word, one bit-parallel
/// traversal per word, then each pair reads one bit.
///
/// Equivalent to `pairs.map(|(s, t)| bfs_reaches(g, s, t, ..))` but
/// amortizes frontier expansion across sources — the batch evaluation
/// path of the online baselines.
pub fn batch_reaches(g: &DiGraph, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
    let mut out = vec![false; pairs.len()];
    // distinct sources of still-open pairs, in first-appearance order
    let mut word_of_source = vec![u32::MAX; g.num_vertices()];
    let mut sources: Vec<VertexId> = Vec::new();
    for (i, &(s, t)) in pairs.iter().enumerate() {
        if s == t {
            out[i] = true;
            continue;
        }
        if word_of_source[s.index()] == u32::MAX {
            word_of_source[s.index()] = sources.len() as u32;
            sources.push(s);
        }
    }
    let mut masks: Vec<u64> = Vec::new();
    for (word, group) in sources.chunks(64).enumerate() {
        ms_bfs_masks_into(g, group, &mut masks);
        let lo = word as u32 * 64;
        let hi = lo + group.len() as u32;
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let slot = word_of_source[s.index()];
            if s != t && (lo..hi).contains(&slot) {
                out[i] = masks[t.index()] >> (slot - lo) & 1 == 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_and_branch() -> DiGraph {
        // 0 -> 1 -> 2 -> 3, 1 -> 4, 5 isolated
        DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (1, 4)])
    }

    #[test]
    fn bfs_basic() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        assert!(bfs_reaches(&g, VertexId(0), VertexId(3), &mut vm));
        assert!(bfs_reaches(&g, VertexId(0), VertexId(4), &mut vm));
        assert!(!bfs_reaches(&g, VertexId(3), VertexId(0), &mut vm));
        assert!(!bfs_reaches(&g, VertexId(0), VertexId(5), &mut vm));
        assert!(bfs_reaches(&g, VertexId(5), VertexId(5), &mut vm));
    }

    #[test]
    fn dfs_agrees_with_bfs() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    bfs_reaches(&g, s, t, &mut vm),
                    dfs_reaches(&g, s, t, &mut vm)
                );
            }
        }
    }

    #[test]
    fn bibfs_agrees_with_bfs() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    bfs_reaches(&g, s, t, &mut vm),
                    bibfs_reaches(&g, s, t, &mut vm),
                    "mismatch for {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn bibfs_on_cycle() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut vm = VisitMap::new(4);
        assert!(bibfs_reaches(&g, VertexId(1), VertexId(0), &mut vm));
        assert!(bibfs_reaches(&g, VertexId(0), VertexId(3), &mut vm));
        assert!(!bibfs_reaches(&g, VertexId(3), VertexId(0), &mut vm));
    }

    #[test]
    fn visit_map_reset_is_cheap_and_correct() {
        let mut vm = VisitMap::new(3);
        assert!(vm.mark(VertexId(0), Side::Forward));
        assert!(!vm.mark(VertexId(0), Side::Forward));
        assert!(vm.is_marked(VertexId(0), Side::Forward));
        vm.reset();
        assert!(!vm.is_marked(VertexId(0), Side::Forward));
        assert!(vm.mark(VertexId(0), Side::Forward));
    }

    #[test]
    fn visit_map_sides_are_independent() {
        let mut vm = VisitMap::new(2);
        // In this map a vertex holds one stamp, so marking the same vertex
        // from the other side overwrites — bidirectional search checks
        // the opposite side *before* marking, which is all it needs.
        assert!(vm.mark(VertexId(1), Side::Forward));
        assert!(vm.is_marked(VertexId(1), Side::Forward));
        assert!(!vm.is_marked(VertexId(1), Side::Backward));
    }

    #[test]
    fn closures() {
        let g = chain_and_branch();
        let mut fwd = forward_closure(&g, VertexId(1));
        fwd.sort();
        assert_eq!(
            fwd,
            vec![VertexId(1), VertexId(2), VertexId(3), VertexId(4)]
        );
        let mut bwd = backward_closure(&g, VertexId(3));
        bwd.sort();
        assert_eq!(
            bwd,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn closure_with_reuses_scratch() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        let mut out = Vec::new();
        for _ in 0..3 {
            forward_closure_with(&g, VertexId(1), &mut vm, &mut out);
            let mut got = out.clone();
            got.sort();
            assert_eq!(
                got,
                vec![VertexId(1), VertexId(2), VertexId(3), VertexId(4)]
            );
            backward_closure_with(&g, VertexId(3), &mut vm, &mut out);
            assert_eq!(out.len(), 4);
        }
    }

    #[test]
    fn ms_bfs_masks_match_per_source_bfs() {
        let g = chain_and_branch();
        let sources: Vec<VertexId> = g.vertices().collect();
        let masks = ms_bfs_masks(&g, &sources);
        let mut vm = VisitMap::new(g.num_vertices());
        for (i, &s) in sources.iter().enumerate() {
            for t in g.vertices() {
                assert_eq!(
                    masks[t.index()] >> i & 1 == 1,
                    bfs_reaches(&g, s, t, &mut vm),
                    "source {s:?} target {t:?}"
                );
            }
        }
    }

    #[test]
    fn ms_bfs_handles_cycles() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let masks = ms_bfs_masks(&g, &[VertexId(3), VertexId(1)]);
        assert_eq!(masks[VertexId(3).index()], 0b11, "1 reaches 3, 3 itself");
        assert_eq!(masks[VertexId(0).index()], 0b10, "1 reaches 0 via cycle");
    }

    #[test]
    fn batch_reaches_agrees_with_bfs_on_random_digraphs() {
        use crate::generators::random_digraph;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..4 {
            let g = random_digraph(120, 320, &mut rng);
            let n = g.num_vertices() as u32;
            // more than 64 distinct sources, repeated sources, self-pairs
            let pairs: Vec<(VertexId, VertexId)> = (0..600)
                .map(|_| {
                    (
                        VertexId(rng.random_range(0..n)),
                        VertexId(rng.random_range(0..n)),
                    )
                })
                .collect();
            let got = batch_reaches(&g, &pairs);
            let mut vm = VisitMap::new(g.num_vertices());
            for (i, &(s, t)) in pairs.iter().enumerate() {
                assert_eq!(
                    got[i],
                    bfs_reaches(&g, s, t, &mut vm),
                    "trial {trial} pair {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn traversal_stats_count_work() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        let (ok, stats) = bfs_reaches_counted(&g, VertexId(0), VertexId(5), &mut vm);
        assert!(!ok);
        // Visits 0,1,2,3,4 and scans all 4 edges.
        assert_eq!(stats.visited, 5);
        assert_eq!(stats.edges_scanned, 4);
    }
}
