//! Online traversal primitives: BFS, DFS, and bidirectional BFS.
//!
//! These are the index-free baselines of §2.3 of the survey and the
//! fallback machinery behind every *partial* index. All traversals use
//! an epoch-stamped [`VisitMap`] so repeated queries reuse one buffer
//! without an `O(n)` clear per query.

use crate::digraph::DiGraph;
use crate::vertex::VertexId;

/// A reusable visited-set over `0..n` vertices.
///
/// Marking is `O(1)` and resetting between queries is `O(1)` (bump the
/// epoch); the backing array is only rewritten lazily as vertices are
/// marked. The bidirectional search uses two distinct marks per epoch.
#[derive(Debug, Clone)]
pub struct VisitMap {
    stamp: Vec<u64>,
    epoch: u64,
}

/// Which search frontier marked a vertex (for bidirectional search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The forward frontier (from the source).
    Forward,
    /// The backward frontier (from the target).
    Backward,
}

impl VisitMap {
    /// Creates a visit map for vertex ids `0..n`.
    pub fn new(n: usize) -> Self {
        // epoch starts at 2 so that a zeroed stamp never matches
        // either the forward mark (epoch) or the backward mark (epoch+1)
        VisitMap {
            stamp: vec![0; n],
            epoch: 2,
        }
    }

    /// Starts a fresh traversal: all vertices become unvisited.
    #[inline]
    pub fn reset(&mut self) {
        self.epoch += 2;
    }

    /// Marks `v` as visited by `side`. Returns `true` if it was not
    /// already marked by that side.
    #[inline]
    pub fn mark(&mut self, v: VertexId, side: Side) -> bool {
        let want = match side {
            Side::Forward => self.epoch,
            Side::Backward => self.epoch + 1,
        };
        let s = &mut self.stamp[v.index()];
        if *s == want {
            false
        } else {
            *s = want;
            true
        }
    }

    /// Whether `v` has been marked by `side` in the current traversal.
    #[inline]
    pub fn is_marked(&self, v: VertexId, side: Side) -> bool {
        let want = match side {
            Side::Forward => self.epoch,
            Side::Backward => self.epoch + 1,
        };
        self.stamp[v.index()] == want
    }

    /// Number of vertices the map covers.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the map covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }
}

/// Statistics from a single traversal, used by the `claims` harness to
/// reproduce the survey's "online traversal visits a large portion of
/// the graph" observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Vertices popped from the frontier.
    pub visited: usize,
    /// Edges relaxed.
    pub edges_scanned: usize,
}

/// Breadth-first reachability: does `t` lie in the forward closure of `s`?
pub fn bfs_reaches(g: &DiGraph, s: VertexId, t: VertexId, visit: &mut VisitMap) -> bool {
    bfs_reaches_counted(g, s, t, visit).0
}

/// [`bfs_reaches`] with traversal statistics.
pub fn bfs_reaches_counted(
    g: &DiGraph,
    s: VertexId,
    t: VertexId,
    visit: &mut VisitMap,
) -> (bool, TraversalStats) {
    let mut stats = TraversalStats::default();
    if s == t {
        return (true, stats);
    }
    visit.reset();
    visit.mark(s, Side::Forward);
    let mut queue = vec![s];
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        stats.visited += 1;
        for &v in g.out_neighbors(u) {
            stats.edges_scanned += 1;
            if v == t {
                return (true, stats);
            }
            if visit.mark(v, Side::Forward) {
                queue.push(v);
            }
        }
    }
    (false, stats)
}

/// Depth-first reachability with an explicit stack.
pub fn dfs_reaches(g: &DiGraph, s: VertexId, t: VertexId, visit: &mut VisitMap) -> bool {
    if s == t {
        return true;
    }
    visit.reset();
    visit.mark(s, Side::Forward);
    let mut stack = vec![s];
    while let Some(u) = stack.pop() {
        for &v in g.out_neighbors(u) {
            if v == t {
                return true;
            }
            if visit.mark(v, Side::Forward) {
                stack.push(v);
            }
        }
    }
    false
}

/// Bidirectional BFS: expands the smaller of the forward frontier from
/// `s` and the backward frontier from `t`, answering when they meet.
pub fn bibfs_reaches(g: &DiGraph, s: VertexId, t: VertexId, visit: &mut VisitMap) -> bool {
    if s == t {
        return true;
    }
    visit.reset();
    visit.mark(s, Side::Forward);
    visit.mark(t, Side::Backward);
    let mut fwd = vec![s];
    let mut bwd = vec![t];
    while !fwd.is_empty() && !bwd.is_empty() {
        if fwd.len() <= bwd.len() {
            let mut next = Vec::new();
            for &u in &fwd {
                for &v in g.out_neighbors(u) {
                    if visit.is_marked(v, Side::Backward) {
                        return true;
                    }
                    if visit.mark(v, Side::Forward) {
                        next.push(v);
                    }
                }
            }
            fwd = next;
        } else {
            let mut next = Vec::new();
            for &u in &bwd {
                for &v in g.in_neighbors(u) {
                    if visit.is_marked(v, Side::Forward) {
                        return true;
                    }
                    if visit.mark(v, Side::Backward) {
                        next.push(v);
                    }
                }
            }
            bwd = next;
        }
    }
    false
}

/// Collects the full forward closure of `s` (including `s` itself).
pub fn forward_closure(g: &DiGraph, s: VertexId) -> Vec<VertexId> {
    closure(g, s, true)
}

/// Collects the full backward closure of `s` (including `s` itself).
pub fn backward_closure(g: &DiGraph, s: VertexId) -> Vec<VertexId> {
    closure(g, s, false)
}

fn closure(g: &DiGraph, s: VertexId, forward: bool) -> Vec<VertexId> {
    let mut seen = vec![false; g.num_vertices()];
    seen[s.index()] = true;
    let mut out = vec![s];
    let mut head = 0;
    while head < out.len() {
        let u = out[head];
        head += 1;
        let neighbors = if forward {
            g.out_neighbors(u)
        } else {
            g.in_neighbors(u)
        };
        for &v in neighbors {
            if !seen[v.index()] {
                seen[v.index()] = true;
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_and_branch() -> DiGraph {
        // 0 -> 1 -> 2 -> 3, 1 -> 4, 5 isolated
        DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (1, 4)])
    }

    #[test]
    fn bfs_basic() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        assert!(bfs_reaches(&g, VertexId(0), VertexId(3), &mut vm));
        assert!(bfs_reaches(&g, VertexId(0), VertexId(4), &mut vm));
        assert!(!bfs_reaches(&g, VertexId(3), VertexId(0), &mut vm));
        assert!(!bfs_reaches(&g, VertexId(0), VertexId(5), &mut vm));
        assert!(bfs_reaches(&g, VertexId(5), VertexId(5), &mut vm));
    }

    #[test]
    fn dfs_agrees_with_bfs() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    bfs_reaches(&g, s, t, &mut vm),
                    dfs_reaches(&g, s, t, &mut vm)
                );
            }
        }
    }

    #[test]
    fn bibfs_agrees_with_bfs() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    bfs_reaches(&g, s, t, &mut vm),
                    bibfs_reaches(&g, s, t, &mut vm),
                    "mismatch for {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn bibfs_on_cycle() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut vm = VisitMap::new(4);
        assert!(bibfs_reaches(&g, VertexId(1), VertexId(0), &mut vm));
        assert!(bibfs_reaches(&g, VertexId(0), VertexId(3), &mut vm));
        assert!(!bibfs_reaches(&g, VertexId(3), VertexId(0), &mut vm));
    }

    #[test]
    fn visit_map_reset_is_cheap_and_correct() {
        let mut vm = VisitMap::new(3);
        assert!(vm.mark(VertexId(0), Side::Forward));
        assert!(!vm.mark(VertexId(0), Side::Forward));
        assert!(vm.is_marked(VertexId(0), Side::Forward));
        vm.reset();
        assert!(!vm.is_marked(VertexId(0), Side::Forward));
        assert!(vm.mark(VertexId(0), Side::Forward));
    }

    #[test]
    fn visit_map_sides_are_independent() {
        let mut vm = VisitMap::new(2);
        // In this map a vertex holds one stamp, so marking the same vertex
        // from the other side overwrites — bidirectional search checks
        // the opposite side *before* marking, which is all it needs.
        assert!(vm.mark(VertexId(1), Side::Forward));
        assert!(vm.is_marked(VertexId(1), Side::Forward));
        assert!(!vm.is_marked(VertexId(1), Side::Backward));
    }

    #[test]
    fn closures() {
        let g = chain_and_branch();
        let mut fwd = forward_closure(&g, VertexId(1));
        fwd.sort();
        assert_eq!(
            fwd,
            vec![VertexId(1), VertexId(2), VertexId(3), VertexId(4)]
        );
        let mut bwd = backward_closure(&g, VertexId(3));
        bwd.sort();
        assert_eq!(
            bwd,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn traversal_stats_count_work() {
        let g = chain_and_branch();
        let mut vm = VisitMap::new(g.num_vertices());
        let (ok, stats) = bfs_reaches_counted(&g, VertexId(0), VertexId(5), &mut vm);
        assert!(!ok);
        // Visits 0,1,2,3,4 and scans all 4 edges.
        assert_eq!(stats.visited, 5);
        assert_eq!(stats.edges_scanned, 4);
    }
}
