//! A lock-free pool of per-query scratch buffers.
//!
//! Every traversal-backed index keeps reusable scratch (a [`VisitMap`],
//! frontier stacks, …) so that `query(&self, ..)` allocates nothing.
//! Storing that scratch in a `RefCell` made the indexes `!Sync`, which
//! in turn made it impossible to serve one index from many request
//! threads. [`ScratchPool`] replaces the `RefCell`: a fixed array of
//! slots, each claimed with a single atomic compare-exchange, so any
//! number of threads can check scratch out concurrently. When every
//! slot is momentarily busy the checkout falls back to building a
//! fresh buffer, trading one allocation for never blocking — the pool
//! is lock-free in the strict sense that no thread can prevent another
//! from making progress.
//!
//! [`VisitMap`]: crate::traverse::VisitMap

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of pooled slots. Checkouts beyond this many *concurrent*
/// queries allocate fresh scratch; the pool re-fills as guards drop.
const SLOTS: usize = 16;

/// Process-wide count of checkouts that found every slot busy and had
/// to allocate a throwaway buffer. A sustained non-zero rate under
/// load means more than [`SLOTS`] queries run concurrently per pool —
/// the signal a serving deployment watches (it is exported verbatim on
/// `reach-server`'s `/metrics`).
static OVERFLOWS: AtomicU64 = AtomicU64::new(0);

/// The one ordering for the overflow counter, on both the `fetch_add`
/// and the `load` side. The counter is a monotonic statistic that
/// synchronizes nothing, so `Relaxed` is sufficient — but it must be
/// *consistently* `Relaxed`: a stronger ordering on one side only
/// would suggest a synchronization relationship that does not exist.
const OVERFLOW_ORDERING: Ordering = Ordering::Relaxed;

/// Total overflow checkouts across every pool in the process.
pub fn overflow_count() -> u64 {
    OVERFLOWS.load(OVERFLOW_ORDERING)
}

struct Slot<T> {
    busy: AtomicBool,
    item: UnsafeCell<Option<T>>,
}

// Safety: `item` is only accessed by the thread that won the `busy`
// compare-exchange (acquire) and is released with a store (release),
// so access to the interior is serialized per slot.
unsafe impl<T: Send> Sync for Slot<T> {}

/// A fixed-capacity, lock-free pool of scratch buffers of type `T`.
///
/// `checkout` returns a guard that dereferences to `T` and returns the
/// buffer to its slot on drop. Buffers created on overflow (all slots
/// busy) are simply dropped.
pub struct ScratchPool<T> {
    slots: Box<[Slot<T>]>,
}

impl<T> ScratchPool<T> {
    /// Creates an empty pool; buffers are built lazily by `checkout`.
    pub fn new() -> Self {
        ScratchPool {
            slots: (0..SLOTS)
                .map(|_| Slot {
                    busy: AtomicBool::new(false),
                    item: UnsafeCell::new(None),
                })
                .collect(),
        }
    }

    /// Checks a buffer out of the pool, building one with `make` if
    /// the claimed slot is empty (first use) or every slot is busy.
    ///
    /// The buffer is returned in whatever state the previous query
    /// left it; callers reset it themselves (the same contract the
    /// `RefCell` scratch had).
    pub fn checkout(&self, make: impl FnOnce() -> T) -> ScratchGuard<'_, T> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // Safety: we hold the slot's busy flag.
                let item = unsafe { (*slot.item.get()).take() };
                return ScratchGuard {
                    pool: Some((self, i)),
                    item: Some(item.unwrap_or_else(make)),
                };
            }
        }
        OVERFLOWS.fetch_add(1, OVERFLOW_ORDERING);
        ScratchGuard {
            pool: None,
            item: Some(make()),
        }
    }
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A checked-out scratch buffer; returns to the pool on drop.
pub struct ScratchGuard<'a, T> {
    /// The owning pool and slot index, or `None` for overflow buffers.
    pool: Option<(&'a ScratchPool<T>, usize)>,
    item: Option<T>,
}

impl<T> Deref for ScratchGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.item.as_ref().expect("guard holds an item until drop")
    }
}

impl<T> DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("guard holds an item until drop")
    }
}

impl<T> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((pool, i)) = self.pool {
            let slot = &pool.slots[i];
            // Safety: we still hold the slot's busy flag.
            unsafe {
                *slot.item.get() = self.item.take();
            }
            slot.busy.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn checkout_reuses_returned_buffers() {
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        for _ in 0..100 {
            let mut g = pool.checkout(|| {
                BUILDS.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            });
            g.push(1);
        }
        assert_eq!(BUILDS.load(Ordering::Relaxed), 1, "one buffer, reused");
        // state survives: the RefCell contract (callers reset)
        let g = pool.checkout(Vec::new);
        assert_eq!(g.len(), 100);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        let mut a = pool.checkout(Vec::new);
        let mut b = pool.checkout(Vec::new);
        a.push(1);
        b.push(2);
        assert_eq!(a[0], 1);
        assert_eq!(b[0], 2);
    }

    #[test]
    fn overflow_beyond_slots_still_works() {
        let before = overflow_count();
        let pool: ScratchPool<u32> = ScratchPool::new();
        let guards: Vec<_> = (0..SLOTS + 4).map(|i| pool.checkout(|| i as u32)).collect();
        for (i, g) in guards.iter().enumerate() {
            assert_eq!(**g, i as u32);
        }
        // tests run concurrently, so other pools may overflow too —
        // but at least our 4 extra checkouts must have been counted
        assert!(overflow_count() >= before + 4);
    }

    #[test]
    fn overflow_under_contention_allocates_instead_of_spinning() {
        // Hold every slot on the main thread, then let 4 threads check
        // out concurrently: each must get a fresh buffer immediately
        // (the scope join proves nobody blocked or spun waiting for a
        // slot) and each must bump the overflow counter.
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        let _held: Vec<_> = (0..SLOTS).map(|_| pool.checkout(Vec::new)).collect();
        let before = overflow_count();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut g = pool.checkout(Vec::new);
                    assert!(g.is_empty(), "overflow buffers are fresh, never pooled");
                    g.push(1);
                });
            }
        });
        assert!(overflow_count() >= before + 4);
        // with the held guards dropped, checkouts come from the pool
        // again and reuse a returned (non-empty) buffer
        drop(_held);
        let g = pool.checkout(Vec::new);
        assert!(pool.slots.iter().any(|s| !s.busy.load(Ordering::Relaxed)));
        drop(g);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        let mut g = pool.checkout(Vec::new);
                        g.clear();
                        g.push(7);
                        assert_eq!(g.len(), 1);
                    }
                });
            }
        });
    }
}
