//! Plain-text edge-list serialization.
//!
//! Format (one record per line, `#` comments allowed):
//!
//! ```text
//! # plain:   <num_vertices>    then   <u> <v>
//! # labeled: <num_vertices> <num_labels>   then   <u> <label> <v>
//! ```
//!
//! This is the interchange format used by most published reachability
//! index implementations, which makes it easy to feed real datasets to
//! the bench harness.

use crate::digraph::{DiGraph, DiGraphBuilder};
use crate::error::GraphError;
use crate::labeled::{Label, LabeledGraph, LabeledGraphBuilder};
use crate::vertex::VertexId;
use std::fmt::Write as _;

fn parse_err(line: usize, message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line,
        message: message.into(),
    }
}

fn significant_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

fn parse_u32(tok: &str, line: usize, what: &str) -> Result<u32, GraphError> {
    tok.parse::<u32>()
        .map_err(|_| parse_err(line, format!("invalid {what}: {tok:?}")))
}

/// Serializes a plain digraph to the edge-list format.
pub fn write_digraph(g: &DiGraph) -> String {
    let mut out = String::with_capacity(16 + 12 * g.num_edges());
    let _ = writeln!(out, "{}", g.num_vertices());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

/// Parses a plain digraph from the edge-list format.
pub fn read_digraph(text: &str) -> Result<DiGraph, GraphError> {
    let mut lines = significant_lines(text);
    let (lno, header) = lines
        .next()
        .ok_or_else(|| parse_err(0, "missing header line"))?;
    let n = parse_u32(header, lno, "vertex count")? as usize;
    let mut b = DiGraphBuilder::new(n);
    for (lno, line) in lines {
        let mut toks = line.split_whitespace();
        let u = parse_u32(
            toks.next()
                .ok_or_else(|| parse_err(lno, "missing source"))?,
            lno,
            "source",
        )?;
        let v = parse_u32(
            toks.next()
                .ok_or_else(|| parse_err(lno, "missing target"))?,
            lno,
            "target",
        )?;
        if toks.next().is_some() {
            return Err(parse_err(lno, "trailing tokens on edge line"));
        }
        b.try_add_edge(VertexId(u), VertexId(v))
            .map_err(|e| parse_err(lno, e.to_string()))?;
    }
    Ok(b.build())
}

/// Serializes a labeled digraph to the edge-list format.
pub fn write_labeled(g: &LabeledGraph) -> String {
    let mut out = String::with_capacity(16 + 14 * g.num_edges());
    let _ = writeln!(out, "{} {}", g.num_vertices(), g.num_labels());
    for (u, l, v) in g.edges() {
        let _ = writeln!(out, "{} {} {}", u.0, l.0, v.0);
    }
    out
}

/// Parses a labeled digraph from the edge-list format.
pub fn read_labeled(text: &str) -> Result<LabeledGraph, GraphError> {
    let mut lines = significant_lines(text);
    let (lno, header) = lines
        .next()
        .ok_or_else(|| parse_err(0, "missing header line"))?;
    let mut toks = header.split_whitespace();
    let n = parse_u32(
        toks.next()
            .ok_or_else(|| parse_err(lno, "missing vertex count"))?,
        lno,
        "vertex count",
    )? as usize;
    let k = parse_u32(
        toks.next()
            .ok_or_else(|| parse_err(lno, "missing label count"))?,
        lno,
        "label count",
    )? as usize;
    if k > crate::labeled::MAX_LABELS {
        return Err(parse_err(lno, format!("label alphabet {k} exceeds 64")));
    }
    let mut b = LabeledGraphBuilder::new(n, k);
    for (lno, line) in lines {
        let mut toks = line.split_whitespace();
        let u = parse_u32(
            toks.next()
                .ok_or_else(|| parse_err(lno, "missing source"))?,
            lno,
            "source",
        )?;
        let l = parse_u32(
            toks.next().ok_or_else(|| parse_err(lno, "missing label"))?,
            lno,
            "label",
        )?;
        let v = parse_u32(
            toks.next()
                .ok_or_else(|| parse_err(lno, "missing target"))?,
            lno,
            "target",
        )?;
        if toks.next().is_some() {
            return Err(parse_err(lno, "trailing tokens on edge line"));
        }
        let l = Label::try_new(l).map_err(|e| parse_err(lno, e.to_string()))?;
        b.try_add_edge(VertexId(u), l, VertexId(v))
            .map_err(|e| parse_err(lno, e.to_string()))?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn plain_round_trip() {
        let g = fixtures::figure1a();
        let text = write_digraph(&g);
        let back = read_digraph(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn labeled_round_trip() {
        let g = fixtures::figure1b();
        let text = write_labeled(&g);
        let back = read_labeled(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let g = read_digraph("# a comment\n\n3\n0 1\n# another\n1 2\n").unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(read_digraph("").is_err());
        assert!(read_digraph("x").is_err());
        assert!(read_digraph("2\n0").is_err());
        assert!(read_digraph("2\n0 1 9").is_err());
        assert!(read_digraph("2\n0 7").is_err(), "out-of-bounds target");
        assert!(read_labeled("2\n0 0 1").is_err(), "missing label count");
        assert!(read_labeled("2 2\n0 9 1").is_err(), "label out of alphabet");
        assert!(read_labeled("2 100\n").is_err(), "alphabet too large");
    }

    #[test]
    fn parse_error_reports_line() {
        let err = read_digraph("3\n0 1\nbogus line\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
