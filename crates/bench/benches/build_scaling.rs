//! Criterion bench for §5's scaling claim: approximate-TC and
//! tree-cover partial indexes build in near-linear time, so growing
//! the graph 4× grows the build ~4× (BFL's "a few seconds on millions
//! of vertices" — scaled to bench-friendly sizes; the `claims` binary
//! runs the full-size configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reach_bench::registry::build_plain;
use reach_bench::workloads::Shape;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_build_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for n in [10_000usize, 40_000] {
        let g = Arc::new(Shape::PowerLaw.generate(n, 5));
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        for name in ["BFL", "IP", "GRAIL", "Feline", "PReaCH"] {
            group.bench_with_input(BenchmarkId::new(name, n), &g, |b, g| {
                b.iter(|| black_box(build_plain(name, g)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build_scaling);
criterion_main!(benches);
