//! Criterion ablation: the size/precision parameter of each partial
//! index — GRAIL's tree count, Ferrari's interval budget, IP's
//! k-min-wise size, BFL's Bloom bits (the design choices §3.1/§3.3
//! describe; larger k prunes more per lookup but costs more space).

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::queries::query_mix;
use reach_bench::workloads::Shape;
use reach_core::bfl::build_bfl;
use reach_core::ferrari::build_ferrari;
use reach_core::grail::build_grail;
use reach_core::ip::build_ip;
use reach_core::ReachIndex;
use reach_graph::Dag;
use std::hint::black_box;
use std::time::Duration;

fn bench_ablation_k(c: &mut Criterion) {
    let graph = Shape::Sparse.generate(5_000, 31);
    let dag = Dag::new(graph).expect("sparse shape is acyclic");
    let mix = query_mix(dag.graph(), 256, 0.3, 13);
    let mut group = c.benchmark_group("ablation_k");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3));

    let run = |group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
               label: String,
               idx: &dyn ReachIndex| {
        group.bench_function(label, |b| {
            b.iter(|| {
                for &(s, t) in &mix.pairs {
                    black_box(idx.query(s, t));
                }
            })
        });
    };

    for k in [1, 2, 4, 8] {
        let idx = build_grail(&dag, k, 7);
        run(&mut group, format!("GRAIL/k={k}"), &idx);
    }
    for budget in [1, 2, 4, 8] {
        let idx = build_ferrari(&dag, budget);
        run(&mut group, format!("Ferrari/budget={budget}"), &idx);
    }
    for k in [2, 8, 32] {
        let idx = build_ip(&dag, k, 7);
        run(&mut group, format!("IP/k={k}"), &idx);
    }
    for bits in [64, 256, 1024] {
        let idx = build_bfl(&dag, bits, 7);
        run(&mut group, format!("BFL/bits={bits}"), &idx);
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_k);
criterion_main!(benches);
