//! Criterion bench: query throughput of every plain index on a fixed
//! workload (Table 1, empirical "query time" column).

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::queries::query_mix;
use reach_bench::registry::{build_plain, plain_feasible, plain_names};
use reach_bench::workloads::Shape;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_plain_query(c: &mut Criterion) {
    let n = 2_000;
    let g = Arc::new(Shape::Sparse.generate(n, 42));
    let mix = query_mix(&g, 512, 0.5, 7);
    let mut group = c.benchmark_group("plain_query");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for name in plain_names() {
        if !plain_feasible(name, n, g.num_edges()) {
            continue;
        }
        let idx = build_plain(name, &g);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(s, t) in &mix.pairs {
                    if idx.query(black_box(s), black_box(t)) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plain_query);
criterion_main!(benches);
