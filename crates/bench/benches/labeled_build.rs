//! Criterion bench: LCR/RLC index construction time (Table 2,
//! empirical "build time"; §5's "construction cost … is high" claim).

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::registry::{build_lcr, lcr_feasible, lcr_names};
use reach_bench::workloads::Shape;
use reach_labeled::rlc::RlcIndex;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_lcr_build(c: &mut Criterion) {
    let n = 600;
    let g = Arc::new(Shape::Sparse.generate_labeled(n, 8, 42));
    let mut group = c.benchmark_group("lcr_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for name in lcr_names() {
        if !lcr_feasible(name, n) {
            continue;
        }
        group.bench_function(name, |b| b.iter(|| black_box(build_lcr(name, &g))));
    }
    group.finish();
}

fn bench_rlc_build(c: &mut Criterion) {
    let g = Arc::new(Shape::Sparse.generate_labeled(200, 4, 43));
    let mut group = c.benchmark_group("rlc_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for kmax in [1, 2] {
        group.bench_function(format!("RLC kmax={kmax}"), |b| {
            b.iter(|| black_box(RlcIndex::build(&g, kmax)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lcr_build, bench_rlc_build);
criterion_main!(benches);
