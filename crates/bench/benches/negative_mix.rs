//! Criterion bench for §5's central claim: partial indexes *without
//! false negatives* dominate on unreachable-heavy query mixes, while a
//! no-false-positive partial (GRIPP) must keep traversing.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::queries::query_mix;
use reach_bench::registry::build_plain;
use reach_bench::workloads::Shape;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_negative_mix(c: &mut Criterion) {
    let n = 5_000;
    let g = Arc::new(Shape::Sparse.generate(n, 8));
    let mut group = c.benchmark_group("negative_mix");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3));
    for share_negative in [10usize, 50, 90] {
        let mix = query_mix(&g, 256, 1.0 - share_negative as f64 / 100.0, 11);
        for name in ["GRAIL", "BFL", "IP", "Feline", "GRIPP", "online-BFS"] {
            let idx = build_plain(name, &g);
            group.bench_function(format!("{name}/neg{share_negative}%"), |b| {
                b.iter(|| {
                    for &(s, t) in &mix.pairs {
                        black_box(idx.query(s, t));
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_negative_mix);
criterion_main!(benches);
