//! Criterion bench: LCR query throughput per index, plus the RLC index
//! against its online baseline (Table 2, empirical "query time").

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_bench::registry::{build_lcr, lcr_feasible, lcr_names};
use reach_bench::workloads::Shape;
use reach_graph::{Label, LabelSet, VertexId};
use reach_labeled::online::{lcr_bfs, rlc_bfs};
use reach_labeled::rlc::RlcIndex;
use reach_labeled::RlcIndexApi;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_lcr_query(c: &mut Criterion) {
    let n = 600;
    let k = 8usize;
    let g = Arc::new(Shape::Sparse.generate_labeled(n, k, 42));
    let mut rng = SmallRng::seed_from_u64(5);
    let queries: Vec<(VertexId, VertexId, LabelSet)> = (0..256)
        .map(|_| {
            let s = VertexId(rng.random_range(0..n as u32));
            let mut t = VertexId(rng.random_range(0..n as u32 - 1));
            if t >= s {
                t = VertexId(t.0 + 1);
            }
            (s, t, LabelSet(rng.random_range(1..(1u64 << k))))
        })
        .collect();

    let mut group = c.benchmark_group("lcr_query");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("online label-BFS", |b| {
        b.iter(|| {
            for &(s, t, allowed) in &queries {
                black_box(lcr_bfs(&g, s, t, allowed));
            }
        })
    });
    for name in lcr_names() {
        if !lcr_feasible(name, n) {
            continue;
        }
        let idx = build_lcr(name, &g);
        group.bench_function(name, |b| {
            b.iter(|| {
                for &(s, t, allowed) in &queries {
                    black_box(idx.query(s, t, allowed));
                }
            })
        });
    }
    group.finish();
}

fn bench_rlc_query(c: &mut Criterion) {
    let n = 200;
    let g = Arc::new(Shape::Sparse.generate_labeled(n, 4, 43));
    let mut rng = SmallRng::seed_from_u64(6);
    let queries: Vec<(VertexId, VertexId, Vec<Label>)> = (0..128)
        .map(|_| {
            let s = VertexId(rng.random_range(0..n as u32));
            let t = VertexId(rng.random_range(0..n as u32));
            let len = 1 + rng.random_range(0..2usize);
            let unit = (0..len).map(|_| Label(rng.random_range(0..4u8))).collect();
            (s, t, unit)
        })
        .collect();
    let idx = RlcIndex::build(&g, 2);

    let mut group = c.benchmark_group("rlc_query");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("online product-BFS", |b| {
        b.iter(|| {
            for (s, t, unit) in &queries {
                black_box(rlc_bfs(&g, *s, *t, unit));
            }
        })
    });
    group.bench_function("RLC index", |b| {
        b.iter(|| {
            for (s, t, unit) in &queries {
                black_box(idx.try_query(*s, *t, unit));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lcr_query, bench_rlc_query);
criterion_main!(benches);
