//! Criterion ablation: the vertex total order of the TOL framework —
//! §3.2's point that TFL/DL/PLL are order instantiations of one
//! scheme. Degree order should beat arbitrary id order on hub-heavy
//! graphs in both label volume and query time.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::queries::query_mix;
use reach_bench::workloads::Shape;
use reach_core::pll::Pll;
use reach_core::tol::{build_tfl, OrderStrategy, Tol};
use reach_core::ReachIndex;
use reach_graph::Dag;
use std::hint::black_box;
use std::time::Duration;

fn bench_ablation_order(c: &mut Criterion) {
    let graph = Shape::PowerLaw.generate(3_000, 17);
    let dag = Dag::new(graph).expect("power-law shape is acyclic");
    let mix = query_mix(dag.graph(), 256, 0.5, 19);

    let mut group = c.benchmark_group("ablation_order_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("TOL/degree", |b| {
        b.iter(|| black_box(Tol::build(dag.graph(), OrderStrategy::DegreeDescending)))
    });
    group.bench_function("TOL/by-id", |b| {
        b.iter(|| black_box(Tol::build(dag.graph(), OrderStrategy::ById)))
    });
    group.bench_function("TFL/topological", |b| b.iter(|| black_box(build_tfl(&dag))));
    group.bench_function("PLL/degree+pruning", |b| {
        b.iter(|| black_box(Pll::build(dag.graph())))
    });
    group.finish();

    let mut group = c.benchmark_group("ablation_order_query");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3));
    let variants: Vec<(&str, Box<dyn ReachIndex>)> = vec![
        (
            "TOL/degree",
            Box::new(Tol::build(dag.graph(), OrderStrategy::DegreeDescending)),
        ),
        (
            "TOL/by-id",
            Box::new(Tol::build(dag.graph(), OrderStrategy::ById)),
        ),
        ("TFL/topological", Box::new(build_tfl(&dag))),
        ("PLL/degree+pruning", Box::new(Pll::build(dag.graph()))),
    ];
    for (name, idx) in &variants {
        group.bench_function(*name, |b| {
            b.iter(|| {
                for &(s, t) in &mix.pairs {
                    black_box(idx.query(s, t));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_order);
criterion_main!(benches);
