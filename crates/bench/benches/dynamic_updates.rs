//! Criterion bench: update throughput of the dynamic indexes (the
//! "Dynamic" columns of Tables 1 and 2): TOL and DAGGER edge
//! insert/delete, DBL insert, DLCR labeled insert/delete.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_bench::workloads::Shape;
use reach_core::dagger::DynamicGrail;
use reach_core::dbl::Dbl;
use reach_core::tol::{OrderStrategy, Tol};
use reach_core::ReachIndex;
use reach_graph::{Dag, Label, VertexId};
use reach_labeled::dlcr::Dlcr;
use reach_labeled::LcrIndex;
use std::hint::black_box;
use std::time::Duration;

fn random_edge(n: u32, rng: &mut SmallRng) -> (VertexId, VertexId) {
    let u = rng.random_range(0..n);
    let mut v = rng.random_range(0..n - 1);
    if v >= u {
        v += 1;
    }
    (VertexId(u), VertexId(v))
}

fn bench_dynamic(c: &mut Criterion) {
    let n = 1_000u32;
    let base = Shape::Cyclic.generate(n as usize, 23);
    let dag_base = Dag::new(Shape::Sparse.generate(n as usize, 24)).unwrap();
    let labeled = Shape::Cyclic.generate_labeled(200, 3, 25);

    let mut group = c.benchmark_group("dynamic_updates");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    group.bench_function("TOL/insert+delete", |b| {
        b.iter_batched(
            || {
                (
                    Tol::build(&base, OrderStrategy::DegreeDescending),
                    SmallRng::seed_from_u64(1),
                )
            },
            |(mut tol, mut rng)| {
                for _ in 0..32 {
                    let (u, v) = random_edge(n, &mut rng);
                    tol.insert_edge(u, v);
                    let (u, v) = random_edge(n, &mut rng);
                    tol.delete_edge(u, v);
                }
                black_box(tol.size_entries())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("DAGGER/insert+delete", |b| {
        b.iter_batched(
            || {
                (
                    DynamicGrail::build(&dag_base, 2, 3),
                    SmallRng::seed_from_u64(2),
                )
            },
            |(mut dagger, mut rng)| {
                for _ in 0..32 {
                    // forward edges keep the stream acyclic
                    let u = rng.random_range(0..n - 1);
                    let v = rng.random_range(u + 1..n);
                    dagger.insert_edge(VertexId(u), VertexId(v));
                    let (u, v) = random_edge(n, &mut rng);
                    dagger.delete_edge(u, v);
                }
                black_box(dagger.size_entries())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("DBL/insert-only", |b| {
        b.iter_batched(
            || (Dbl::build(&base), SmallRng::seed_from_u64(3)),
            |(mut dbl, mut rng)| {
                for _ in 0..32 {
                    let (u, v) = random_edge(n, &mut rng);
                    dbl.insert_edge(u, v);
                }
                black_box(dbl.size_entries())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.bench_function("DLCR/insert+delete", |b| {
        b.iter_batched(
            || (Dlcr::build(&labeled), SmallRng::seed_from_u64(4)),
            |(mut dlcr, mut rng)| {
                for _ in 0..16 {
                    let (u, v) = random_edge(200, &mut rng);
                    let l = Label(rng.random_range(0..3u8));
                    dlcr.insert_edge(u, l, v);
                    let (u, v) = random_edge(200, &mut rng);
                    let l = Label(rng.random_range(0..3u8));
                    dlcr.delete_edge(u, l, v);
                }
                black_box(dlcr.size_entries())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
