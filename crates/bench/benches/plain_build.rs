//! Criterion bench: construction time of every plain index (Table 1,
//! empirical "build time" column). Partial indexes must build in
//! near-linear time — the survey's §3.1/§3.3 scalability observation.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_bench::registry::{build_plain, plain_feasible, plain_names};
use reach_bench::workloads::Shape;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_plain_build(c: &mut Criterion) {
    let n = 2_000;
    let g = Arc::new(Shape::Sparse.generate(n, 42));
    let mut group = c.benchmark_group("plain_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for name in plain_names() {
        if !plain_feasible(name, n, g.num_edges()) || name.starts_with("online") {
            continue;
        }
        group.bench_function(name, |b| b.iter(|| black_box(build_plain(name, &g))));
    }
    group.finish();
}

criterion_group!(benches, bench_plain_build);
criterion_main!(benches);
