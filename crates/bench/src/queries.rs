//! Query-mix generation with a controlled reachable share.
//!
//! §5 of the survey argues that *"in real-world graphs there will be
//! many vertices s"* from which a target is unreachable, which is why
//! no-false-negative partial indexes win. The harness therefore
//! controls the positive (reachable) fraction of each query batch
//! explicitly.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_graph::traverse::{bfs_reaches, VisitMap};
use reach_graph::{DiGraph, VertexId};

/// A batch of point queries with a known reachable share.
#[derive(Debug, Clone)]
pub struct QueryMix {
    /// `(source, target)` pairs, shuffled.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// Number of reachable pairs in the batch.
    pub positives: usize,
}

/// Samples `count` distinct-endpoint queries of which (approximately)
/// `positive_share` are reachable. Classification uses BFS, so this is
/// for setup, not timing. Gives up gracefully (returns fewer pairs) if
/// the graph cannot supply enough pairs of one kind.
pub fn query_mix(g: &DiGraph, count: usize, positive_share: f64, seed: u64) -> QueryMix {
    assert!((0.0..=1.0).contains(&positive_share));
    let n = g.num_vertices();
    assert!(n >= 2, "need at least two vertices");
    let want_pos = (count as f64 * positive_share).round() as usize;
    let want_neg = count - want_pos;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut visit = VisitMap::new(n);
    let mut pos = Vec::with_capacity(want_pos);
    let mut neg = Vec::with_capacity(want_neg);
    let budget = 200 * count + 10_000;
    for _ in 0..budget {
        if pos.len() >= want_pos && neg.len() >= want_neg {
            break;
        }
        let s = VertexId(rng.random_range(0..n as u32));
        let mut t = VertexId(rng.random_range(0..n as u32 - 1));
        if t >= s {
            t = VertexId(t.0 + 1);
        }
        if bfs_reaches(g, s, t, &mut visit) {
            if pos.len() < want_pos {
                pos.push((s, t));
            }
        } else if neg.len() < want_neg {
            neg.push((s, t));
        }
    }
    let positives = pos.len();
    let mut pairs = pos;
    pairs.extend(neg);
    // deterministic shuffle so positives and negatives interleave
    for i in (1..pairs.len()).rev() {
        pairs.swap(i, rng.random_range(0..=i));
    }
    QueryMix { pairs, positives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Shape;

    #[test]
    fn respects_positive_share() {
        let g = Shape::Sparse.generate(300, 5);
        for share in [0.1, 0.5, 0.9] {
            let mix = query_mix(&g, 200, share, 11);
            assert_eq!(mix.pairs.len(), 200);
            let expected = (200.0 * share) as isize;
            assert!(
                (mix.positives as isize - expected).abs() <= 10,
                "share {share}: got {} positives",
                mix.positives
            );
        }
    }

    #[test]
    fn classification_is_correct() {
        let g = Shape::Cyclic.generate(150, 6);
        let mix = query_mix(&g, 100, 0.5, 3);
        let mut vm = VisitMap::new(g.num_vertices());
        let actual = mix
            .pairs
            .iter()
            .filter(|&&(s, t)| bfs_reaches(&g, s, t, &mut vm))
            .count();
        assert_eq!(actual, mix.positives);
    }

    #[test]
    fn no_reflexive_pairs() {
        let g = Shape::Dense.generate(100, 2);
        let mix = query_mix(&g, 150, 0.3, 9);
        assert!(mix.pairs.iter().all(|&(s, t)| s != t));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = Shape::Sparse.generate(120, 4);
        let a = query_mix(&g, 80, 0.4, 42);
        let b = query_mix(&g, 80, 0.4, 42);
        assert_eq!(a.pairs, b.pairs);
    }
}
