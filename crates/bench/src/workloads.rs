//! Named graph workloads for the table and claim harnesses.
//!
//! Each shape isolates one regime the survey's comparisons depend on
//! (DESIGN.md §2 documents why these substitute for the cited papers'
//! datasets).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use reach_graph::generators::{
    label_edges, layered_dag, power_law_dag, random_dag, random_digraph, random_tree_plus_edges,
    LabelDistribution,
};
use reach_graph::{DiGraph, LabeledGraph};

/// The graph shapes used across the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Uniform random DAG, average degree ~3.
    Sparse,
    /// Uniform random DAG, average degree ~8.
    Dense,
    /// Deep layered DAG (depth ≫ width).
    Deep,
    /// Preferential-attachment DAG (hub-dominated).
    PowerLaw,
    /// Random tree plus 2% extra forward edges (almost-tree).
    TreeLike,
    /// Cyclic Erdős–Rényi digraph, average degree ~4.
    Cyclic,
}

/// All shapes, for sweep loops.
pub const ALL_SHAPES: [Shape; 6] = [
    Shape::Sparse,
    Shape::Dense,
    Shape::Deep,
    Shape::PowerLaw,
    Shape::TreeLike,
    Shape::Cyclic,
];

impl Shape {
    /// Short identifier for table rows.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Sparse => "sparse-dag",
            Shape::Dense => "dense-dag",
            Shape::Deep => "deep-dag",
            Shape::PowerLaw => "power-law",
            Shape::TreeLike => "tree-like",
            Shape::Cyclic => "cyclic",
        }
    }

    /// Generates an `n`-vertex instance of this shape.
    pub fn generate(self, n: usize, seed: u64) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            Shape::Sparse => random_dag(n, 3 * n, &mut rng).into_graph(),
            Shape::Dense => random_dag(n, 8 * n, &mut rng).into_graph(),
            Shape::Deep => {
                let width = (n / 50).max(2);
                let layers = (n / width).max(2);
                layered_dag(layers, width, 3, &mut rng).into_graph()
            }
            Shape::PowerLaw => power_law_dag(n, 3, &mut rng).into_graph(),
            Shape::TreeLike => random_tree_plus_edges(n, n / 50, &mut rng).into_graph(),
            Shape::Cyclic => random_digraph(n, 4 * n, &mut rng),
        }
    }

    /// Generates a labeled instance with `k` labels, Zipf-skewed.
    pub fn generate_labeled(self, n: usize, k: usize, seed: u64) -> LabeledGraph {
        let g = self.generate(n, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1abe1);
        label_edges(&g, k, LabelDistribution::Zipf, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shape_generates_the_requested_size() {
        for shape in ALL_SHAPES {
            let g = shape.generate(500, 1);
            assert!(
                g.num_vertices() >= 450 && g.num_vertices() <= 550,
                "{}: n = {}",
                shape.name(),
                g.num_vertices()
            );
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for shape in ALL_SHAPES {
            assert_eq!(shape.generate(200, 7), shape.generate(200, 7));
        }
    }

    #[test]
    fn labeled_workloads_respect_alphabet() {
        for shape in ALL_SHAPES {
            let g = shape.generate_labeled(200, 4, 3);
            assert_eq!(g.num_labels(), 4);
            for (_, l, _) in g.edges() {
                assert!(l.index() < 4);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL_SHAPES.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_SHAPES.len());
    }
}
