//! Uniform construction of every index in the workspace.
//!
//! This module is a thin façade over the first-class builder registries
//! in `reach-core` (plain indexes, [`PLAIN_REGISTRY`]) and
//! `reach-labeled` (LCR indexes, [`LCR_REGISTRY`]): one table per
//! family, shared by the bench harness and the CLI, dispatching every
//! build through the memoized [`PreparedGraph`] artifacts so a full
//! sweep condenses each input graph exactly once. DAG-only techniques
//! are lifted to general graphs with `Condensed`, exactly as §3.1
//! prescribes, so every entry accepts an arbitrary digraph.

use reach_core::ReachIndex;
use reach_graph::{DiGraph, LabeledGraph, PreparedGraph};
use reach_labeled::LcrIndex;
use std::sync::Arc;

pub use reach_core::pipeline::{
    build_plain_prepared, build_plain_with_report, build_with_report, defaults, plain_feasible,
    plain_names, plain_native_meta, plain_spec, BuildOpts, BuildReport, PlainSpec, PLAIN_REGISTRY,
};
pub use reach_labeled::pipeline::{
    build_lcr as build_lcr_with_opts, lcr_feasible, lcr_names, lcr_spec, LcrSpec, LCR_REGISTRY,
};

/// Builds the named plain index over an arbitrary digraph with default
/// options, preparing the shared artifacts on the spot. Sweeps that
/// build several indexes over one graph should create a single
/// [`PreparedGraph`] and use [`build_plain_prepared`] instead, so the
/// condensation is shared. Panics on an unknown name.
pub fn build_plain(name: &str, graph: &Arc<DiGraph>) -> Box<dyn ReachIndex> {
    let prepared = PreparedGraph::new_shared(Arc::clone(graph));
    build_plain_prepared(name, &prepared, &BuildOpts::default())
}

/// Builds the named LCR index with default options. Panics on an
/// unknown name.
pub fn build_lcr(name: &str, graph: &Arc<LabeledGraph>) -> Box<dyn LcrIndex> {
    build_lcr_with_opts(name, graph, &BuildOpts::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::fixtures;

    #[test]
    fn every_plain_entry_builds_and_answers_figure1() {
        let g = Arc::new(fixtures::figure1a());
        for name in plain_names() {
            let idx = build_plain(name, &g);
            assert!(idx.query(fixtures::A, fixtures::G), "{name}: Qr(A,G)");
            assert!(!idx.query(fixtures::B, fixtures::A), "{name}: Qr(B,A)");
        }
    }

    #[test]
    fn every_lcr_entry_builds_and_answers_figure1() {
        use reach_graph::LabelSet;
        let g = Arc::new(fixtures::figure1b());
        let no_works_for = LabelSet::from_labels([fixtures::FRIEND_OF, fixtures::FOLLOWS]);
        for name in lcr_names() {
            let idx = build_lcr(name, &g);
            assert!(
                !idx.query(fixtures::A, fixtures::G, no_works_for),
                "{name}: Qr(A,G,(friendOf ∪ follows)*) must be false"
            );
            assert!(
                idx.query(fixtures::A, fixtures::G, LabelSet::full(3)),
                "{name}: unconstrained Qr(A,G) must be true"
            );
        }
    }

    #[test]
    fn names_and_metas_are_consistent() {
        let g = Arc::new(fixtures::figure1a());
        for name in plain_names() {
            let idx = build_plain(name, &g);
            assert_eq!(idx.meta().name, name);
        }
        let lg = Arc::new(fixtures::figure1b());
        for name in lcr_names() {
            let idx = build_lcr(name, &lg);
            assert_eq!(idx.meta().name, name);
        }
    }

    #[test]
    fn prepared_sweep_shares_one_condensation() {
        // general graph with cycles, so the condensation is non-trivial
        let g = Arc::new(DiGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
        ));
        let prepared = PreparedGraph::new_shared(Arc::clone(&g));
        let opts = BuildOpts::default();
        for name in plain_names() {
            if plain_feasible(name, g.num_vertices(), g.num_edges()) {
                let _ = build_plain_prepared(name, &prepared, &opts);
            }
        }
        assert_eq!(prepared.condensation_runs(), 1);
    }
}
