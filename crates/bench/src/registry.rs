//! Uniform construction of every index in the workspace.
//!
//! The harness builds indexes behind trait objects so that one loop
//! can regenerate a whole table row-by-row. DAG-only techniques are
//! lifted to general graphs with [`Condensed`], exactly as §3.1
//! prescribes, so every entry accepts an arbitrary digraph.

use reach_core::bfl::build_bfl_shared;
use reach_core::chain_cover::ChainCover;
use reach_core::dagger::DynamicGrail;
use reach_core::dbl::Dbl;
use reach_core::dual_labeling::DualLabeling;
use reach_core::feline::build_feline_shared;
use reach_core::ferrari::build_ferrari_shared;
use reach_core::grail::build_grail_shared;
use reach_core::gripp::Gripp;
use reach_core::hl::Hl;
use reach_core::hop2::Hop2;
use reach_core::ip::build_ip_shared;
use reach_core::online::{OnlineSearch, Strategy};
use reach_core::oreach::build_oreach_shared;
use reach_core::pll::Pll;
use reach_core::preach::Preach;
use reach_core::sspi::TreeSspi;
use reach_core::tol::{build_dl, build_tfl, Tol, OrderStrategy};
use reach_core::tree_cover::TreeCover;
use reach_core::{Condensed, ReachIndex, TransitiveClosure};
use reach_graph::{Dag, DiGraph, LabeledGraph};
use reach_labeled::chen::ChenIndex;
use reach_labeled::dlcr::Dlcr;
use reach_labeled::gtc::GtcIndex;
use reach_labeled::jin::JinIndex;
use reach_labeled::landmark::LandmarkIndex;
use reach_labeled::p2h::P2hPlus;
use reach_labeled::zou::ZouIndex;
use reach_labeled::LcrIndex;
use std::sync::Arc;

/// Default parameters used when a technique needs one (GRAIL trees,
/// Ferrari budget, IP permutations, BFL bits, landmark counts).
/// The ablation benches sweep these; the tables use the defaults.
pub mod defaults {
    /// GRAIL / DAGGER labelings.
    pub const GRAIL_K: usize = 3;
    /// Ferrari per-vertex interval budget.
    pub const FERRARI_BUDGET: usize = 4;
    /// IP k-min-wise label size.
    pub const IP_K: usize = 8;
    /// BFL Bloom buckets.
    pub const BFL_BITS: usize = 256;
    /// O'Reach supportive vertices.
    pub const OREACH_K: usize = 16;
    /// HL / landmark-index landmarks.
    pub const LANDMARKS: usize = 16;
    /// Deterministic seed for randomized index construction.
    pub const SEED: u64 = 0xC0FFEE;
}

/// Every plain technique the harness can build, in Table-1 order.
pub const PLAIN_NAMES: &[&str] = &[
    "Tree cover",
    "Tree+SSPI",
    "Dual labeling",
    "GRIPP",
    "Chain cover",
    "GRAIL",
    "Ferrari",
    "DAGGER",
    "2-Hop",
    "PLL",
    "TFL",
    "DL",
    "TOL",
    "DBL",
    "O'Reach",
    "IP",
    "BFL",
    "HL",
    "Feline",
    "PReaCH",
    "TC",
    "online-BFS",
    "online-DFS",
    "online-BiBFS",
];

/// Whether building `name` on a graph with `n` vertices and `m` edges
/// is practical — the quadratic/greedy baselines are skipped on large
/// inputs (which is itself one of the survey's observations).
pub fn plain_feasible(name: &str, n: usize, m: usize) -> bool {
    match name {
        "2-Hop" => n <= 400,
        "TC" => n <= 20_000,
        // the link table is quadratic in the non-tree edge count; the
        // technique targets almost-tree data (§3.1)
        "Dual labeling" => m.saturating_sub(n) <= 4_000,
        "Chain cover" => n <= 20_000,
        _ => true,
    }
}

/// Builds the named plain index over an arbitrary digraph (DAG-only
/// techniques are condensed). Panics on an unknown name.
pub fn build_plain(name: &str, graph: &Arc<DiGraph>) -> Box<dyn ReachIndex> {
    use defaults::*;
    let g: &DiGraph = graph;
    match name {
        "Tree cover" => Box::new(Condensed::build(g, TreeCover::build)),
        "Tree+SSPI" => Box::new(Condensed::build(g, TreeSspi::build)),
        "Dual labeling" => Box::new(Condensed::build(g, DualLabeling::build)),
        "GRIPP" => Box::new(Gripp::build(g)),
        "Chain cover" => Box::new(Condensed::build(g, ChainCover::build)),
        "GRAIL" => Box::new(Condensed::build(g, |dag: &Dag| {
            build_grail_shared(Arc::new(dag.graph().clone()), dag, GRAIL_K, SEED)
        })),
        "Ferrari" => Box::new(Condensed::build(g, |dag: &Dag| {
            build_ferrari_shared(Arc::new(dag.graph().clone()), dag, FERRARI_BUDGET)
        })),
        "DAGGER" => Box::new(Condensed::build(g, |dag: &Dag| {
            DynamicGrail::build(dag, GRAIL_K, SEED)
        })),
        "2-Hop" => Box::new(Hop2::build(g)),
        "PLL" => Box::new(Pll::build(g)),
        "TFL" => Box::new(Condensed::build(g, build_tfl)),
        "DL" => Box::new(build_dl(g)),
        "TOL" => Box::new(Tol::build(g, OrderStrategy::DegreeDescending)),
        "DBL" => Box::new(Dbl::build(g)),
        "O'Reach" => Box::new(Condensed::build(g, |dag: &Dag| {
            build_oreach_shared(Arc::new(dag.graph().clone()), dag, OREACH_K)
        })),
        "IP" => Box::new(Condensed::build(g, |dag: &Dag| {
            build_ip_shared(Arc::new(dag.graph().clone()), dag, IP_K, SEED)
        })),
        "BFL" => Box::new(Condensed::build(g, |dag: &Dag| {
            build_bfl_shared(Arc::new(dag.graph().clone()), dag, BFL_BITS, SEED)
        })),
        "HL" => Box::new(Condensed::build(g, |dag: &Dag| Hl::build(dag, LANDMARKS))),
        "Feline" => Box::new(Condensed::build(g, |dag: &Dag| {
            build_feline_shared(Arc::new(dag.graph().clone()), dag)
        })),
        "PReaCH" => Box::new(Condensed::build(g, |dag: &Dag| Preach::build(dag))),
        "TC" => Box::new(TransitiveClosure::build(g)),
        "online-BFS" => Box::new(OnlineSearch::new(graph.clone(), Strategy::Bfs)),
        "online-DFS" => Box::new(OnlineSearch::new(graph.clone(), Strategy::Dfs)),
        "online-BiBFS" => Box::new(OnlineSearch::new(graph.clone(), Strategy::BiBfs)),
        other => panic!("unknown plain index {other:?}"),
    }
}

/// The *native* classification of a plain technique — built on the
/// Figure-1 DAG without the [`Condensed`] adapter, so the `input`
/// column reports what the technique itself assumes (the paper's
/// Table-1 view), not what the adapted artifact accepts.
pub fn plain_native_meta(name: &str) -> reach_core::IndexMeta {
    use defaults::*;
    use reach_graph::fixtures;
    let g = fixtures::figure1a();
    let dag = Dag::new(g.clone()).expect("figure 1 is acyclic");
    let shared = Arc::new(g.clone());
    match name {
        "Tree cover" => TreeCover::build(&dag).meta(),
        "Tree+SSPI" => TreeSspi::build(&dag).meta(),
        "Dual labeling" => DualLabeling::build(&dag).meta(),
        "Chain cover" => ChainCover::build(&dag).meta(),
        "GRAIL" => build_grail_shared(shared, &dag, GRAIL_K, SEED).meta(),
        "Ferrari" => build_ferrari_shared(shared, &dag, FERRARI_BUDGET).meta(),
        "DAGGER" => DynamicGrail::build(&dag, GRAIL_K, SEED).meta(),
        "TFL" => build_tfl(&dag).meta(),
        "O'Reach" => build_oreach_shared(shared, &dag, OREACH_K).meta(),
        "IP" => build_ip_shared(shared, &dag, IP_K, SEED).meta(),
        "BFL" => build_bfl_shared(shared, &dag, BFL_BITS, SEED).meta(),
        "HL" => Hl::build(&dag, LANDMARKS).meta(),
        "Feline" => build_feline_shared(shared, &dag).meta(),
        "PReaCH" => Preach::build(&dag).meta(),
        other => build_plain(other, &shared).meta(),
    }
}

/// Every alternation-based (LCR) technique, in Table-2 order.
pub const LCR_NAMES: &[&str] = &[
    "Jin et al.",
    "Chen et al.",
    "Zou et al.",
    "Landmark index",
    "P2H+",
    "DLCR",
    "GTC",
];

/// Whether building the named LCR index is practical at size `n`.
pub fn lcr_feasible(name: &str, n: usize) -> bool {
    match name {
        "GTC" | "Zou et al." => n <= 2_000,
        "Jin et al." => n <= 5_000,
        _ => true,
    }
}

/// Builds the named LCR index. Panics on an unknown name.
pub fn build_lcr(name: &str, graph: &Arc<LabeledGraph>) -> Box<dyn LcrIndex> {
    match name {
        "Jin et al." => Box::new(JinIndex::build(graph)),
        "Chen et al." => Box::new(ChenIndex::build(graph)),
        "Zou et al." => Box::new(ZouIndex::build(graph)),
        "Landmark index" => {
            Box::new(LandmarkIndex::build(graph.clone(), defaults::LANDMARKS))
        }
        "P2H+" => Box::new(P2hPlus::build(graph)),
        "DLCR" => Box::new(Dlcr::build(graph)),
        "GTC" => Box::new(GtcIndex::build(graph)),
        other => panic!("unknown LCR index {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::fixtures;

    #[test]
    fn every_plain_entry_builds_and_answers_figure1() {
        let g = Arc::new(fixtures::figure1a());
        for name in PLAIN_NAMES {
            let idx = build_plain(name, &g);
            assert!(idx.query(fixtures::A, fixtures::G), "{name}: Qr(A,G)");
            assert!(!idx.query(fixtures::B, fixtures::A), "{name}: Qr(B,A)");
        }
    }

    #[test]
    fn every_lcr_entry_builds_and_answers_figure1() {
        use reach_graph::LabelSet;
        let g = Arc::new(fixtures::figure1b());
        let no_works_for =
            LabelSet::from_labels([fixtures::FRIEND_OF, fixtures::FOLLOWS]);
        for name in LCR_NAMES {
            let idx = build_lcr(name, &g);
            assert!(
                !idx.query(fixtures::A, fixtures::G, no_works_for),
                "{name}: Qr(A,G,(friendOf ∪ follows)*) must be false"
            );
            assert!(
                idx.query(fixtures::A, fixtures::G, LabelSet::full(3)),
                "{name}: unconstrained Qr(A,G) must be true"
            );
        }
    }

    #[test]
    fn names_and_metas_are_consistent() {
        let g = Arc::new(fixtures::figure1a());
        for name in PLAIN_NAMES {
            let idx = build_plain(name, &g);
            assert_eq!(&idx.meta().name, name);
        }
        let lg = Arc::new(fixtures::figure1b());
        for name in LCR_NAMES {
            let idx = build_lcr(name, &lg);
            assert_eq!(&idx.meta().name, name);
        }
    }
}
