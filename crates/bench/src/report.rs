//! Fixed-width table printing and timing helpers for the report
//! binaries.

use reach_core::BuildReport;
use std::time::{Duration, Instant};

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..width[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Human-readable duration (µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// One-line rendering of a [`BuildReport`]: per-phase wall time
/// (condense / order / label) plus index size. Phases charged to an
/// earlier build on the same prepared graph render as "shared".
pub fn fmt_build_report(r: &BuildReport) -> String {
    let preprocess = if r.reused_condensation() {
        "condense shared".to_string()
    } else {
        format!(
            "condense {} + order {}",
            fmt_duration(r.condense),
            fmt_duration(r.order)
        )
    };
    format!(
        "{}: total {} ({preprocess}, label {}), {} / {} entries",
        r.name,
        fmt_duration(r.total),
        fmt_duration(r.label),
        fmt_bytes(r.size_bytes),
        r.size_entries,
    )
}

/// Human-readable byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b < 1 << 10 {
        format!("{b}B")
    } else if b < 1 << 20 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(12), "12B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }

    #[test]
    fn timed_returns_result() {
        let (x, d) = timed(|| 2 + 2);
        assert_eq!(x, 4);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn build_report_renders_phases_and_sharing() {
        let mut r = BuildReport {
            name: "GRAIL",
            condense: Duration::from_micros(500),
            order: Duration::from_micros(100),
            label: Duration::from_micros(400),
            total: Duration::from_micros(1_000),
            size_bytes: 2048,
            size_entries: 64,
        };
        let line = fmt_build_report(&r);
        assert!(line.contains("GRAIL"));
        assert!(line.contains("condense 500.0µs"));
        assert!(line.contains("order 100.0µs"));
        assert!(line.contains("2.0KiB"));
        r.condense = Duration::ZERO;
        r.order = Duration::ZERO;
        assert!(fmt_build_report(&r).contains("condense shared"));
    }
}
