//! Batch-query throughput benchmark: sweeps thread counts × indexes
//! through [`reach_core::QueryEngine`] and reports how much the
//! concurrent batch path gains over the classic one-query-at-a-time
//! loop the survey's experiments measure.
//!
//! The workload has *source locality* (several targets per source, the
//! shape of real query logs): that is what the batch overrides exploit
//! — multi-source bit-parallel BFS packs 64 distinct sources into one
//! traversal for the online baselines, and guided search answers a
//! whole source group with one pruned DFS.
//!
//! ```text
//! cargo run --release -p reach-bench --bin throughput -- \
//!     [--smoke] [--n N] [--queries Q] [--index NAME ...] [--out FILE]
//! ```
//!
//! Emits a JSON report (default `BENCH_throughput.json`) with, per
//! index, the per-pair baseline rate and the batch rate at every thread
//! count, plus a `verdicts_identical` flag asserting byte-identical
//! answers across all configurations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_bench::registry::{build_plain_with_report, plain_names, BuildOpts};
use reach_bench::report::{fmt_duration, timed, Table};
use reach_bench::workloads::Shape;
use reach_core::QueryEngine;
use reach_graph::{PreparedGraph, VertexId};
use std::sync::Arc;

const SEED: u64 = 0x7157;
const TARGETS_PER_SOURCE: usize = 8;

struct Config {
    n: usize,
    queries: usize,
    indexes: Vec<String>,
    thread_counts: Vec<usize>,
    out: String,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Config {
    let mut cfg = Config {
        n: 100_000,
        queries: 4096,
        indexes: Vec::new(),
        thread_counts: vec![1, 2, 4, 8],
        out: "BENCH_throughput.json".to_string(),
        smoke: false,
    };
    let mut explicit_n = false;
    let mut explicit_q = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => cfg.smoke = true,
            "--n" => {
                i += 1;
                cfg.n = args[i].parse().expect("--n takes a number");
                explicit_n = true;
            }
            "--queries" => {
                i += 1;
                cfg.queries = args[i].parse().expect("--queries takes a number");
                explicit_q = true;
            }
            "--index" => {
                i += 1;
                cfg.indexes.push(args[i].clone());
            }
            "--out" => {
                i += 1;
                cfg.out = args[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if cfg.smoke {
        if !explicit_n {
            cfg.n = 2_000;
        }
        if !explicit_q {
            cfg.queries = 512;
        }
        cfg.thread_counts = vec![1, 2];
    }
    if cfg.indexes.is_empty() {
        cfg.indexes = ["online-BFS", "online-BiBFS", "GRAIL", "BFL"]
            .map(String::from)
            .to_vec();
    }
    let known = plain_names();
    for name in &cfg.indexes {
        assert!(
            known.contains(&name.as_str()),
            "unknown plain index {name:?}"
        );
    }
    cfg
}

/// A query log with source locality: `queries / TARGETS_PER_SOURCE`
/// distinct sources, each asked about `TARGETS_PER_SOURCE` targets,
/// interleaved the way a request stream would be.
fn locality_workload(n: usize, queries: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_sources = (queries / TARGETS_PER_SOURCE).max(1);
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(queries);
    for _ in 0..num_sources {
        let s = VertexId(rng.random_range(0..n as u32));
        for _ in 0..TARGETS_PER_SOURCE {
            pairs.push((s, VertexId(rng.random_range(0..n as u32))));
        }
        if pairs.len() >= queries {
            break;
        }
    }
    pairs.truncate(queries);
    // interleave: Fisher–Yates so batches must re-discover the grouping
    for i in (1..pairs.len()).rev() {
        pairs.swap(i, rng.random_range(0..=i));
    }
    pairs
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = parse_args(&args);

    let graph = Arc::new(Shape::Sparse.generate(cfg.n, SEED));
    let pairs = locality_workload(graph.num_vertices(), cfg.queries, SEED ^ 0xBA7C4);
    println!(
        "throughput workload: sparse-dag n={} m={} | {} queries, ~{} targets/source, threads {:?}",
        graph.num_vertices(),
        graph.num_edges(),
        pairs.len(),
        TARGETS_PER_SOURCE,
        cfg.thread_counts,
    );

    let prepared = PreparedGraph::new_shared(Arc::clone(&graph));
    let opts = BuildOpts::default();
    let mut table = Table::new(["index", "build", "per-pair qps", "batch config", "speedup"]);
    let mut index_reports: Vec<String> = Vec::new();

    for name in &cfg.indexes {
        let (idx, build) = build_plain_with_report(name, &prepared, &opts);

        // baseline: the classic sequential one-query-at-a-time loop
        let (reference, base_time) =
            timed(|| -> Vec<bool> { pairs.iter().map(|&(s, t)| idx.query(s, t)).collect() });
        let positives = reference.iter().filter(|&&b| b).count();
        let base_qps = pairs.len() as f64 / base_time.as_secs_f64().max(f64::MIN_POSITIVE);
        table.row([
            name.clone(),
            fmt_duration(build.total),
            format!("{base_qps:.0}"),
            "per-pair baseline".to_string(),
            "1.00x".to_string(),
        ]);

        let mut verdicts_identical = true;
        let mut batch_rows: Vec<String> = Vec::new();
        for &threads in &cfg.thread_counts {
            let engine = QueryEngine::new(threads);
            let (answers, batch_time) = timed(|| engine.run(idx.as_ref(), &pairs));
            if answers != reference {
                verdicts_identical = false;
            }
            let qps = pairs.len() as f64 / batch_time.as_secs_f64().max(f64::MIN_POSITIVE);
            let speedup = qps / base_qps;
            table.row([
                String::new(),
                String::new(),
                String::new(),
                format!("batch, {threads} thread(s)"),
                format!("{speedup:.2}x ({qps:.0} qps)"),
            ]);
            batch_rows.push(format!(
                "{{\"threads\": {threads}, \"ms\": {}, \"qps\": {}, \"speedup_vs_baseline\": {}}}",
                json_f64(batch_time.as_secs_f64() * 1e3),
                json_f64(qps),
                json_f64(speedup)
            ));
        }
        assert!(
            verdicts_identical,
            "{name}: batch verdicts diverged from the per-pair loop"
        );
        index_reports.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"build_ms\": {},\n      \
             \"positives\": {positives},\n      \"baseline_per_pair_qps\": {},\n      \
             \"verdicts_identical\": {verdicts_identical},\n      \"batch\": [\n        {}\n      ]\n    }}",
            json_f64(build.total.as_secs_f64() * 1e3),
            json_f64(base_qps),
            batch_rows.join(",\n        ")
        ));
    }

    println!("\n{}", table.render());

    let json = format!(
        "{{\n  \"workload\": {{\n    \"shape\": \"sparse-dag\",\n    \"n\": {},\n    \"m\": {},\n    \
         \"seed\": {SEED},\n    \"queries\": {},\n    \"targets_per_source\": {TARGETS_PER_SOURCE}\n  }},\n  \
         \"thread_counts\": [{}],\n  \"smoke\": {},\n  \"indexes\": [\n{}\n  ]\n}}\n",
        graph.num_vertices(),
        graph.num_edges(),
        pairs.len(),
        cfg.thread_counts
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        cfg.smoke,
        index_reports.join(",\n")
    );
    std::fs::write(&cfg.out, &json).expect("write report");
    println!("wrote {}", cfg.out);
}
