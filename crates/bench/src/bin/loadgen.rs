//! HTTP load generator for `reach-server`: sweeps worker-pool sizes
//! over a warm index and reports end-to-end throughput and latency
//! quantiles per endpoint.
//!
//! Two modes:
//!
//! * **In-process sweep** (default): builds one [`IndexService`] on a
//!   sparse DAG, then for each worker count starts a server sharing
//!   that warm index, hammers it with keep-alive client threads, and
//!   shuts it down. Every `/query` and `/batch` response is validated
//!   against answers computed directly on the index, so a single
//!   flipped verdict counts as an error.
//! * **External** (`--addr HOST:PORT`): drives an already-running
//!   `reach serve` process (the CI smoke path). Responses are checked
//!   for status and shape only, since the graph lives in the other
//!   process.
//!
//! The load model is **closed-loop with think time**: each client
//! waits `--think-us` microseconds between requests, the way a real
//! request stream paces itself. That makes the sweep measure what a
//! worker pool exists for — *concurrency*. A single worker is pinned
//! to one keep-alive connection and idles through its client's think
//! time while other connections wait; more workers overlap the think
//! times of different connections. (Raw single-request CPU would show
//! nothing on a one-core host: every worker count just serializes the
//! same cycles.)
//!
//! ```text
//! cargo run --release -p reach-bench --bin loadgen -- \
//!     [--smoke] [--n N] [--clients C] [--requests R] [--think-us T] \
//!     [--addr HOST:PORT] [--out FILE]
//! ```
//!
//! Emits `BENCH_server.json` with per-worker-count throughput and
//! exact client-side p50/p99 per endpoint, plus a `monotone_1_to_4`
//! flag (throughput must not drop when the pool grows from 1 to 4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_bench::registry::BuildOpts;
use reach_bench::workloads::Shape;
use reach_core::IndexService;
use reach_graph::PreparedGraph;
use reach_server::{Client, ServerConfig, Services};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0x5E4E;
const BATCH_SIZE: usize = 64;
const PAIR_POOL: usize = 4096;

struct Config {
    n: usize,
    clients: usize,
    requests: usize,
    think: Duration,
    worker_counts: Vec<usize>,
    index: String,
    addr: Option<String>,
    out: String,
    smoke: bool,
}

fn parse_args(args: &[String]) -> Config {
    let mut cfg = Config {
        n: 100_000,
        clients: 8,
        requests: 1_000,
        think: Duration::from_micros(500),
        worker_counts: vec![1, 4, 8],
        index: "BFL".to_string(),
        addr: None,
        out: "BENCH_server.json".to_string(),
        smoke: false,
    };
    let mut explicit_n = false;
    let mut explicit_r = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => cfg.smoke = true,
            "--n" => {
                i += 1;
                cfg.n = args[i].parse().expect("--n takes a number");
                explicit_n = true;
            }
            "--clients" => {
                i += 1;
                cfg.clients = args[i].parse().expect("--clients takes a number");
            }
            "--requests" => {
                i += 1;
                cfg.requests = args[i].parse().expect("--requests takes a number");
                explicit_r = true;
            }
            "--think-us" => {
                i += 1;
                cfg.think =
                    Duration::from_micros(args[i].parse().expect("--think-us takes a number"));
            }
            "--index" => {
                i += 1;
                cfg.index = args[i].clone();
            }
            "--addr" => {
                i += 1;
                cfg.addr = Some(args[i].clone());
            }
            "--out" => {
                i += 1;
                cfg.out = args[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if cfg.smoke {
        if !explicit_n {
            cfg.n = 2_000;
        }
        if !explicit_r {
            cfg.requests = 200;
        }
        cfg.worker_counts = vec![1, 2];
        cfg.clients = cfg.clients.min(4);
    }
    cfg
}

/// What each client thread measured, merged across threads afterwards.
#[derive(Default)]
struct ClientTally {
    /// Latencies in microseconds, per endpoint: query, batch, healthz.
    latencies: [Vec<u64>; 3],
    errors: usize,
}

const EP_NAMES: [&str; 3] = ["query", "batch", "healthz"];

/// One request pool entry: a pair plus (in-process mode) its verdict.
struct PoolEntry {
    s: u32,
    t: u32,
    expect: Option<bool>,
}

fn build_pool(n: usize, svc: Option<&IndexService>) -> Vec<PoolEntry> {
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0xF001);
    (0..PAIR_POOL)
        .map(|_| {
            let s = rng.random_range(0..n as u32);
            let t = rng.random_range(0..n as u32);
            PoolEntry {
                s,
                t,
                expect: svc.map(|svc| svc.query(s.into(), t.into())),
            }
        })
        .collect()
}

/// Drives `cfg.requests` requests through one keep-alive connection,
/// pausing `think` between them (closed-loop load model). Request mix:
/// 8/10 single queries, 1/10 batches of [`BATCH_SIZE`] pairs, 1/10
/// health checks.
fn run_client(
    addr: &str,
    pool: &[PoolEntry],
    requests: usize,
    think: Duration,
    seed: u64,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut client = match Client::connect(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(_) => {
            tally.errors = requests;
            return tally;
        }
    };
    for i in 0..requests {
        if i > 0 && !think.is_zero() {
            std::thread::sleep(think);
        }
        let (ep, path, body, expect) = match i % 10 {
            9 => (2, "/healthz", String::new(), Some("ok\n".to_string())),
            8 => {
                let start = rng.random_range(0..pool.len());
                let mut body = String::with_capacity(BATCH_SIZE * 12);
                let mut expect = String::with_capacity(BATCH_SIZE * 6);
                let mut complete = true;
                for k in 0..BATCH_SIZE {
                    let e = &pool[(start + k) % pool.len()];
                    body.push_str(&format!("{} {}\n", e.s, e.t));
                    match e.expect {
                        Some(v) => expect.push_str(if v { "true\n" } else { "false\n" }),
                        None => complete = false,
                    }
                }
                (1, "/batch", body, complete.then_some(expect))
            }
            _ => {
                let e = &pool[rng.random_range(0..pool.len())];
                (
                    0,
                    "/query",
                    format!("{} {}", e.s, e.t),
                    e.expect
                        .map(|v| if v { "true\n" } else { "false\n" }.to_string()),
                )
            }
        };
        let t0 = Instant::now();
        match client.request(if ep == 2 { "GET" } else { "POST" }, path, &body) {
            Ok(resp) => {
                let us = t0.elapsed().as_micros() as u64;
                let ok = resp.status == 200
                    && match &expect {
                        Some(e) => &resp.body == e,
                        // external mode: shape check only
                        None => resp.body.lines().all(|l| l == "true" || l == "false"),
                    };
                if ok {
                    tally.latencies[ep].push(us);
                } else {
                    tally.errors += 1;
                }
                if !client.is_open() {
                    match Client::connect(addr, Duration::from_secs(30)) {
                        Ok(c) => client = c,
                        Err(_) => {
                            tally.errors += requests - i - 1;
                            return tally;
                        }
                    }
                }
            }
            Err(_) => tally.errors += 1,
        }
    }
    tally
}

/// Exact quantile over a sorted sample (nearest-rank).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct SweepResult {
    workers: usize,
    elapsed: Duration,
    requests: usize,
    errors: usize,
    rps: f64,
    /// (name, count, p50_us, p99_us) per endpoint.
    endpoints: Vec<(&'static str, usize, u64, u64)>,
}

/// Runs the client fleet against `addr` and merges the tallies.
fn drive(addr: &str, pool: &Arc<Vec<PoolEntry>>, cfg: &Config, workers: usize) -> SweepResult {
    let t0 = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let pool = Arc::clone(pool);
                let (requests, think) = (cfg.requests, cfg.think);
                scope.spawn(move || run_client(addr, &pool, requests, think, SEED ^ (c as u64 + 1)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();

    let mut merged: [Vec<u64>; 3] = Default::default();
    let mut errors = 0;
    for t in tallies {
        errors += t.errors;
        for (m, l) in merged.iter_mut().zip(t.latencies) {
            m.extend(l);
        }
    }
    let requests = cfg.clients * cfg.requests;
    let endpoints = EP_NAMES
        .iter()
        .zip(merged.iter_mut())
        .map(|(name, lat)| {
            lat.sort_unstable();
            (*name, lat.len(), quantile(lat, 0.50), quantile(lat, 0.99))
        })
        .collect();
    SweepResult {
        workers,
        elapsed,
        requests,
        errors,
        rps: requests as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        endpoints,
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn result_json(r: &SweepResult, mode: &str) -> String {
    let eps = r
        .endpoints
        .iter()
        .map(|(name, count, p50, p99)| {
            format!(
                "        {{\"endpoint\": \"{name}\", \"count\": {count}, \
                 \"p50_us\": {p50}, \"p99_us\": {p99}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "    {{\n      \"mode\": \"{mode}\",\n      \"workers\": {},\n      \
         \"elapsed_ms\": {},\n      \"requests\": {},\n      \"errors\": {},\n      \
         \"rps\": {},\n      \"endpoints\": [\n{eps}\n      ]\n    }}",
        r.workers,
        json_f64(r.elapsed.as_secs_f64() * 1e3),
        r.requests,
        r.errors,
        json_f64(r.rps),
    )
}

fn print_result(r: &SweepResult, mode: &str) {
    println!(
        "{mode} workers={} | {} requests in {:.2}s = {:.0} req/s, {} errors",
        r.workers,
        r.requests,
        r.elapsed.as_secs_f64(),
        r.rps,
        r.errors
    );
    for (name, count, p50, p99) in &r.endpoints {
        println!("    {name:<8} n={count:<6} p50={p50}us p99={p99}us");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = parse_args(&args);
    let mut results: Vec<(String, SweepResult)> = Vec::new();

    if let Some(addr) = &cfg.addr {
        // External mode: the server (and its graph) live elsewhere;
        // vertex ids just need to stay within the served graph's range.
        println!(
            "loadgen: external server at {addr} | {} clients x {} requests, think {}us, ids < {}",
            cfg.clients,
            cfg.requests,
            cfg.think.as_micros(),
            cfg.n
        );
        let pool = Arc::new(build_pool(cfg.n, None));
        let r = drive(addr, &pool, &cfg, 0);
        print_result(&r, "external");
        assert_eq!(r.errors, 0, "external run saw errored requests");
        results.push(("external".to_string(), r));
    } else {
        let graph = Arc::new(Shape::Sparse.generate(cfg.n, SEED));
        println!(
            "loadgen: sparse-dag n={} m={} | index {} | {} clients x {} requests, \
             think {}us, workers {:?}",
            graph.num_vertices(),
            graph.num_edges(),
            cfg.index,
            cfg.clients,
            cfg.requests,
            cfg.think.as_micros(),
            cfg.worker_counts,
        );
        let prepared = PreparedGraph::new_shared(graph);
        let svc = Arc::new(
            IndexService::build(&cfg.index, prepared, &BuildOpts::default(), 2)
                .expect("unknown index"),
        );
        let pool = Arc::new(build_pool(svc.num_vertices(), Some(&svc)));

        for &workers in &cfg.worker_counts {
            let server_cfg = ServerConfig {
                workers,
                queue_capacity: 512,
                ..ServerConfig::default()
            };
            let handle = reach_server::start(
                Services {
                    plain: Arc::clone(&svc),
                    lcr: None,
                },
                server_cfg,
            )
            .expect("start server");
            let addr = handle.addr().to_string();
            let r = drive(&addr, &pool, &cfg, workers);
            handle.shutdown_and_join();
            print_result(&r, "in-process");
            assert_eq!(r.errors, 0, "workers={workers}: errored requests");
            results.push(("in-process".to_string(), r));
        }
    }

    // throughput must not drop when the pool grows from 1 to 4 workers
    // (falls back to first-vs-last for smoke/external sweeps)
    let rps_at = |w: usize| {
        results
            .iter()
            .find(|(_, r)| r.workers == w)
            .map(|(_, r)| r.rps)
    };
    let monotone = match (rps_at(1), rps_at(4)) {
        (Some(one), Some(four)) => four >= one,
        _ => {
            results.last().map(|(_, r)| r.rps).unwrap_or(0.0)
                >= results.first().map(|(_, r)| r.rps).unwrap_or(0.0)
        }
    };
    println!("monotone 1->4 workers: {monotone}");

    let sweep = results
        .iter()
        .map(|(mode, r)| result_json(r, mode))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"workload\": {{\n    \"shape\": \"sparse-dag\",\n    \"n\": {},\n    \
         \"seed\": {SEED},\n    \"index\": \"{}\",\n    \"clients\": {},\n    \
         \"requests_per_client\": {},\n    \"think_us\": {},\n    \
         \"batch_size\": {BATCH_SIZE}\n  }},\n  \
         \"smoke\": {},\n  \"monotone_1_to_4\": {monotone},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        cfg.n,
        cfg.index,
        cfg.clients,
        cfg.requests,
        cfg.think.as_micros(),
        cfg.smoke,
        sweep
    );
    std::fs::write(&cfg.out, &json).expect("write report");
    println!("wrote {}", cfg.out);
}
