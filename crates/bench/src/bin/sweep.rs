//! Parameter sweeps for the design choices the surveyed techniques
//! hinge on: the `k` of GRAIL/Ferrari/IP, the bit budget of BFL, the
//! landmark counts of HL and the landmark LCR index, and the vertex
//! order of TOL. Complements the Criterion ablation benches with a
//! human-readable report.
//!
//! ```text
//! cargo run --release -p reach-bench --bin sweep -- [--n 20000]
//! ```

use reach_bench::queries::query_mix;
use reach_bench::report::{fmt_bytes, fmt_duration, timed, Table};
use reach_bench::workloads::Shape;
use reach_core::bfl::build_bfl;
use reach_core::ferrari::build_ferrari;
use reach_core::grail::build_grail;
use reach_core::hl::Hl;
use reach_core::ip::build_ip;
use reach_core::tol::{OrderStrategy, Tol};
use reach_core::ReachIndex;
use reach_graph::Dag;
use std::sync::Arc;

fn sweep_index<I: ReachIndex>(
    table: &mut Table,
    label: String,
    build: impl FnOnce() -> I,
    mix: &reach_bench::queries::QueryMix,
) {
    let (idx, build_time) = timed(build);
    let (hits, query_time) = timed(|| {
        let mut hits = 0;
        for &(s, t) in &mix.pairs {
            if idx.query(s, t) {
                hits += 1;
            }
        }
        hits
    });
    assert_eq!(hits, mix.positives);
    table.row([
        label,
        fmt_duration(build_time),
        idx.size_entries().to_string(),
        fmt_bytes(idx.size_bytes()),
        fmt_duration(query_time / mix.pairs.len() as u32),
    ]);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 20_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n takes a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    let graph = Shape::Sparse.generate(n, 31);
    let dag = Dag::new(graph).expect("sparse shape is a DAG");
    let shared = Arc::new(dag.graph().clone());
    let mix = query_mix(&shared, 2_000, 0.3, 13);
    println!(
        "sweep workload: sparse-dag n={} m={} ({} queries, {} reachable)\n",
        dag.num_vertices(),
        dag.num_edges(),
        mix.pairs.len(),
        mix.positives
    );

    let mut table = Table::new(["configuration", "build", "entries", "bytes", "avg query"]);
    for k in [1, 2, 4, 8] {
        sweep_index(&mut table, format!("GRAIL k={k}"), || build_grail(&dag, k, 7), &mix);
    }
    for budget in [1, 2, 4, 8] {
        sweep_index(
            &mut table,
            format!("Ferrari budget={budget}"),
            || build_ferrari(&dag, budget),
            &mix,
        );
    }
    for k in [2, 8, 32] {
        sweep_index(&mut table, format!("IP k={k}"), || build_ip(&dag, k, 7), &mix);
    }
    for bits in [64, 256, 1024] {
        sweep_index(&mut table, format!("BFL bits={bits}"), || build_bfl(&dag, bits, 7), &mix);
    }
    for landmarks in [4, 16, 64] {
        sweep_index(
            &mut table,
            format!("HL landmarks={landmarks}"),
            || Hl::build(&dag, landmarks),
            &mix,
        );
    }
    for (name, strategy) in [
        ("degree", OrderStrategy::DegreeDescending),
        ("by-id", OrderStrategy::ById),
    ] {
        sweep_index(
            &mut table,
            format!("TOL order={name}"),
            || Tol::build(dag.graph(), strategy),
            &mix,
        );
    }
    sweep_index(
        &mut table,
        "TFL (topological order)".to_string(),
        || reach_core::tol::build_tfl(&dag),
        &mix,
    );
    println!("{}", table.render());
}
