//! Parameter sweeps for the design choices the surveyed techniques
//! hinge on: the `k` of GRAIL/Ferrari/IP, the bit budget of BFL, the
//! landmark counts of HL, and the vertex order of TOL. Complements the
//! Criterion ablation benches with a human-readable report.
//!
//! Every registry-driven configuration builds over one shared
//! [`PreparedGraph`], so the whole sweep condenses the workload once
//! and the reported build times isolate each technique's own labeling
//! phase.
//!
//! ```text
//! cargo run --release -p reach-bench --bin sweep -- [--n 20000]
//! ```

use reach_bench::queries::query_mix;
use reach_bench::registry::{build_plain_with_report, BuildOpts};
use reach_bench::report::{fmt_bytes, fmt_duration, timed, Table};
use reach_bench::workloads::Shape;
use reach_core::tol::{OrderStrategy, Tol};
use reach_core::ReachIndex;
use reach_graph::PreparedGraph;
use std::sync::Arc;

fn count_hits(
    idx: &dyn ReachIndex,
    mix: &reach_bench::queries::QueryMix,
) -> (usize, std::time::Duration) {
    timed(|| {
        let mut hits = 0;
        for &(s, t) in &mix.pairs {
            if idx.query(s, t) {
                hits += 1;
            }
        }
        hits
    })
}

/// Builds registry entry `name` under `opts` on the shared prepared
/// graph and appends a row with its labeling time and query speed.
fn sweep_spec(
    table: &mut Table,
    label: String,
    name: &str,
    prepared: &PreparedGraph,
    opts: &BuildOpts,
    mix: &reach_bench::queries::QueryMix,
) {
    let (idx, report) = build_plain_with_report(name, prepared, opts);
    let (hits, query_time) = count_hits(idx.as_ref(), mix);
    assert_eq!(hits, mix.positives);
    table.row([
        label,
        fmt_duration(report.label),
        idx.size_entries().to_string(),
        fmt_bytes(idx.size_bytes()),
        fmt_duration(query_time / mix.pairs.len() as u32),
    ]);
}

/// A configuration outside the registry's knobs (TOL vertex orders),
/// built directly.
fn sweep_raw<I: ReachIndex>(
    table: &mut Table,
    label: String,
    build: impl FnOnce() -> I,
    mix: &reach_bench::queries::QueryMix,
) {
    let (idx, build_time) = timed(build);
    let (hits, query_time) = count_hits(&idx, mix);
    assert_eq!(hits, mix.positives);
    table.row([
        label,
        fmt_duration(build_time),
        idx.size_entries().to_string(),
        fmt_bytes(idx.size_bytes()),
        fmt_duration(query_time / mix.pairs.len() as u32),
    ]);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 20_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n takes a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    let graph = Arc::new(Shape::Sparse.generate(n, 31));
    let prepared = PreparedGraph::new_shared(Arc::clone(&graph));
    let mix = query_mix(&graph, 2_000, 0.3, 13);
    println!(
        "sweep workload: sparse-dag n={} m={} ({} queries, {} reachable)\n",
        graph.num_vertices(),
        graph.num_edges(),
        mix.pairs.len(),
        mix.positives
    );

    let defaults = BuildOpts::default();
    let mut table = Table::new(["configuration", "build", "entries", "bytes", "avg query"]);
    for k in [1, 2, 4, 8] {
        let opts = BuildOpts {
            grail_k: k,
            ..defaults.clone()
        };
        sweep_spec(
            &mut table,
            format!("GRAIL k={k}"),
            "GRAIL",
            &prepared,
            &opts,
            &mix,
        );
    }
    for budget in [1, 2, 4, 8] {
        let opts = BuildOpts {
            ferrari_budget: budget,
            ..defaults.clone()
        };
        sweep_spec(
            &mut table,
            format!("Ferrari budget={budget}"),
            "Ferrari",
            &prepared,
            &opts,
            &mix,
        );
    }
    for k in [2, 8, 32] {
        let opts = BuildOpts {
            ip_k: k,
            ..defaults.clone()
        };
        sweep_spec(
            &mut table,
            format!("IP k={k}"),
            "IP",
            &prepared,
            &opts,
            &mix,
        );
    }
    for bits in [64, 256, 1024] {
        let opts = BuildOpts {
            bfl_bits: bits,
            ..defaults.clone()
        };
        sweep_spec(
            &mut table,
            format!("BFL bits={bits}"),
            "BFL",
            &prepared,
            &opts,
            &mix,
        );
    }
    for landmarks in [4, 16, 64] {
        let opts = BuildOpts {
            landmarks,
            ..defaults.clone()
        };
        sweep_spec(
            &mut table,
            format!("HL landmarks={landmarks}"),
            "HL",
            &prepared,
            &opts,
            &mix,
        );
    }
    for (name, strategy) in [
        ("degree", OrderStrategy::DegreeDescending),
        ("by-id", OrderStrategy::ById),
    ] {
        sweep_raw(
            &mut table,
            format!("TOL order={name}"),
            || Tol::build(&graph, strategy),
            &mix,
        );
    }
    // TFL answers in the ID space of the DAG it is built on, so give
    // it the workload graph directly (it is a DAG), not the renumbered
    // condensation
    let dag = reach_graph::Dag::new_shared(Arc::clone(&graph)).expect("sweep workload is a DAG");
    sweep_raw(
        &mut table,
        "TFL (topological order)".to_string(),
        || reach_core::tol::build_tfl(&dag),
        &mix,
    );
    println!("{}", table.render());
    println!(
        "condensation runs over the whole sweep: {} (shared artifact)",
        prepared.condensation_runs()
    );
    assert!(prepared.condensation_runs() <= 1);
}
