//! Regenerates **Table 2** of the survey: the taxonomy of
//! path-constrained reachability indexes, plus (with `--empirical`)
//! measured build/size/query comparisons for the alternation (LCR)
//! family and the concatenation (RLC) index.
//!
//! ```text
//! cargo run --release -p reach-bench --bin table2 -- [--empirical] [--n 1000]
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_bench::registry::{build_lcr, lcr_feasible, lcr_names};
use reach_bench::report::{fmt_bytes, fmt_duration, timed, Table};
use reach_bench::workloads::Shape;
use reach_core::index::{Completeness, Dynamism, InputClass};
use reach_graph::{fixtures, Label, LabelSet, VertexId};
use reach_labeled::online::{lcr_bfs, rlc_bfs};
use reach_labeled::rlc::RlcIndex;
use reach_labeled::{ConstraintClass, LcrFramework, RlcIndexApi};
use std::sync::Arc;

fn framework_name(f: LcrFramework) -> &'static str {
    match f {
        LcrFramework::TreeCover => "Tree cover",
        LcrFramework::Gtc => "GTC",
        LcrFramework::TwoHop => "2-Hop",
    }
}

fn print_matrix() {
    println!("Table 2: path-constrained reachability indexes (implemented taxonomy)\n");
    let g = Arc::new(fixtures::figure1b());
    let mut table = Table::new([
        "Indexing Technique",
        "Framework",
        "Path Constraint",
        "Index type",
        "Input",
        "Dynamic",
    ]);
    let mut metas: Vec<reach_labeled::LabeledIndexMeta> = lcr_names()
        .iter()
        .filter(|&&n| n != "GTC")
        .map(|name| build_lcr(name, &g).meta())
        .collect();
    metas.push(RlcIndex::build(&g, 2).meta());
    for m in metas {
        table.row([
            format!("{} {}", m.name, m.citation),
            framework_name(m.framework).to_string(),
            match m.constraint {
                ConstraintClass::Alternation => "Alternation".to_string(),
                ConstraintClass::Concatenation => "Concatenation".to_string(),
            },
            match m.completeness {
                Completeness::Complete => "Complete".to_string(),
                Completeness::Partial => "Partial".to_string(),
            },
            match m.input {
                InputClass::Dag => "DAG".to_string(),
                InputClass::General => "General".to_string(),
            },
            match m.dynamism {
                Dynamism::Static => "No".to_string(),
                Dynamism::InsertOnly => "Insert".to_string(),
                Dynamism::InsertDelete => "Yes".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
}

/// LCR query workload: pairs plus random alternation constraints.
fn lcr_queries(
    g: &reach_graph::LabeledGraph,
    count: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId, LabelSet)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = g.num_vertices() as u32;
    let k = g.num_labels();
    (0..count)
        .map(|_| {
            let s = VertexId(rng.random_range(0..n));
            let mut t = VertexId(rng.random_range(0..n - 1));
            if t >= s {
                t = VertexId(t.0 + 1);
            }
            // constraints with 1..k labels, biased toward small sets
            let size = 1 + rng.random_range(0..k);
            let mut set = LabelSet::EMPTY;
            for _ in 0..size {
                set = set.insert(Label(rng.random_range(0..k as u8)));
            }
            (s, t, set)
        })
        .collect()
}

fn empirical(n: usize) {
    for shape in [Shape::Sparse, Shape::PowerLaw, Shape::Cyclic] {
        let g = Arc::new(shape.generate_labeled(n, 8, 42));
        let queries = lcr_queries(&g, 1_000, 9);
        let expected: Vec<bool> = queries
            .iter()
            .map(|&(s, t, allowed)| lcr_bfs(&g, s, t, allowed))
            .collect();
        let positives = expected.iter().filter(|&&b| b).count();
        println!(
            "\nworkload {} (n={}, m={}, |L|=8, {} LCR queries, {} satisfiable)",
            shape.name(),
            g.num_vertices(),
            g.num_edges(),
            queries.len(),
            positives
        );
        let mut table = Table::new([
            "Technique",
            "Build",
            "Entries",
            "Bytes",
            "Query(total)",
            "Query(avg)",
        ]);
        // the online baseline first
        let (_, online_total) = timed(|| {
            for &(s, t, allowed) in &queries {
                std::hint::black_box(lcr_bfs(&g, s, t, allowed));
            }
        });
        table.row([
            "online label-BFS".to_string(),
            "-".to_string(),
            "0".to_string(),
            "0B".to_string(),
            fmt_duration(online_total),
            fmt_duration(online_total / queries.len() as u32),
        ]);
        for name in lcr_names() {
            if !lcr_feasible(name, n) {
                table.row([
                    name.to_string(),
                    "(skipped: infeasible at this size)".into(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
            let (idx, build) = timed(|| build_lcr(name, &g));
            let (answers, q) = timed(|| {
                queries
                    .iter()
                    .map(|&(s, t, allowed)| idx.query(s, t, allowed))
                    .collect::<Vec<bool>>()
            });
            assert_eq!(answers, expected, "{name} answered a query wrongly");
            table.row([
                name.to_string(),
                fmt_duration(build),
                idx.size_entries().to_string(),
                fmt_bytes(idx.size_bytes()),
                fmt_duration(q),
                fmt_duration(q / queries.len() as u32),
            ]);
        }
        println!("{}", table.render());
    }

    // RLC: the concatenation-based index vs the online product BFS
    let n_rlc = n.min(300);
    let g = Arc::new(Shape::Sparse.generate_labeled(n_rlc, 4, 43));
    let mut rng = SmallRng::seed_from_u64(17);
    let units: Vec<Vec<Label>> = (0..200)
        .map(|_| {
            let len = 1 + rng.random_range(0..2);
            (0..len).map(|_| Label(rng.random_range(0..4u8))).collect()
        })
        .collect();
    let pairs: Vec<(VertexId, VertexId)> = (0..units.len())
        .map(|_| {
            let s = VertexId(rng.random_range(0..n_rlc as u32));
            let mut t = VertexId(rng.random_range(0..n_rlc as u32 - 1));
            if t >= s {
                t = VertexId(t.0 + 1);
            }
            (s, t)
        })
        .collect();
    println!(
        "\nRLC workload sparse-dag (n={}, |L|=4, {} concatenation queries, kmax=2)",
        n_rlc,
        units.len()
    );
    let (idx, build) = timed(|| RlcIndex::build(&g, 2));
    let (answers, q) = timed(|| {
        pairs
            .iter()
            .zip(&units)
            .map(|(&(s, t), u)| idx.try_query(s, t, u).unwrap())
            .collect::<Vec<bool>>()
    });
    let (expected, online_total) = timed(|| {
        pairs
            .iter()
            .zip(&units)
            .map(|(&(s, t), u)| rlc_bfs(&g, s, t, u))
            .collect::<Vec<bool>>()
    });
    assert_eq!(answers, expected, "RLC index answered a query wrongly");
    let mut table = Table::new([
        "Technique",
        "Build",
        "Entries",
        "Bytes",
        "Query(total)",
        "Query(avg)",
    ]);
    table.row([
        "online product-BFS".into(),
        "-".to_string(),
        "0".into(),
        "0B".into(),
        fmt_duration(online_total),
        fmt_duration(online_total / pairs.len() as u32),
    ]);
    table.row([
        "RLC index".to_string(),
        fmt_duration(build),
        idx.size_entries().to_string(),
        fmt_bytes(idx.size_bytes()),
        fmt_duration(q),
        fmt_duration(q / pairs.len() as u32),
    ]);
    println!("{}", table.render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run_empirical = false;
    let mut n = 1_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--empirical" => run_empirical = true,
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n takes a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    print_matrix();
    if run_empirical {
        empirical(n);
    } else {
        println!("(run with --empirical [--n N] for the measured comparison)");
    }
}
