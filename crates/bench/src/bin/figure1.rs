//! Replays every worked example of the survey's **Figure 1** against
//! the implemented indexes, printing each claim and its verification.
//!
//! ```text
//! cargo run -p reach-bench --bin figure1
//! ```

use reach_bench::registry::{build_lcr, build_plain, lcr_names, plain_names};
use reach_graph::fixtures::{
    self, label_name, vertex_name, A, B, D, FOLLOWS, FRIEND_OF, G, H, L, M, WORKS_FOR,
};
use reach_graph::LabelSet;
use reach_labeled::online::rlc_bfs;
use reach_labeled::rlc::RlcIndex;
use reach_labeled::zou::single_source_gtc;
use reach_labeled::RlcIndexApi;
use std::sync::Arc;

fn main() {
    let plain = Arc::new(fixtures::figure1a());
    let labeled = Arc::new(fixtures::figure1b());

    println!(
        "Figure 1 fixtures: {} vertices, {} labeled edges",
        plain.num_vertices(),
        labeled.num_edges()
    );
    for (u, l, v) in labeled.edges() {
        println!(
            "  {} -{}-> {}",
            vertex_name(u),
            label_name(l),
            vertex_name(v)
        );
    }

    // §2.1: Qr(A,G) = true because of the s-t path (A, D, H, G)
    println!("\n§2.1  Qr(A,G) on the plain graph:");
    assert!(plain.has_edge(A, D) && plain.has_edge(D, H) && plain.has_edge(H, G));
    println!("  witness path (A, D, H, G) exists in the fixture ✓");
    for name in plain_names() {
        let idx = build_plain(name, &plain);
        assert!(idx.query(A, G), "{name}");
    }
    println!("  all {} plain indexes answer true ✓", plain_names().len());

    // §2.2: Qr(A, G, (friendOf ∪ follows)*) = false
    println!("\n§2.2  Qr(A, G, (friendOf ∪ follows)*):");
    let constraint = LabelSet::from_labels([FRIEND_OF, FOLLOWS]);
    for name in lcr_names() {
        let idx = build_lcr(name, &labeled);
        assert!(!idx.query(A, G, constraint), "{name}");
    }
    println!("  all {} LCR indexes answer false ✓", lcr_names().len());

    // §4.1: SPLS examples
    println!("\n§4.1  sufficient path-label sets:");
    let from_l = single_source_gtc(&labeled, L);
    assert_eq!(from_l[M.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
    println!("  SPLS(L→M) = {{worksFor}} (p1 dominates p2) ✓");
    let from_a = single_source_gtc(&labeled, A);
    assert_eq!(
        from_a[M.index()].sets(),
        &[LabelSet::from_labels([FOLLOWS, WORKS_FOR])]
    );
    assert_eq!(from_a[L.index()].sets(), &[LabelSet::singleton(FOLLOWS)]);
    println!("  SPLS(A→M) = {{follows, worksFor}} = SPLS(A→L) × SPLS(L→M) ✓");

    // §4.1.2: the Dijkstra-like expansion example
    println!("\n§4.1.2  label-count Dijkstra from L:");
    assert_eq!(from_l[H.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
    println!("  p3 = (L,worksFor,C,worksFor,H) with 1 distinct label wins over");
    println!("  p4 = (L,worksFor,D,friendOf,H) with 2 ✓");

    // §4.2: the MR example
    println!("\n§4.2  Qr(L, B, (worksFor · friendOf)*):");
    assert!(rlc_bfs(&labeled, L, B, &[WORKS_FOR, FRIEND_OF]));
    let rlc = RlcIndex::build(&labeled, 2);
    assert_eq!(rlc.try_query(L, B, &[WORKS_FOR, FRIEND_OF]), Some(true));
    println!("  MR (worksFor, friendOf) found by both the online product-BFS");
    println!("  and the RLC index ✓");

    println!("\nAll Figure-1 claims reproduced.");
}
