//! Regenerates **Table 1** of the survey: the taxonomy of plain
//! reachability indexes, plus (with `--empirical`) the measured
//! consequences of each classification — build time, index size, and
//! query time per technique and workload shape.
//!
//! ```text
//! cargo run --release -p reach-bench --bin table1 -- [--empirical] [--n 5000]
//! ```

use reach_bench::queries::query_mix;
use reach_bench::registry::{build_plain_with_report, plain_feasible, plain_names, BuildOpts};
use reach_bench::report::{fmt_bytes, fmt_duration, timed, Table};
use reach_bench::workloads::Shape;
use reach_core::{Completeness, Dynamism, Framework, InputClass};
use reach_graph::PreparedGraph;
use std::sync::Arc;

fn framework_name(f: Framework) -> &'static str {
    match f {
        Framework::TransitiveClosure => "TC",
        Framework::TreeCover => "Tree cover",
        Framework::TwoHop => "2-Hop",
        Framework::ApproximateTc => "Approximate TC",
        Framework::Other => "-",
    }
}

fn print_matrix() {
    println!("Table 1: plain reachability indexes (implemented taxonomy)\n");
    let mut table = Table::new([
        "Indexing Technique",
        "Framework",
        "Index Type",
        "Input",
        "Dynamic",
    ]);
    for name in plain_names() {
        if name.starts_with("online") {
            continue;
        }
        let m = reach_bench::registry::plain_native_meta(name);
        table.row([
            format!("{} {}", m.name, m.citation),
            framework_name(m.framework).to_string(),
            match m.completeness {
                Completeness::Complete => "Complete".to_string(),
                Completeness::Partial => "Partial".to_string(),
            },
            match m.input {
                InputClass::Dag => "DAG".to_string(),
                InputClass::General => "General".to_string(),
            },
            match m.dynamism {
                Dynamism::Static => "No".to_string(),
                Dynamism::InsertOnly => "Insert".to_string(),
                Dynamism::InsertDelete => "Yes".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
    println!("Substitutions vs. the paper's Table 1 (see DESIGN.md §2):");
    println!("  - Path-tree [24,27] and 3-Hop [26] are represented by Chain cover [20].");
    println!("  - U2-hop [7] and Ralf et al. [39] (incremental 2-hop) are represented");
    println!("    by TOL's insert/delete maintenance, which supersedes them [55].");
    println!("  - Path-hop [8] (tree-intermediated 3-hop) is not separately implemented.");
}

fn empirical(n: usize) {
    let opts = BuildOpts::default();
    for shape in [Shape::Sparse, Shape::Dense, Shape::PowerLaw, Shape::Cyclic] {
        let g = Arc::new(shape.generate(n, 42));
        let mix = query_mix(&g, 2_000, 0.5, 7);
        println!(
            "\nworkload {} (n={}, m={}, {} queries, {} reachable)",
            shape.name(),
            g.num_vertices(),
            g.num_edges(),
            mix.pairs.len(),
            mix.positives
        );
        // one PreparedGraph per workload: the whole sweep condenses once
        let prepared = PreparedGraph::new_shared(Arc::clone(&g));
        let mut table = Table::new([
            "Technique",
            "Build",
            "Condense",
            "Label",
            "Entries",
            "Bytes",
            "Query(total)",
            "Query(avg)",
        ]);
        for name in plain_names() {
            if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
                table.row([
                    name.to_string(),
                    "(skipped: infeasible at this size)".into(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
            let (idx, report) = build_plain_with_report(name, &prepared, &opts);
            let (hits, q) = timed(|| {
                let mut hits = 0usize;
                for &(s, t) in &mix.pairs {
                    if idx.query(s, t) {
                        hits += 1;
                    }
                }
                hits
            });
            assert_eq!(hits, mix.positives, "{name} answered a query wrongly");
            table.row([
                name.to_string(),
                fmt_duration(report.total),
                if report.reused_condensation() {
                    "shared".to_string()
                } else {
                    fmt_duration(report.condense + report.order)
                },
                fmt_duration(report.label),
                idx.size_entries().to_string(),
                fmt_bytes(idx.size_bytes()),
                fmt_duration(q),
                fmt_duration(q / mix.pairs.len() as u32),
            ]);
        }
        println!("{}", table.render());
        assert!(
            prepared.condensation_runs() <= 1,
            "the sweep must share one condensation"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut run_empirical = false;
    let mut n = 5_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--empirical" => run_empirical = true,
            "--n" => {
                i += 1;
                n = args[i].parse().expect("--n takes a number");
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    print_matrix();
    if run_empirical {
        empirical(n);
    } else {
        println!("\n(run with --empirical [--n N] for the measured comparison)");
    }
}
