//! Reproduces the survey's qualitative performance claims (§2.3 and
//! §5) on synthetic workloads.
//!
//! ```text
//! cargo run --release -p reach-bench --bin claims -- [--baseline] [--speedup]
//!     [--scaling [--full]] [--negatives] [--labeled-cost]   (default: all)
//! ```

use reach_bench::queries::query_mix;
use reach_bench::registry::{build_lcr, build_plain};
use reach_bench::report::{fmt_bytes, fmt_duration, timed, Table};
use reach_bench::workloads::Shape;
use reach_graph::traverse::{bfs_reaches_counted, VisitMap};
use std::sync::Arc;

/// §2.3: "online traversal visits a large portion of the graph" and
/// "the high computation and storage costs make TC infeasible".
fn baseline() {
    println!("== §2.3: why indexes exist ==\n");
    let mut table = Table::new([
        "workload",
        "n",
        "avg visited (negative queries)",
        "fraction",
        "TC bytes (n²/8)",
    ]);
    for shape in [Shape::Sparse, Shape::Dense, Shape::PowerLaw] {
        let n = 20_000;
        let g = shape.generate(n, 1);
        let mix = query_mix(&g, 200, 0.0, 2);
        let mut vm = VisitMap::new(g.num_vertices());
        let mut visited = 0usize;
        for &(s, t) in &mix.pairs {
            let (_, stats) = bfs_reaches_counted(&g, s, t, &mut vm);
            visited += stats.visited;
        }
        let avg = visited as f64 / mix.pairs.len() as f64;
        table.row([
            shape.name().to_string(),
            n.to_string(),
            format!("{avg:.0}"),
            format!("{:.1}%", 100.0 * avg / n as f64),
            fmt_bytes(n * n / 8),
        ]);
    }
    println!("{}", table.render());
    println!("A failed (unreachable) BFS visits the whole forward closure; the");
    println!("materialized TC needs quadratic space — both survey observations.\n");
}

/// §5: "reachability processing using these indexes can be an order of
/// magnitude faster than using only graph traversal".
fn speedup() {
    println!("== §5: index-guided queries vs pure traversal ==\n");
    let n = 50_000;
    let mut table = Table::new(["workload", "technique", "avg query", "speedup vs BFS"]);
    for shape in [Shape::Sparse, Shape::PowerLaw, Shape::Deep] {
        let g = Arc::new(shape.generate(n, 3));
        let mix = query_mix(&g, 1_000, 0.3, 4);
        let bfs = build_plain("online-BFS", &g);
        let (_, bfs_time) = timed(|| {
            for &(s, t) in &mix.pairs {
                std::hint::black_box(bfs.query(s, t));
            }
        });
        for name in ["GRAIL", "BFL", "IP", "PReaCH", "PLL"] {
            let idx = build_plain(name, &g);
            let (_, t) = timed(|| {
                for &(s, t) in &mix.pairs {
                    std::hint::black_box(idx.query(s, t));
                }
            });
            table.row([
                shape.name().to_string(),
                name.to_string(),
                fmt_duration(t / mix.pairs.len() as u32),
                format!("{:.1}x", bfs_time.as_secs_f64() / t.as_secs_f64()),
            ]);
        }
        table.row([
            shape.name().to_string(),
            "online-BFS".to_string(),
            fmt_duration(bfs_time / mix.pairs.len() as u32),
            "1.0x".to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// §5: "BFL can be built in a few seconds on graphs with millions of
/// vertices, with an index size of only a few hundred megabytes".
fn scaling(full: bool) {
    println!("== §5: approximate-TC build scaling ==\n");
    let sizes: &[usize] = if full {
        &[100_000, 500_000, 2_000_000]
    } else {
        &[50_000, 100_000, 200_000]
    };
    let mut table = Table::new(["n", "m", "technique", "build", "index bytes"]);
    for &n in sizes {
        let g = Arc::new(Shape::PowerLaw.generate(n, 5));
        for name in ["BFL", "IP", "GRAIL", "Feline", "PReaCH"] {
            let (idx, build) = timed(|| build_plain(name, &g));
            table.row([
                n.to_string(),
                g.num_edges().to_string(),
                name.to_string(),
                fmt_duration(build),
                fmt_bytes(idx.size_bytes()),
            ]);
        }
    }
    println!("{}", table.render());
    if !full {
        println!("(pass --full for the 2M-vertex configuration)\n");
    }
}

/// §5: partial indexes *without false negatives* dominate on
/// unreachable-heavy workloads; a no-false-positive partial (GRIPP)
/// cannot stop early on negatives.
fn negatives() {
    println!("== §5: the value of no-false-negative lookups ==\n");
    let n = 30_000;
    let g = Arc::new(Shape::Sparse.generate(n, 8));
    let mut table = Table::new(["negative share", "technique", "avg query"]);
    for share in [0.1, 0.5, 0.9] {
        let mix = query_mix(&g, 600, 1.0 - share, 11);
        for name in ["GRAIL", "BFL", "IP", "Feline", "GRIPP", "online-BFS"] {
            let idx = build_plain(name, &g);
            let (_, t) = timed(|| {
                for &(s, t) in &mix.pairs {
                    std::hint::black_box(idx.query(s, t));
                }
            });
            table.row([
                format!("{:.0}%", share * 100.0),
                name.to_string(),
                fmt_duration(t / mix.pairs.len() as u32),
            ]);
        }
    }
    println!("{}", table.render());
    println!("GRAIL/BFL/IP/Feline reject unreachable pairs by lookup; GRIPP's");
    println!("positive-only lookups must traverse on every negative — the gap");
    println!("grows with the negative share, §5's core argument.\n");
}

/// §5: "the index construction cost of path-constrained reachability
/// indexes is high" compared to plain indexes on the same graph.
fn labeled_cost() {
    println!("== §5: plain vs path-constrained construction cost ==\n");
    let n = 1_000;
    let g = Arc::new(Shape::Sparse.generate_labeled(n, 8, 21));
    let plain = Arc::new(g.to_digraph());
    let mut table = Table::new(["technique", "kind", "build", "entries"]);
    for name in ["PLL", "TOL", "BFL", "GRAIL"] {
        let (idx, build) = timed(|| build_plain(name, &plain));
        table.row([
            name.to_string(),
            "plain".to_string(),
            fmt_duration(build),
            idx.size_entries().to_string(),
        ]);
    }
    for name in ["P2H+", "DLCR", "Landmark index", "Jin et al.", "Zou et al."] {
        let (idx, build) = timed(|| build_lcr(name, &g));
        table.row([
            name.to_string(),
            "LCR".to_string(),
            fmt_duration(build),
            idx.size_entries().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Same graph (n={n}, |L|=8): the label-set dimension multiplies both");
    println!("construction time and entry counts — §5's cost observation.\n");
}

/// §5 open challenge: "the parallel computation of indexes … is also
/// worth exploring" — scoped-thread builders vs their sequential
/// counterparts, with identical outputs.
fn parallel() {
    use reach_core::hl::Hl;
    use reach_core::parallel::{build_grail_parallel, build_hl_parallel, build_tol_parallel};
    use reach_core::tol::{OrderStrategy, Tol};
    use reach_graph::Dag;

    println!("== §5 open challenge: parallel index construction ==\n");
    let n = 200_000;
    let dag = Dag::new(Shape::PowerLaw.generate(n, 9)).expect("power-law is acyclic");
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut table = Table::new([
        "technique",
        "sequential",
        &format!("parallel ({threads} threads)"),
        "speedup",
    ]);

    let (_, seq) = timed(|| reach_core::grail::build_grail(&dag, 8, 3));
    let (_, par) = timed(|| build_grail_parallel(&dag, 8, 3, threads));
    table.row([
        "GRAIL k=8".to_string(),
        fmt_duration(seq),
        fmt_duration(par),
        format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
    ]);

    let (_, seq) = timed(|| Hl::build(&dag, 32));
    let (_, par) = timed(|| build_hl_parallel(&dag, 32, threads));
    table.row([
        "HL 32 landmarks".to_string(),
        fmt_duration(seq),
        fmt_duration(par),
        format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
    ]);

    let small = Dag::new(Shape::Sparse.generate(20_000, 10)).unwrap();
    let mut order: Vec<reach_graph::VertexId> = small.vertices().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(small.degree(v)), v.0));
    let (_, seq) = timed(|| Tol::build(small.graph(), OrderStrategy::DegreeDescending));
    let (_, par) = timed(|| build_tol_parallel(small.graph(), &order, threads));
    table.row([
        "TOL canonical (n=20k)".to_string(),
        fmt_duration(seq),
        fmt_duration(par),
        format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
    ]);
    println!("{}", table.render());
    println!("Outputs are bit-identical to the sequential builders (tested in");
    println!("reach-core::parallel); the speedup is pure thread-level parallelism.\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let explicit: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--full")
        .collect();
    let all = explicit.is_empty();
    if all || explicit.contains(&"--baseline") {
        baseline();
    }
    if all || explicit.contains(&"--speedup") {
        speedup();
    }
    if all || explicit.contains(&"--scaling") {
        scaling(full);
    }
    if all || explicit.contains(&"--negatives") {
        negatives();
    }
    if all || explicit.contains(&"--labeled-cost") {
        labeled_cost();
    }
    if all || explicit.contains(&"--parallel") {
        parallel();
    }
}
