//! # reach-bench
//!
//! The experiment harness: everything needed to regenerate the
//! survey's Table 1, Table 2, Figure 1 worked examples, and the §5
//! qualitative claims, over synthetic workloads (see DESIGN.md §4 for
//! the experiment-by-experiment index).
//!
//! * [`registry`] — uniform construction of every plain and every
//!   path-constrained index behind trait objects;
//! * [`workloads`] — the named graph shapes the comparisons run on;
//! * [`queries`] — query mixes with a controlled reachable share
//!   (§5's argument revolves around unreachable-heavy mixes);
//! * [`report`] — fixed-width table printing and wall-clock helpers.

#![forbid(unsafe_code)]

pub mod queries;
pub mod registry;
pub mod report;
pub mod workloads;
