//! A prototype index for *general* regular path constraints — §5's
//! second open challenge (*"It will be of great interest to have one
//! indexing technique for general path constraints and thus the
//! entire fragment of regular path queries"*).
//!
//! The construction is the classical product reduction: reachability
//! under a regular constraint `α` on `G` equals plain reachability on
//! the product graph `G × NFA(α)`. Any plain index then serves; this
//! prototype uses PLL, so after the (per-constraint) build, queries
//! are microsecond label intersections for *any* `α` — at the cost of
//! an `n·|states|` blow-up that explains why the challenge is open:
//! the index answers one constraint, not the whole query class.

use crate::constraint::{Ast, Nfa};
use reach_core::pll::Pll;
use reach_core::ReachIndex;
use reach_graph::{DiGraphBuilder, LabeledGraph, VertexId};

/// A per-constraint RPQ index: PLL over the `G × NFA(α)` product.
pub struct RpqIndex {
    nfa: Nfa,
    num_states: usize,
    /// start states (ε-closed) and whether ε itself is accepted
    start_states: Vec<u32>,
    accepts_empty: bool,
    pll: Pll,
}

impl RpqIndex {
    /// Builds the index for the constraint `ast` over `g`.
    pub fn build(g: &LabeledGraph, ast: &Ast) -> Self {
        let nfa = Nfa::compile(ast);
        let ns = nfa.num_states();
        let n = g.num_vertices();
        // product vertex (v, q) = v * ns + q; edges follow label steps
        // with ε-closure folded into the targets
        let mut b = DiGraphBuilder::new(n * ns);
        for (u, l, v) in g.edges() {
            for q in 0..ns as u32 {
                let mut targets: Vec<u32> = nfa.step(q, l).collect();
                nfa.epsilon_closure(&mut targets);
                for qq in targets {
                    b.add_edge(
                        VertexId((u.index() * ns) as u32 + q),
                        VertexId((v.index() * ns) as u32 + qq),
                    );
                }
            }
        }
        let mut start_states = vec![nfa.start()];
        nfa.epsilon_closure(&mut start_states);
        let accepts_empty = start_states.iter().any(|&q| nfa.is_accept(q));
        RpqIndex {
            num_states: ns,
            start_states,
            accepts_empty,
            pll: Pll::build(&b.build()),
            nfa,
        }
    }

    /// Whether an `s`–`t` path satisfying the constraint exists
    /// (the empty path counts only if the constraint accepts ε).
    pub fn query(&self, s: VertexId, t: VertexId) -> bool {
        if s == t && self.accepts_empty {
            return true;
        }
        let ns = self.num_states;
        for &qs in &self.start_states {
            for qa in 0..ns as u32 {
                if !self.nfa.is_accept(qa) {
                    continue;
                }
                let from = VertexId((s.index() * ns) as u32 + qs);
                let to = VertexId((t.index() * ns) as u32 + qa);
                if from != to && self.pll.query(from, to) {
                    return true;
                }
            }
        }
        false
    }

    /// Size of the underlying product labeling (exposes the blow-up
    /// that makes the general-constraint challenge hard).
    pub fn size_entries(&self) -> usize {
        self.pll.size_entries()
    }

    /// Number of NFA states the product was built over.
    pub fn num_states(&self) -> usize {
        self.num_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse;
    use crate::online::rpq_bfs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    const ALPHABET: &[&str] = &["friendOf", "follows", "worksFor"];

    fn check(g: &LabeledGraph, expr: &str, alphabet: &[&str]) {
        let ast = parse(expr, alphabet).unwrap();
        let idx = RpqIndex::build(g, &ast);
        let nfa = Nfa::compile(&ast);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    idx.query(s, t),
                    rpq_bfs(g, s, t, &nfa),
                    "{expr} at {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn matches_online_on_figure1_across_fragments() {
        let g = fixtures::figure1b();
        // alternation, concatenation, and general constraints all work
        check(&g, "(friendOf ∪ follows)*", ALPHABET);
        check(&g, "(worksFor · friendOf)*", ALPHABET);
        check(&g, "follows · worksFor+", ALPHABET);
        check(&g, "worksFor* · friendOf · follows*", ALPHABET);
        check(&g, "friendOf", ALPHABET);
    }

    #[test]
    fn matches_online_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(501);
        let g = random_labeled_digraph(25, 70, 3, LabelDistribution::Uniform, &mut rng);
        for expr in ["(0 ∪ 1)*", "0 · (1 ∪ 2)* · 0", "(0 · 1)+ ∪ 2*"] {
            check(&g, expr, &[]);
        }
    }

    #[test]
    fn empty_word_semantics() {
        let g = fixtures::figure1b();
        let star = RpqIndex::build(&g, &parse("worksFor*", ALPHABET).unwrap());
        assert!(star.query(fixtures::A, fixtures::A), "ε ∈ L(worksFor*)");
        let single = RpqIndex::build(&g, &parse("worksFor", ALPHABET).unwrap());
        assert!(!single.query(fixtures::A, fixtures::A), "ε ∉ L(worksFor)");
    }

    #[test]
    fn product_blowup_is_visible() {
        let g = fixtures::figure1b();
        let small = RpqIndex::build(&g, &parse("friendOf*", ALPHABET).unwrap());
        let large = RpqIndex::build(
            &g,
            &parse(
                "(friendOf · follows · worksFor)+ ∪ (follows · friendOf)*",
                ALPHABET,
            )
            .unwrap(),
        );
        assert!(large.num_states() > small.num_states());
        assert!(large.size_entries() >= small.size_entries());
    }
}
