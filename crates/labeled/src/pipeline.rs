//! The labeled (LCR) side of the unified builder registry.
//!
//! Instantiates `reach-core`'s [`BuilderSpec`] with labeled-graph
//! input and Table-2 metadata, so the bench harness and CLI dispatch
//! plain and path-constrained techniques through one registry shape.

use crate::chen::ChenIndex;
use crate::dlcr::Dlcr;
use crate::gtc::GtcIndex;
use crate::jin::JinIndex;
use crate::landmark::LandmarkIndex;
use crate::lcr::{LabeledIndexMeta, LcrIndex};
use crate::p2h::P2hPlus;
use crate::zou::ZouIndex;
use reach_core::pipeline::{defaults, BuildOpts, BuilderSpec};
use reach_graph::{fixtures, LabeledGraph};
use std::sync::Arc;

/// The LCR instantiation of the registry entry type.
pub type LcrSpec = BuilderSpec<Arc<LabeledGraph>, dyn LcrIndex, LabeledIndexMeta>;

fn fig() -> Arc<LabeledGraph> {
    Arc::new(fixtures::figure1b())
}

/// Every alternation-based (LCR) technique, in Table-2 order.
pub static LCR_REGISTRY: &[LcrSpec] = &[
    BuilderSpec {
        name: "Jin et al.",
        meta: || JinIndex::build(&fig()).meta(),
        feasible: |n, _| n <= 5_000,
        build: |g, _| Box::new(JinIndex::build(g)),
    },
    BuilderSpec {
        name: "Chen et al.",
        meta: || ChenIndex::build(&fig()).meta(),
        feasible: |_, _| true,
        build: |g, _| Box::new(ChenIndex::build(g)),
    },
    BuilderSpec {
        name: "Zou et al.",
        meta: || ZouIndex::build(&fig()).meta(),
        feasible: |n, _| n <= 2_000,
        build: |g, _| Box::new(ZouIndex::build(g)),
    },
    BuilderSpec {
        name: "Landmark index",
        meta: || LandmarkIndex::build(fig(), defaults::LANDMARKS).meta(),
        feasible: |_, _| true,
        build: |g, o| Box::new(LandmarkIndex::build(Arc::clone(g), o.landmarks)),
    },
    BuilderSpec {
        name: "P2H+",
        meta: || P2hPlus::build(&fig()).meta(),
        feasible: |_, _| true,
        build: |g, _| Box::new(P2hPlus::build(g)),
    },
    BuilderSpec {
        name: "DLCR",
        meta: || Dlcr::build(&fig()).meta(),
        feasible: |_, _| true,
        build: |g, _| Box::new(Dlcr::build(g)),
    },
    BuilderSpec {
        name: "GTC",
        meta: || GtcIndex::build(&fig()).meta(),
        feasible: |n, _| n <= 2_000,
        build: |g, _| Box::new(GtcIndex::build(g)),
    },
];

/// Looks up an LCR registry entry by name.
pub fn lcr_spec(name: &str) -> Option<&'static LcrSpec> {
    LCR_REGISTRY.iter().find(|s| s.name == name)
}

/// Every LCR technique name, in Table-2 (registry) order.
pub fn lcr_names() -> Vec<&'static str> {
    LCR_REGISTRY.iter().map(|s| s.name).collect()
}

/// Whether building the named LCR index is practical at size `n`.
/// Unknown names are not feasible.
pub fn lcr_feasible(name: &str, n: usize) -> bool {
    lcr_spec(name).is_some_and(|s| (s.feasible)(n, 0))
}

/// Builds the named LCR index. Panics on an unknown name.
pub fn build_lcr(name: &str, graph: &Arc<LabeledGraph>, opts: &BuildOpts) -> Box<dyn LcrIndex> {
    let spec = lcr_spec(name).unwrap_or_else(|| panic!("unknown LCR index {name:?}"));
    (spec.build)(graph, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names = lcr_names();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate LCR registry entry");
            }
        }
    }

    #[test]
    fn every_spec_meta_matches_built_index_name() {
        for spec in LCR_REGISTRY {
            assert_eq!((spec.meta)().name, spec.name);
        }
    }

    #[test]
    fn unknown_names_are_infeasible() {
        assert!(!lcr_feasible("no such index", 10));
        assert!(lcr_spec("no such index").is_none());
    }

    #[test]
    fn lcr_trait_objects_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn LcrIndex>();
        assert_send_sync::<Box<dyn LcrIndex>>();
        assert_send_sync::<dyn crate::lcr::RlcIndexApi>();
    }

    #[test]
    fn every_lcr_registry_index_is_shareable_across_threads() {
        use reach_graph::{LabelSet, VertexId};
        let g = fig();
        let opts = BuildOpts::default();
        let nl = g.num_labels();
        let queries: Vec<(VertexId, VertexId, LabelSet)> = g
            .vertices()
            .flat_map(|s| {
                (0..(1u64 << nl))
                    .map(move |mask| (s, VertexId(s.0.wrapping_mul(3) % 9), LabelSet(mask)))
            })
            .collect();
        for spec in LCR_REGISTRY {
            let idx = (spec.build)(&g, &opts);
            let expected: Vec<bool> = queries
                .iter()
                .map(|&(s, t, a)| idx.query(s, t, a))
                .collect();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let idx = &idx;
                    let queries = &queries;
                    let expected = &expected;
                    scope.spawn(move || {
                        let got: Vec<bool> = queries
                            .iter()
                            .map(|&(s, t, a)| idx.query(s, t, a))
                            .collect();
                        assert_eq!(&got, expected, "{} diverged under sharing", spec.name);
                    });
                }
            });
        }
    }
}
