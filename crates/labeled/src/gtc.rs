//! The generalized transitive closure (§2.3): the naive
//! path-constrained baseline.
//!
//! *"GTC extends TC by adding additional information of edge labels …
//! However, the computation of GTC is more challenging than the
//! computation of TC because of the additional distinction of paths
//! according to a large number of possible path constraints.
//! Consequently, computing GTC is also infeasible in practice."*
//!
//! Like the plain TC, it is the perfect oracle: every LCR index in
//! this crate is validated against it (and against the even simpler
//! label-constrained BFS).

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework, LcrIndex,
};
use crate::spls::SplsSet;
use crate::zou::single_source_gtc;
use reach_graph::{LabelSet, LabeledGraph, VertexId};

/// The fully materialized GTC: an SPLS antichain for every ordered
/// pair of vertices. `O(n²)` antichains — the infeasibility the survey
/// points out, kept here as baseline and oracle.
pub struct GtcIndex {
    rows: Vec<Vec<SplsSet>>,
}

impl GtcIndex {
    /// Builds the GTC by running the single-source computation from
    /// every vertex.
    pub fn build(g: &LabeledGraph) -> Self {
        GtcIndex {
            rows: g.vertices().map(|s| single_source_gtc(g, s)).collect(),
        }
    }

    /// The SPLS antichain for the pair `(s, t)`.
    pub fn spls(&self, s: VertexId, t: VertexId) -> &SplsSet {
        &self.rows[s.index()][t.index()]
    }

    /// Total number of reachable ordered pairs (under no constraint).
    pub fn num_pairs(&self) -> usize {
        self.rows
            .iter()
            .map(|row| row.iter().filter(|s| !s.is_empty()).count())
            .sum()
    }
}

impl LcrIndex for GtcIndex {
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        s == t || self.rows[s.index()][t.index()].satisfies(allowed)
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "GTC",
            citation: "[21,52]",
            framework: LcrFramework::Gtc,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.size_entries() + 24 * self.rows.len() * self.rows.len()
    }

    fn size_entries(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|row| row.iter())
            .map(|s| s.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::lcr_bfs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    #[test]
    fn matches_bfs_on_figure1_for_all_constraints() {
        let g = fixtures::figure1b();
        let gtc = GtcIndex::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..8u64 {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        gtc.query(s, t, allowed),
                        lcr_bfs(&g, s, t, allowed),
                        "at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_bfs_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(211);
        for _ in 0..3 {
            let g = random_labeled_digraph(30, 90, 4, LabelDistribution::Zipf, &mut rng);
            let gtc = GtcIndex::build(&g);
            for s in g.vertices() {
                for t in g.vertices() {
                    for mask in [0u64, 1, 3, 9, 15] {
                        let allowed = LabelSet(mask);
                        assert_eq!(gtc.query(s, t, allowed), lcr_bfs(&g, s, t, allowed));
                    }
                }
            }
        }
    }

    #[test]
    fn antichains_are_minimal() {
        let mut rng = SmallRng::seed_from_u64(212);
        let g = random_labeled_digraph(25, 75, 4, LabelDistribution::Uniform, &mut rng);
        let gtc = GtcIndex::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                let sets = gtc.spls(s, t).sets();
                for (i, &a) in sets.iter().enumerate() {
                    for (j, &b) in sets.iter().enumerate() {
                        if i != j {
                            assert!(!a.is_subset_of(b), "non-minimal antichain");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pair_count_matches_plain_reachability() {
        let g = fixtures::figure1b();
        let gtc = GtcIndex::build(&g);
        let plain = g.to_digraph();
        let tc = reach_core::TransitiveClosure::build(&plain);
        assert_eq!(gtc.num_pairs(), tc.num_pairs());
    }
}
