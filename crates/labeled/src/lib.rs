//! # reach-labeled
//!
//! Path-constrained reachability indexes — a from-scratch
//! implementation of every technique in Table 2 of *An Overview of
//! Reachability Indexes on Graphs* (Zhang, Bonifati, Özsu;
//! SIGMOD-Companion 2023):
//!
//! * the constraint language of §2.2 ([`constraint`]: the
//!   `α ::= l | α·α | α∪α | α+ | α*` grammar, parser, classifier,
//!   Thompson NFA) and the online baselines of §2.3 ([`online`]);
//! * the sufficient-path-label-set machinery of §4.1 ([`spls`]);
//! * **alternation-based (LCR) indexes**: Jin et al. [`jin`],
//!   Chen et al. [`chen`] (tree-cover family); Zou et al. [`zou`]
//!   and the full [`gtc`] baseline, the landmark index [`landmark`]
//!   (GTC family); P2H+ [`p2h`] and DLCR [`dlcr`] (2-hop family);
//! * the **concatenation-based (RLC) index** [`rlc`].
//!
//! Alternation indexes implement [`LcrIndex`]; the RLC index
//! implements [`RlcIndexApi`].

#![forbid(unsafe_code)]

pub mod audit;
pub mod chen;
pub mod constraint;
pub mod dlcr;
pub mod gtc;
pub mod jin;
pub mod landmark;
pub mod lcr;
pub mod online;
pub mod p2h;
pub mod pipeline;
pub mod rlc;
pub mod rpq_index;
pub mod service;
pub mod spls;
pub mod witness;
pub mod zou;

pub use audit::{audit_lcr, audit_lcr_index, audit_lcr_spec};
pub use constraint::{parse, Ast, ConstraintKind, Nfa};
pub use lcr::{ConstraintClass, LabeledIndexMeta, LcrFramework, LcrIndex, RlcIndexApi};
pub use pipeline::LcrSpec;
pub use service::{LcrService, UnknownLcrIndex};
pub use spls::SplsSet;
pub use witness::Witness;
