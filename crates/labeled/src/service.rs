//! A warm-index façade for serving label-constrained queries.
//!
//! The labeled twin of `reach-core::IndexService`: bundles the labeled
//! graph, a built alternation (LCR) index, and how long construction
//! took, so a serving layer can answer `Qr(s, t, (l1 ∪ …)*)` queries
//! without ever rebuilding.

use crate::lcr::LcrIndex;
use crate::pipeline::{build_lcr, lcr_spec};
use reach_core::pipeline::BuildOpts;
use reach_graph::{LabelSet, LabeledGraph, VertexId};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The requested technique is not in the LCR registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownLcrIndex {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownLcrIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown LCR index {:?}", self.name)
    }
}

impl std::error::Error for UnknownLcrIndex {}

/// A built LCR index plus the graph it serves and its build cost.
pub struct LcrService {
    graph: Arc<LabeledGraph>,
    index: Box<dyn LcrIndex>,
    name: &'static str,
    build_time: Duration,
}

impl LcrService {
    /// Builds the named registry technique over `graph`.
    pub fn build(
        name: &str,
        graph: Arc<LabeledGraph>,
        opts: &BuildOpts,
    ) -> Result<Self, UnknownLcrIndex> {
        let Some(spec) = lcr_spec(name) else {
            return Err(UnknownLcrIndex { name: name.into() });
        };
        let start = Instant::now();
        let index = build_lcr(spec.name, &graph, opts);
        Ok(LcrService {
            graph,
            index,
            name: spec.name,
            build_time: start.elapsed(),
        })
    }

    /// The registry name of the technique this service answers with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of vertices in the served graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Size of the served graph's label alphabet.
    pub fn num_labels(&self) -> usize {
        self.graph.num_labels()
    }

    /// The labeled graph the index was built over.
    pub fn graph(&self) -> &Arc<LabeledGraph> {
        &self.graph
    }

    /// How long construction took.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Approximate index heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.index.size_bytes()
    }

    /// Answers one label-constrained query.
    pub fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        self.index.query(s, t, allowed)
    }
}

impl fmt::Debug for LcrService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LcrService")
            .field("name", &self.name)
            .field("n", &self.num_vertices())
            .field("labels", &self.num_labels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::fixtures;

    #[test]
    fn service_answers_like_the_direct_index() {
        let g = Arc::new(fixtures::figure1b());
        let svc = LcrService::build("Landmark index", g, &BuildOpts::default()).unwrap();
        assert_eq!(svc.name(), "Landmark index");
        assert_eq!(svc.num_labels(), 3);
        let no_works_for = LabelSet::from_labels([fixtures::FRIEND_OF, fixtures::FOLLOWS]);
        assert!(!svc.query(fixtures::A, fixtures::G, no_works_for));
        assert!(svc.query(fixtures::A, fixtures::G, LabelSet::full(3)));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let g = Arc::new(fixtures::figure1b());
        let e = LcrService::build("NotAnIndex", g, &BuildOpts::default()).unwrap_err();
        assert!(e.to_string().contains("NotAnIndex"));
    }
}
