//! The path-constraint grammar of §2.2 and its compilation.
//!
//! `α ::= l | α·α | α∪α | α+ | α*` — regular expressions over edge
//! labels. The module provides the AST, a parser (accepting both the
//! paper's symbols `·`, `∪`, and the ASCII forms `.`, `|`), a
//! classifier that recognizes the two indexable fragments of Table 2
//! (alternation `(l1∪l2∪…)*` and concatenation `(l1·l2·…)*`), and a
//! Thompson NFA for the general automaton-guided evaluation of §2.3.

use reach_graph::{Label, LabelSet};
use std::fmt;

/// Abstract syntax of a path constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// A single edge label.
    Label(Label),
    /// Concatenation `α·β`.
    Concat(Box<Ast>, Box<Ast>),
    /// Alternation `α∪β`.
    Alt(Box<Ast>, Box<Ast>),
    /// Kleene star `α*`.
    Star(Box<Ast>),
    /// Kleene plus `α+`.
    Plus(Box<Ast>),
}

/// Which indexable fragment (if any) a constraint belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintKind {
    /// `(l1 ∪ l2 ∪ …)*`: answerable by every LCR index.
    Alternation(LabelSet),
    /// `(l1 · l2 · …)*`: answerable by the RLC index.
    Concatenation(Vec<Label>),
    /// Anything else: only the automaton-guided traversal applies.
    General,
}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Name(String),
    Dot,
    Union,
    Star,
    Plus,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(pos, c)) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' => {
                chars.next();
            }
            '·' | '.' => {
                chars.next();
                out.push((pos, Token::Dot));
            }
            '∪' | '|' => {
                chars.next();
                out.push((pos, Token::Union));
            }
            '*' => {
                chars.next();
                out.push((pos, Token::Star));
            }
            '+' => {
                chars.next();
                out.push((pos, Token::Plus));
            }
            '(' => {
                chars.next();
                out.push((pos, Token::LParen));
            }
            ')' => {
                chars.next();
                out.push((pos, Token::RParen));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((pos, Token::Name(name)));
            }
            other => {
                return Err(ParseError {
                    position: pos,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    alphabet: &'a [&'a str],
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(p, _)| p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    // alt := concat ('∪' concat)*
    fn alt(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.concat()?;
        while self.peek() == Some(&Token::Union) {
            self.bump();
            let rhs = self.concat()?;
            lhs = Ast::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // concat := postfix ('·' postfix)*   (explicit dot required)
    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut lhs = self.postfix()?;
        while self.peek() == Some(&Token::Dot) {
            self.bump();
            let rhs = self.postfix()?;
            lhs = Ast::Concat(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // postfix := atom ('*' | '+')*
    fn postfix(&mut self) -> Result<Ast, ParseError> {
        let mut node = self.atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    node = Ast::Star(Box::new(node));
                }
                Some(Token::Plus) => {
                    self.bump();
                    node = Ast::Plus(Box::new(node));
                }
                _ => return Ok(node),
            }
        }
    }

    // atom := label | '(' alt ')'
    fn atom(&mut self) -> Result<Ast, ParseError> {
        let position = self.here();
        match self.bump() {
            Some(Token::Name(name)) => {
                let idx = self
                    .alphabet
                    .iter()
                    .position(|&a| a == name)
                    .or_else(|| {
                        // bare numeric labels are always accepted
                        name.parse::<u8>().ok().map(|i| i as usize)
                    })
                    .ok_or_else(|| ParseError {
                        position,
                        message: format!("unknown label {name:?}"),
                    })?;
                Label::try_new(idx as u32)
                    .map(Ast::Label)
                    .map_err(|_| ParseError {
                        position,
                        message: format!("label index {idx} out of range"),
                    })
            }
            Some(Token::LParen) => {
                let inner = self.alt()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError {
                        position: self.here(),
                        message: "expected ')'".into(),
                    }),
                }
            }
            other => Err(ParseError {
                position,
                message: format!("expected label or '(', found {other:?}"),
            }),
        }
    }
}

/// Parses a path constraint. Label names are resolved against
/// `alphabet` (index = label id); bare numbers are accepted directly.
///
/// ```
/// use reach_labeled::{parse, ConstraintKind};
/// use reach_graph::{Label, LabelSet};
///
/// let ast = parse("(friendOf ∪ follows)*", &["friendOf", "follows"]).unwrap();
/// assert_eq!(
///     ast.classify(),
///     ConstraintKind::Alternation(LabelSet::from_labels([Label(0), Label(1)]))
/// );
///
/// let ast = parse("(0 . 1)*", &[]).unwrap();
/// assert_eq!(
///     ast.classify(),
///     ConstraintKind::Concatenation(vec![Label(0), Label(1)])
/// );
/// ```
pub fn parse(input: &str, alphabet: &[&str]) -> Result<Ast, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        alphabet,
        input_len: input.len(),
    };
    let ast = p.alt()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError {
            position: p.here(),
            message: "trailing input".into(),
        });
    }
    Ok(ast)
}

impl Ast {
    /// Classifies the constraint into Table 2's indexable fragments.
    pub fn classify(&self) -> ConstraintKind {
        if let Ast::Star(inner) = self {
            if let Some(labels) = inner.as_label_alternation() {
                return ConstraintKind::Alternation(labels);
            }
            if let Some(seq) = inner.as_label_concatenation() {
                return ConstraintKind::Concatenation(seq);
            }
        }
        ConstraintKind::General
    }

    /// `l1 ∪ l2 ∪ …` of bare labels, as a set.
    fn as_label_alternation(&self) -> Option<LabelSet> {
        match self {
            Ast::Label(l) => Some(LabelSet::singleton(*l)),
            Ast::Alt(a, b) => Some(a.as_label_alternation()?.union(b.as_label_alternation()?)),
            _ => None,
        }
    }

    /// `l1 · l2 · …` of bare labels, as a sequence.
    fn as_label_concatenation(&self) -> Option<Vec<Label>> {
        match self {
            Ast::Label(l) => Some(vec![*l]),
            Ast::Concat(a, b) => {
                let mut seq = a.as_label_concatenation()?;
                seq.extend(b.as_label_concatenation()?);
                Some(seq)
            }
            _ => None,
        }
    }
}

/// A Thompson NFA over edge labels, for automaton-guided traversal.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `transitions[state]`: `(label, target)`; `None` label = ε.
    transitions: Vec<Vec<(Option<Label>, u32)>>,
    start: u32,
    accept: u32,
}

impl Nfa {
    /// Compiles an AST with Thompson's construction.
    pub fn compile(ast: &Ast) -> Self {
        let mut nfa = Nfa {
            transitions: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, a) = nfa.build(ast);
        nfa.start = s;
        nfa.accept = a;
        nfa
    }

    fn new_state(&mut self) -> u32 {
        self.transitions.push(Vec::new());
        (self.transitions.len() - 1) as u32
    }

    fn edge(&mut self, from: u32, label: Option<Label>, to: u32) {
        self.transitions[from as usize].push((label, to));
    }

    fn build(&mut self, ast: &Ast) -> (u32, u32) {
        match ast {
            Ast::Label(l) => {
                let s = self.new_state();
                let a = self.new_state();
                self.edge(s, Some(*l), a);
                (s, a)
            }
            Ast::Concat(x, y) => {
                let (sx, ax) = self.build(x);
                let (sy, ay) = self.build(y);
                self.edge(ax, None, sy);
                (sx, ay)
            }
            Ast::Alt(x, y) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sx, ax) = self.build(x);
                let (sy, ay) = self.build(y);
                self.edge(s, None, sx);
                self.edge(s, None, sy);
                self.edge(ax, None, a);
                self.edge(ay, None, a);
                (s, a)
            }
            Ast::Star(x) => {
                let s = self.new_state();
                let a = self.new_state();
                let (sx, ax) = self.build(x);
                self.edge(s, None, sx);
                self.edge(s, None, a);
                self.edge(ax, None, sx);
                self.edge(ax, None, a);
                (s, a)
            }
            Ast::Plus(x) => {
                let (sx, ax) = self.build(x);
                let a = self.new_state();
                self.edge(ax, None, sx);
                self.edge(ax, None, a);
                (sx, a)
            }
        }
    }

    /// Number of NFA states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Whether `state` is the accept state.
    pub fn is_accept(&self, state: u32) -> bool {
        state == self.accept
    }

    /// ε-closure of a state set (deduplicated, sorted).
    pub fn epsilon_closure(&self, states: &mut Vec<u32>) {
        let mut seen = vec![false; self.transitions.len()];
        for &s in states.iter() {
            seen[s as usize] = true;
        }
        let mut head = 0;
        while head < states.len() {
            let s = states[head];
            head += 1;
            for &(label, to) in &self.transitions[s as usize] {
                if label.is_none() && !seen[to as usize] {
                    seen[to as usize] = true;
                    states.push(to);
                }
            }
        }
        states.sort_unstable();
    }

    /// The states reachable from `state` by consuming `label`
    /// (before ε-closure).
    pub fn step(&self, state: u32, label: Label) -> impl Iterator<Item = u32> + '_ {
        self.transitions[state as usize]
            .iter()
            .filter(move |&&(l, _)| l == Some(label))
            .map(|&(_, to)| to)
    }

    /// Whether the label word is in the NFA's language (used by tests
    /// and the online evaluator).
    pub fn accepts(&self, word: &[Label]) -> bool {
        let mut current = vec![self.start];
        self.epsilon_closure(&mut current);
        for &l in word {
            let mut next: Vec<u32> = current.iter().flat_map(|&s| self.step(s, l)).collect();
            next.sort_unstable();
            next.dedup();
            self.epsilon_closure(&mut next);
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&s| self.is_accept(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AB: &[&str] = &["a", "b", "c"];

    fn l(i: u8) -> Label {
        Label(i)
    }

    #[test]
    fn parses_the_papers_example() {
        let ast = parse(
            "(friendOf ∪ follows)*",
            &["friendOf", "follows", "worksFor"],
        )
        .unwrap();
        match ast.classify() {
            ConstraintKind::Alternation(set) => {
                assert!(set.contains(l(0)) && set.contains(l(1)));
                assert!(!set.contains(l(2)));
            }
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn parses_concatenation() {
        let ast = parse(
            "(worksFor · friendOf)*",
            &["friendOf", "follows", "worksFor"],
        )
        .unwrap();
        assert_eq!(
            ast.classify(),
            ConstraintKind::Concatenation(vec![l(2), l(0)])
        );
    }

    #[test]
    fn ascii_operators_work() {
        let a = parse("(a | b)*", AB).unwrap();
        let b = parse("(a ∪ b)*", AB).unwrap();
        assert_eq!(a, b);
        let a = parse("(a . b)*", AB).unwrap();
        let b = parse("(a · b)*", AB).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn numeric_labels_work() {
        let ast = parse("(0 | 2)*", AB).unwrap();
        assert_eq!(
            ast.classify(),
            ConstraintKind::Alternation(LabelSet::from_labels([l(0), l(2)]))
        );
    }

    #[test]
    fn general_constraints_classify_as_general() {
        assert_eq!(parse("a", AB).unwrap().classify(), ConstraintKind::General);
        assert_eq!(
            parse("(a·b)+", AB).unwrap().classify(),
            ConstraintKind::General
        );
        assert_eq!(
            parse("(a ∪ b·c)*", AB).unwrap().classify(),
            ConstraintKind::General
        );
        assert_eq!(
            parse("a*·b", AB).unwrap().classify(),
            ConstraintKind::General
        );
    }

    #[test]
    fn single_label_star_is_alternation() {
        assert_eq!(
            parse("a*", AB).unwrap().classify(),
            ConstraintKind::Alternation(LabelSet::singleton(l(0)))
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("", AB).is_err());
        assert!(parse("(a", AB).is_err());
        assert!(parse("a )", AB).is_err());
        assert!(parse("nope*", AB).is_err());
        assert!(parse("a $ b", AB).is_err());
        assert!(parse("99", AB).is_err(), "numeric label out of range");
    }

    #[test]
    fn precedence_star_binds_tighter_than_concat_than_alt() {
        // a ∪ b·c* == a ∪ (b·(c*))
        let ast = parse("a ∪ b·c*", AB).unwrap();
        let expect = Ast::Alt(
            Box::new(Ast::Label(l(0))),
            Box::new(Ast::Concat(
                Box::new(Ast::Label(l(1))),
                Box::new(Ast::Star(Box::new(Ast::Label(l(2))))),
            )),
        );
        assert_eq!(ast, expect);
    }

    #[test]
    fn nfa_accepts_expected_words() {
        let nfa = Nfa::compile(&parse("(a·b)*", AB).unwrap());
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[l(0), l(1)]));
        assert!(nfa.accepts(&[l(0), l(1), l(0), l(1)]));
        assert!(!nfa.accepts(&[l(0)]));
        assert!(!nfa.accepts(&[l(1), l(0)]));

        let nfa = Nfa::compile(&parse("(a ∪ b)+", AB).unwrap());
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[l(0)]));
        assert!(nfa.accepts(&[l(1), l(0), l(1)]));
        assert!(!nfa.accepts(&[l(2)]));

        let nfa = Nfa::compile(&parse("a·b* ∪ c", AB).unwrap());
        assert!(nfa.accepts(&[l(0)]));
        assert!(nfa.accepts(&[l(0), l(1), l(1)]));
        assert!(nfa.accepts(&[l(2)]));
        assert!(!nfa.accepts(&[l(1)]));
    }
}
