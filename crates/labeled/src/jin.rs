//! Jin et al. \[21\]: the first LCR index — spanning tree + partial GTC
//! (§4.1.1).
//!
//! Paths are split into (1) a maximal prefix of spanning-tree edges
//! and (2) the remainder starting at the first non-tree edge. Case (1)
//! is answered from the tree alone using the paper's second
//! optimization: *recording the occurrences of individual edge labels
//! on root-to-vertex paths*, so the (unique) tree path `s → t` has
//! label set `{l : cnt_l(t) > cnt_l(s)}`. Case (2) is answered by a
//! partial GTC materialized from the head of every non-tree edge.

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework, LcrIndex,
};
use crate::spls::SplsSet;
use crate::zou::single_source_gtc;
use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};

/// The Jin et al. LCR index.
pub struct JinIndex {
    /// tree intervals: `[start, end]` post-order containment
    start: Vec<u32>,
    end: Vec<u32>,
    /// per-vertex label counts on the root-to-vertex tree path
    counts: Vec<Vec<u16>>,
    /// non-tree edges `(u, l, v)`
    non_tree: Vec<(VertexId, Label, VertexId)>,
    /// partial GTC: single-source rows from each distinct non-tree head
    head_rows: Vec<(VertexId, Vec<SplsSet>)>,
    num_labels: usize,
}

impl JinIndex {
    /// Builds the index over a general edge-labeled graph.
    pub fn build(g: &LabeledGraph) -> Self {
        let n = g.num_vertices();
        let k = g.num_labels();
        // DFS spanning forest over the labeled graph, tracking the
        // discovery label so root-path counts can be accumulated
        let mut parent_label: Vec<Option<Label>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut counts: Vec<Vec<u16>> = vec![vec![0; k]; n];
        let mut non_tree: Vec<(VertexId, Label, VertexId)> = Vec::new();
        let mut counter = 0u32;

        struct Frame {
            v: VertexId,
            edges: Vec<(VertexId, Label)>,
            cursor: usize,
            entry: u32,
        }
        let mut stack: Vec<Frame> = Vec::new();
        for root in g.vertices() {
            if visited[root.index()] {
                continue;
            }
            visited[root.index()] = true;
            stack.push(Frame {
                v: root,
                edges: g.out_edges(root).collect(),
                cursor: 0,
                entry: counter,
            });
            while let Some(top) = stack.last_mut() {
                if top.cursor < top.edges.len() {
                    let (w, l) = top.edges[top.cursor];
                    let v = top.v;
                    top.cursor += 1;
                    if visited[w.index()] {
                        non_tree.push((v, l, w));
                    } else {
                        visited[w.index()] = true;
                        parent_label[w.index()] = Some(l);
                        counts[w.index()] = counts[v.index()].clone();
                        counts[w.index()][l.index()] += 1;
                        stack.push(Frame {
                            v: w,
                            edges: g.out_edges(w).collect(),
                            cursor: 0,
                            entry: counter,
                        });
                    }
                } else {
                    counter += 1;
                    start[top.v.index()] = top.entry + 1;
                    end[top.v.index()] = counter;
                    stack.pop();
                }
            }
        }

        // partial GTC from each distinct non-tree head
        let mut heads: Vec<VertexId> = non_tree.iter().map(|&(_, _, v)| v).collect();
        heads.sort_unstable();
        heads.dedup();
        let head_rows = heads
            .into_iter()
            .map(|h| (h, single_source_gtc(g, h)))
            .collect();

        JinIndex {
            start,
            end,
            counts,
            non_tree,
            head_rows,
            num_labels: k,
        }
    }

    /// Whether `t` is in the tree subtree of `s`.
    #[inline]
    fn tree_contains(&self, s: VertexId, t: VertexId) -> bool {
        self.start[s.index()] <= self.end[t.index()] && self.end[t.index()] <= self.end[s.index()]
    }

    /// Label set of the unique tree path `s → t` (requires
    /// `tree_contains(s, t)`): the paper's count-subtraction trick.
    fn tree_path_labels(&self, s: VertexId, t: VertexId) -> LabelSet {
        let mut set = LabelSet::EMPTY;
        for l in 0..self.num_labels {
            if self.counts[t.index()][l] > self.counts[s.index()][l] {
                set = set.insert(Label(l as u8));
            }
        }
        set
    }

    fn head_gtc(&self, h: VertexId) -> Option<&Vec<SplsSet>> {
        self.head_rows
            .binary_search_by_key(&h, |&(v, _)| v)
            .ok()
            .map(|i| &self.head_rows[i].1)
    }

    /// Number of non-tree edges (the partial-GTC trigger points).
    pub fn num_non_tree_edges(&self) -> usize {
        self.non_tree.len()
    }
}

impl LcrIndex for JinIndex {
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        if s == t {
            return true;
        }
        // case 1: pure tree path
        if self.tree_contains(s, t) && self.tree_path_labels(s, t).is_subset_of(allowed) {
            return true;
        }
        // case 2: tree prefix to the tail of a non-tree edge, then the
        // head's GTC covers the rest of the graph exactly
        for &(u, l, v) in &self.non_tree {
            if !allowed.contains(l) {
                continue;
            }
            let prefix_ok =
                self.tree_contains(s, u) && self.tree_path_labels(s, u).is_subset_of(allowed);
            if !prefix_ok {
                continue;
            }
            let rows = self.head_gtc(v).expect("head has a GTC row");
            if rows[t.index()].satisfies(allowed) {
                return true;
            }
        }
        false
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "Jin et al.",
            citation: "[21]",
            framework: LcrFramework::TreeCover,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        let gtc: usize = self
            .head_rows
            .iter()
            .flat_map(|(_, rows)| rows.iter())
            .map(|s| 8 * s.len())
            .sum();
        gtc + 2 * self.num_labels * self.counts.len() + 8 * self.start.len()
    }

    fn size_entries(&self) -> usize {
        self.head_rows
            .iter()
            .flat_map(|(_, rows)| rows.iter())
            .map(|s| s.len())
            .sum::<usize>()
            + self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::lcr_bfs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn check_exact(g: &LabeledGraph) {
        let idx = JinIndex::build(g);
        let nl = g.num_labels();
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..(1u64 << nl) {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(g, s, t, allowed),
                        "at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check_exact(&fixtures::figure1b());
    }

    #[test]
    fn paper_claims_hold() {
        let g = fixtures::figure1b();
        let idx = JinIndex::build(&g);
        assert!(!idx.query(
            fixtures::A,
            fixtures::G,
            LabelSet::from_labels([fixtures::FRIEND_OF, fixtures::FOLLOWS])
        ));
        assert!(idx.query(fixtures::A, fixtures::G, LabelSet::full(3)));
        // L reaches M with worksFor only (SPLS {worksFor})
        assert!(idx.query(
            fixtures::L,
            fixtures::M,
            LabelSet::singleton(fixtures::WORKS_FOR)
        ));
    }

    #[test]
    fn exact_on_random_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(231);
        for _ in 0..3 {
            check_exact(&random_labeled_digraph(
                25,
                70,
                3,
                LabelDistribution::Uniform,
                &mut rng,
            ));
        }
    }

    #[test]
    fn tree_only_graph_needs_no_gtc() {
        // a labeled path: every edge is a tree edge
        let g = LabeledGraph::from_edges(4, 2, &[(0, 0, 1), (1, 1, 2), (2, 0, 3)]);
        let idx = JinIndex::build(&g);
        assert_eq!(idx.num_non_tree_edges(), 0);
        check_exact(&g);
    }

    #[test]
    fn tree_path_label_counts_are_exact() {
        let g = fixtures::figure1b();
        let idx = JinIndex::build(&g);
        // A -follows-> L is a tree edge (A is the DFS root); the tree
        // path label set must be exactly {follows} or the edge is
        // non-tree — either way queries stay exact, but when it is a
        // tree path the counts must match
        if idx.tree_contains(fixtures::A, fixtures::L) {
            let labels = idx.tree_path_labels(fixtures::A, fixtures::L);
            assert!(labels.is_subset_of(LabelSet::from_labels([
                fixtures::FOLLOWS,
                fixtures::FRIEND_OF,
                fixtures::WORKS_FOR
            ])));
        }
    }
}
