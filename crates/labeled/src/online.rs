//! Online evaluation of path-constrained queries (§2.3): the
//! index-free baselines every Table-2 technique is compared against,
//! and the test oracles for the whole crate.

use crate::constraint::Nfa;
use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};

/// Label-constrained BFS: is there an `s`–`t` path using only labels
/// in `allowed`? (The LCR oracle.)
pub fn lcr_bfs(g: &LabeledGraph, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
    if s == t {
        return true;
    }
    let mut seen = vec![false; g.num_vertices()];
    seen[s.index()] = true;
    let mut queue = vec![s];
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for (v, l) in g.out_edges(u) {
            if !allowed.contains(l) {
                continue;
            }
            if v == t {
                return true;
            }
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push(v);
            }
        }
    }
    false
}

/// Recursive-label-concatenated BFS: is there an `s`–`t` path whose
/// label sequence is one or more full repetitions of `unit`? (The RLC
/// oracle; `s == t` is true via the empty repetition.)
///
/// Runs over the product space (vertex, phase) where phase is the
/// position inside the repeating unit.
pub fn rlc_bfs(g: &LabeledGraph, s: VertexId, t: VertexId, unit: &[Label]) -> bool {
    assert!(!unit.is_empty(), "concatenation unit must be non-empty");
    if s == t {
        return true;
    }
    let k = unit.len();
    let n = g.num_vertices();
    let mut seen = vec![false; n * k];
    seen[s.index() * k] = true;
    let mut queue = vec![(s, 0usize)];
    let mut head = 0;
    while head < queue.len() {
        let (u, phase) = queue[head];
        head += 1;
        let want = unit[phase];
        let next_phase = (phase + 1) % k;
        for (v, l) in g.out_edges(u) {
            if l != want {
                continue;
            }
            if v == t && next_phase == 0 {
                return true;
            }
            if !seen[v.index() * k + next_phase] {
                seen[v.index() * k + next_phase] = true;
                queue.push((v, next_phase));
            }
        }
    }
    false
}

/// Automaton-guided BFS for an arbitrary regular path constraint
/// (§2.3: *"a finite automaton can be built according to the regular
/// expression α … and then the traversal is guided by the FA"*).
///
/// Runs over the product space (vertex, NFA state). Note that unlike
/// [`lcr_bfs`]/[`rlc_bfs`], the empty path only counts if the
/// automaton accepts ε.
pub fn rpq_bfs(g: &LabeledGraph, s: VertexId, t: VertexId, nfa: &Nfa) -> bool {
    let ns = nfa.num_states();
    let mut start_states = vec![nfa.start()];
    nfa.epsilon_closure(&mut start_states);
    if s == t && start_states.iter().any(|&q| nfa.is_accept(q)) {
        return true;
    }
    let mut seen = vec![false; g.num_vertices() * ns];
    let mut queue: Vec<(VertexId, u32)> = Vec::new();
    for &q in &start_states {
        seen[s.index() * ns + q as usize] = true;
        queue.push((s, q));
    }
    let mut head = 0;
    while head < queue.len() {
        let (u, q) = queue[head];
        head += 1;
        for (v, l) in g.out_edges(u) {
            let mut targets: Vec<u32> = nfa.step(q, l).collect();
            nfa.epsilon_closure(&mut targets);
            for qq in targets {
                if v == t && nfa.is_accept(qq) {
                    return true;
                }
                if !seen[v.index() * ns + qq as usize] {
                    seen[v.index() * ns + qq as usize] = true;
                    queue.push((v, qq));
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse;
    use reach_graph::fixtures::{self, A, B, FOLLOWS, FRIEND_OF, G, L, M, WORKS_FOR};

    const ALPHABET: &[&str] = &["friendOf", "follows", "worksFor"];

    #[test]
    fn paper_example_alternation_is_false() {
        // Qr(A, G, (friendOf ∪ follows)*) = false
        let g = fixtures::figure1b();
        let allowed = LabelSet::from_labels([FRIEND_OF, FOLLOWS]);
        assert!(!lcr_bfs(&g, A, G, allowed));
        // but unconstrained, A reaches G
        assert!(lcr_bfs(&g, A, G, LabelSet::full(3)));
    }

    #[test]
    fn paper_example_concatenation_is_true() {
        // Qr(L, B, (worksFor · friendOf)*) = true via
        // (L, worksFor, D, friendOf, H, worksFor, G, friendOf, B)
        let g = fixtures::figure1b();
        assert!(rlc_bfs(&g, L, B, &[WORKS_FOR, FRIEND_OF]));
        // the reversed unit does not match
        assert!(!rlc_bfs(&g, L, B, &[FRIEND_OF, WORKS_FOR]));
    }

    #[test]
    fn rlc_requires_full_repetitions() {
        let g = fixtures::figure1b();
        // L -worksFor-> C reaches M with (worksFor, worksFor):
        // one repeat of the 2-unit (worksFor, worksFor)
        assert!(rlc_bfs(&g, L, M, &[WORKS_FOR, WORKS_FOR]));
        // but a 3-unit starting worksFor,worksFor,worksFor has no
        // complete repetition ending at M
        assert!(!rlc_bfs(&g, L, M, &[WORKS_FOR, WORKS_FOR, WORKS_FOR]));
    }

    #[test]
    fn rpq_agrees_with_lcr_on_alternations() {
        let g = fixtures::figure1b();
        let ast = parse("(friendOf ∪ follows)*", ALPHABET).unwrap();
        let nfa = Nfa::compile(&ast);
        let allowed = LabelSet::from_labels([FRIEND_OF, FOLLOWS]);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    rpq_bfs(&g, s, t, &nfa),
                    lcr_bfs(&g, s, t, allowed),
                    "mismatch at {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn rpq_agrees_with_rlc_on_concatenations() {
        let g = fixtures::figure1b();
        let ast = parse("(worksFor · friendOf)*", ALPHABET).unwrap();
        let nfa = Nfa::compile(&ast);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(
                    rpq_bfs(&g, s, t, &nfa),
                    rlc_bfs(&g, s, t, &[WORKS_FOR, FRIEND_OF]),
                    "mismatch at {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn rpq_handles_non_kleene_constraints() {
        let g = fixtures::figure1b();
        // a single worksFor edge
        let nfa = Nfa::compile(&parse("worksFor", ALPHABET).unwrap());
        assert!(rpq_bfs(&g, L, fixtures::C, &nfa));
        assert!(!rpq_bfs(&g, A, fixtures::C, &nfa), "needs exactly one edge");
        // empty path only with ε in the language
        assert!(!rpq_bfs(&g, A, A, &nfa));
        let star = Nfa::compile(&parse("worksFor*", ALPHABET).unwrap());
        assert!(rpq_bfs(&g, A, A, &star));
    }

    #[test]
    fn empty_label_set_still_reaches_self() {
        let g = fixtures::figure1b();
        assert!(lcr_bfs(&g, A, A, LabelSet::EMPTY));
        assert!(!lcr_bfs(&g, A, B, LabelSet::EMPTY));
    }
}
