//! The landmark index of Valstar, Fletcher & Yoshida \[44\] (§4.1.2).
//!
//! A *partial* GTC: only the top-`k` highest-degree vertices
//! (landmarks) store a single-source GTC. `Qr(s, t, α)` runs a
//! label-constrained BFS from `s`; whenever the frontier hits a
//! landmark `v`, its GTC is consulted — if it certifies `t` under `α`
//! the query terminates with `true`, and otherwise everything
//! reachable from `v` under `α` is already accounted for, so `v` is
//! not expanded. This is the survey's exemplar of a partial index
//! *without false positives* (§5's discussion of its limitation: a
//! negative lookup cannot stop the traversal).
//!
//! The paper's final refinement is implemented too: *"the querying
//! process is further improved by computing the reachability and
//! SPLSs of paths from non-landmark vertices to landmark vertices,
//! where the number of indexed paths is controlled by a predefined
//! parameter"* — each vertex stores up to `budget` (landmark, SPLS)
//! entries so that queries can jump straight from the source to a
//! landmark GTC without any traversal.

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework, LcrIndex,
};
use crate::spls::SplsSet;
use crate::zou::single_source_gtc;
use reach_graph::{LabelSet, LabeledGraph, ScratchPool, VertexId};
use std::sync::Arc;

/// The landmark LCR index.
pub struct LandmarkIndex {
    graph: Arc<LabeledGraph>,
    /// landmark slot of each vertex, `u32::MAX` if none
    slot_of: Vec<u32>,
    /// per-landmark single-source GTC rows
    gtc: Vec<Vec<SplsSet>>,
    /// per-vertex shortcuts: up to `budget` (landmark slot, SPLS) pairs
    /// for paths from the vertex *to* that landmark
    shortcuts: Vec<Vec<(u32, SplsSet)>>,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    seen: Vec<bool>,
    queue: Vec<VertexId>,
}

impl LandmarkIndex {
    /// Builds the index with `k` landmarks chosen by descending degree
    /// and the default per-vertex shortcut budget of 2.
    pub fn build(graph: Arc<LabeledGraph>, k: usize) -> Self {
        Self::build_with_budget(graph, k, 2)
    }

    /// Builds the index with an explicit per-vertex shortcut budget
    /// (the paper's "predefined parameter"; 0 disables shortcuts).
    pub fn build_with_budget(graph: Arc<LabeledGraph>, k: usize, budget: usize) -> Self {
        let n = graph.num_vertices();
        let k = k.min(n);
        let mut by_degree: Vec<VertexId> = graph.vertices().collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.0));
        let mut slot_of = vec![u32::MAX; n];
        let mut gtc = Vec::with_capacity(k);
        for (i, &lm) in by_degree.iter().take(k).enumerate() {
            slot_of[lm.index()] = i as u32;
            gtc.push(single_source_gtc(&graph, lm));
        }
        // vertex→landmark shortcuts from the landmarks' *backward* GTCs
        let mut shortcuts: Vec<Vec<(u32, SplsSet)>> = vec![Vec::new(); n];
        if budget > 0 {
            let reversed = reverse_labeled(&graph);
            for (i, &lm) in by_degree.iter().take(k).enumerate() {
                // rows[v] = SPLSs of v→lm paths
                let rows = single_source_gtc(&reversed, lm);
                for v in graph.vertices() {
                    if v == lm || rows[v.index()].is_empty() {
                        continue;
                    }
                    if shortcuts[v.index()].len() < budget {
                        shortcuts[v.index()].push((i as u32, rows[v.index()].clone()));
                    }
                }
            }
        }
        LandmarkIndex {
            graph,
            slot_of,
            gtc,
            shortcuts,
            scratch: ScratchPool::new(),
        }
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.gtc.len()
    }

    /// Total vertex→landmark shortcut entries stored.
    pub fn num_shortcuts(&self) -> usize {
        self.shortcuts.iter().map(Vec::len).sum()
    }
}

/// The same labeled graph with every edge reversed.
fn reverse_labeled(g: &LabeledGraph) -> LabeledGraph {
    let mut b = reach_graph::LabeledGraphBuilder::new(g.num_vertices(), g.num_labels());
    for (u, l, v) in g.edges() {
        b.add_edge(v, l, u);
    }
    b.build()
}

impl LcrIndex for LandmarkIndex {
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        if s == t {
            return true;
        }
        // shortcut check: s ⇝ landmark ⇝ t entirely by lookup
        for (slot, to_lm) in &self.shortcuts[s.index()] {
            if to_lm.satisfies(allowed) && self.gtc[*slot as usize][t.index()].satisfies(allowed) {
                return true;
            }
        }
        let scratch = &mut *self.scratch.checkout(|| Scratch {
            seen: vec![false; self.graph.num_vertices()],
            queue: Vec::new(),
        });
        scratch.seen.iter_mut().for_each(|b| *b = false);
        scratch.queue.clear();
        scratch.queue.push(s);
        scratch.seen[s.index()] = true;
        let mut head = 0;
        while head < scratch.queue.len() {
            let u = scratch.queue[head];
            head += 1;
            let slot = self.slot_of[u.index()];
            if slot != u32::MAX {
                // landmark hit: its GTC decides everything beyond u
                if self.gtc[slot as usize][t.index()].satisfies(allowed) {
                    return true;
                }
                continue; // prune: u's α-closure is fully covered
            }
            for (v, l) in self.graph.out_edges(u) {
                if !allowed.contains(l) {
                    continue;
                }
                if v == t {
                    return true;
                }
                if !scratch.seen[v.index()] {
                    scratch.seen[v.index()] = true;
                    scratch.queue.push(v);
                }
            }
        }
        false
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "Landmark index",
            citation: "[44]",
            framework: LcrFramework::Gtc,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Partial,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.size_entries() + 4 * self.slot_of.len()
    }

    fn size_entries(&self) -> usize {
        let gtc: usize = self
            .gtc
            .iter()
            .flat_map(|row| row.iter())
            .map(|s| s.len())
            .sum();
        let shortcuts: usize = self
            .shortcuts
            .iter()
            .flat_map(|row| row.iter())
            .map(|(_, s)| s.len())
            .sum();
        gtc + shortcuts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::lcr_bfs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn check_exact(g: Arc<LabeledGraph>, k: usize) {
        let idx = LandmarkIndex::build(g.clone(), k);
        let nl = g.num_labels();
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..(1u64 << nl) {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(&g, s, t, allowed),
                        "k={k} at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_figure1_for_all_k() {
        let g = Arc::new(fixtures::figure1b());
        for k in [0, 2, 9] {
            check_exact(g.clone(), k);
        }
    }

    #[test]
    fn exact_on_random_graphs() {
        let mut rng = SmallRng::seed_from_u64(221);
        for _ in 0..3 {
            let g = Arc::new(random_labeled_digraph(
                25,
                70,
                3,
                LabelDistribution::Zipf,
                &mut rng,
            ));
            check_exact(g, 5);
        }
    }

    #[test]
    fn zero_landmarks_is_plain_lcr_bfs() {
        let g = Arc::new(fixtures::figure1b());
        let idx = LandmarkIndex::build(g.clone(), 0);
        assert_eq!(idx.num_landmarks(), 0);
        assert_eq!(idx.size_entries(), 0);
        assert!(idx.query(fixtures::A, fixtures::G, LabelSet::full(3)));
    }

    #[test]
    fn shortcuts_stay_exact_and_within_budget() {
        let mut rng = SmallRng::seed_from_u64(223);
        let g = Arc::new(random_labeled_digraph(
            30,
            90,
            3,
            LabelDistribution::Uniform,
            &mut rng,
        ));
        for budget in [0, 1, 4] {
            let idx = LandmarkIndex::build_with_budget(g.clone(), 5, budget);
            for v in g.vertices() {
                assert!(idx.shortcuts[v.index()].len() <= budget);
            }
            if budget == 0 {
                assert_eq!(idx.num_shortcuts(), 0);
            }
            for s in g.vertices() {
                for t in g.vertices() {
                    for mask in 0..8u64 {
                        let allowed = LabelSet(mask);
                        assert_eq!(
                            idx.query(s, t, allowed),
                            lcr_bfs(&g, s, t, allowed),
                            "budget {budget} at {s:?}->{t:?} under {allowed:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn landmark_storage_scales_with_k() {
        let mut rng = SmallRng::seed_from_u64(222);
        let g = Arc::new(random_labeled_digraph(
            60,
            200,
            4,
            LabelDistribution::Uniform,
            &mut rng,
        ));
        let i2 = LandmarkIndex::build(g.clone(), 2);
        let i8 = LandmarkIndex::build(g.clone(), 8);
        assert!(i8.size_entries() > i2.size_entries());
        assert_eq!(i8.num_landmarks(), 8);
    }
}
