//! The common interface of path-constrained reachability indexes and
//! the classification metadata of the survey's Table 2.

use reach_core::audit::Violation;
use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};

pub use reach_core::index::{Completeness, Dynamism, InputClass};

/// The indexing framework of a path-constrained technique (Table 2,
/// column "Framework").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LcrFramework {
    /// Spanning-tree / interval-labeling extensions (§4.1.1).
    TreeCover,
    /// Generalized-transitive-closure materializations (§4.1.2).
    Gtc,
    /// 2-hop labelings enriched with label information (§4.1.3, §4.2).
    TwoHop,
}

/// The path-constraint class an index supports (Table 2, column
/// "Path Constraint").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintClass {
    /// `α = (l1 ∪ l2 ∪ …)*` — label-constrained reachability (LCR).
    Alternation,
    /// `α = (l1 · l2 · …)*` — recursive label-concatenated (RLC).
    Concatenation,
}

/// Static classification of a path-constrained index — one row of the
/// survey's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledIndexMeta {
    /// Technique name as used in the survey.
    pub name: &'static str,
    /// Citation tag in the survey's bibliography.
    pub citation: &'static str,
    /// Framework column.
    pub framework: LcrFramework,
    /// Path-constraint column.
    pub constraint: ConstraintClass,
    /// Index-type column.
    pub completeness: Completeness,
    /// Input column.
    pub input: InputClass,
    /// Dynamic column.
    pub dynamism: Dynamism,
}

/// An alternation-based (LCR) reachability index: answers
/// `Qr(s, t, (l1 ∪ l2 ∪ …)*)` where the alternation is given as the
/// [`LabelSet`] of permitted labels.
///
/// `Send + Sync` as supertraits, like the plain `ReachIndex`: labeled
/// indexes are shared across query threads too, so per-query scratch
/// lives in a lock-free `ScratchPool`, never a `RefCell`.
pub trait LcrIndex: Send + Sync {
    /// Whether a path from `s` to `t` exists using only edges whose
    /// label lies in `allowed`. Every vertex reaches itself under any
    /// constraint (the empty path).
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool;

    /// This technique's Table-2 classification.
    fn meta(&self) -> LabeledIndexMeta;

    /// Approximate heap footprint of the index structures in bytes.
    fn size_bytes(&self) -> usize;

    /// Abstract entry count (SPLS entries, GTC rows, …).
    fn size_entries(&self) -> usize;

    /// Checks the index's internal structural invariants against the
    /// graph it claims to cover, returning one [`Violation`] per
    /// broken rule. The default reports nothing; techniques with
    /// checkable structure (SPLS minimality, label-set monotonicity)
    /// override it. Behavioral correctness (answers vs an online BFS)
    /// is checked separately by [`crate::audit::audit_lcr_index`].
    fn check_invariants(&self, graph: &LabeledGraph) -> Vec<Violation> {
        let _ = graph;
        Vec::new()
    }
}

/// A concatenation-based (RLC) reachability index: answers
/// `Qr(s, t, (l1 · l2 · … · lk)*)` for concatenation units up to the
/// length the index was built for.
///
/// `Send + Sync` for the same reason as [`LcrIndex`].
pub trait RlcIndexApi: Send + Sync {
    /// Whether a path from `s` to `t` exists whose label sequence is a
    /// (possibly empty for `s == t`, otherwise one-or-more-fold)
    /// repetition of `unit`. Returns `None` if `unit` is longer than
    /// the index supports.
    fn try_query(&self, s: VertexId, t: VertexId, unit: &[Label]) -> Option<bool>;

    /// This technique's Table-2 classification.
    fn meta(&self) -> LabeledIndexMeta;

    /// Approximate heap footprint in bytes.
    fn size_bytes(&self) -> usize;

    /// Abstract entry count.
    fn size_entries(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_is_plain_data() {
        let m = LabeledIndexMeta {
            name: "X",
            citation: "[0]",
            framework: LcrFramework::TwoHop,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        };
        assert_eq!(m, m);
        assert_ne!(ConstraintClass::Alternation, ConstraintClass::Concatenation);
    }
}
