//! The RLC index \[52\]: 2-hop labeling for recursive
//! label-concatenated queries `Qr(s, t, (l1·l2·…·lk)*)` (§4.2).
//!
//! The index is built for a maximum concatenation length `kmax` (the
//! survey: *"the concatenation length under the Kleene operator is
//! leveraged to guide the computation"*). For every unit `u` with
//! `|u| ≤ kmax`, entries record *phase-aligned repeats*:
//!
//! * `(h, u, p) ∈ Lout(s)` — an `s → h` path whose label sequence is
//!   `u^a · u[0..p]` (full repeats then the first `p` symbols);
//! * `(h, u, p) ∈ Lin(t)` — an `h → t` path matching `u` from phase
//!   `p` onward and ending on a unit boundary.
//!
//! A query joins on `(h, u, p)`: the concatenation is then a whole
//! number of repeats. Tracking the phase is what makes the entries
//! transitive — the survey's second RLC challenge (*"MRs do not
//! necessarily have the transitive property"*) — and bounding `|u|`
//! by `kmax` keeps the descriptor universe finite — the first
//! challenge (*"infinite MRs … as a result of directed cycles"*).
//! Hops label their priority-restricted closures (cf. [`crate::dlcr`]),
//! so the two-phase minimal-selection of the original paper is
//! replaced by a per-hop-local construction with the same
//! completeness guarantee.

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, RlcIndexApi,
};
use reach_graph::{Label, LabeledGraph, VertexId};

/// One RLC label entry: `(hop rank, unit id, phase)`.
type RlcEntry = (u32, u16, u8);

/// The RLC index.
///
/// ```
/// use reach_graph::{Label, LabeledGraph, VertexId};
/// use reach_labeled::rlc::RlcIndex;
/// use reach_labeled::RlcIndexApi;
///
/// // 0 -a-> 1 -b-> 2 -a-> 3 -b-> 4
/// let g = LabeledGraph::from_edges(5, 2, &[(0, 0, 1), (1, 1, 2), (2, 0, 3), (3, 1, 4)]);
/// let idx = RlcIndex::build(&g, 2);
/// let (a, b) = (Label(0), Label(1));
/// assert_eq!(idx.try_query(VertexId(0), VertexId(4), &[a, b]), Some(true));
/// assert_eq!(idx.try_query(VertexId(0), VertexId(3), &[a, b]), Some(false));
/// assert_eq!(idx.try_query(VertexId(0), VertexId(4), &[a, b, a]), None); // > kmax
/// ```
pub struct RlcIndex {
    /// all units of length `1..=kmax`, sorted for binary search
    units: Vec<Vec<Label>>,
    kmax: usize,
    lin: Vec<Vec<RlcEntry>>,
    lout: Vec<Vec<RlcEntry>>,
}

fn enumerate_units(num_labels: usize, kmax: usize) -> Vec<Vec<Label>> {
    let mut units: Vec<Vec<Label>> = Vec::new();
    let mut frontier: Vec<Vec<Label>> = vec![Vec::new()];
    for _ in 0..kmax {
        let mut next = Vec::new();
        for seq in &frontier {
            for l in 0..num_labels {
                let mut s = seq.clone();
                s.push(Label(l as u8));
                next.push(s);
            }
        }
        units.extend(next.iter().cloned());
        frontier = next;
    }
    units.sort();
    units
}

impl RlcIndex {
    /// Builds the index for concatenation units up to length `kmax`.
    ///
    /// The unit universe has `|L| + |L|² + … + |L|^kmax` members; the
    /// constructor rejects configurations above 4096 units (the survey
    /// is explicit that RLC indexing cost is high — this implementation
    /// targets the small alphabets and short units of real queries).
    pub fn build(g: &LabeledGraph, kmax: usize) -> Self {
        assert!(kmax >= 1, "kmax must be at least 1");
        let units = enumerate_units(g.num_labels(), kmax);
        assert!(
            units.len() <= 4096,
            "unit universe too large: {} (reduce kmax or the alphabet)",
            units.len()
        );
        let n = g.num_vertices();
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        let mut rank_of = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank_of[v.index()] = r as u32;
        }

        let mut idx = RlcIndex {
            units,
            kmax,
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
        };
        let mut seen = vec![false; 0];
        for (r, &w) in order.iter().enumerate() {
            for uid in 0..idx.units.len() {
                let unit = idx.units[uid].clone();
                for phase in 0..unit.len() {
                    idx.hop_bfs(
                        g,
                        &rank_of,
                        w,
                        r as u32,
                        uid as u16,
                        &unit,
                        phase as u8,
                        true,
                        &mut seen,
                    );
                    idx.hop_bfs(
                        g,
                        &rank_of,
                        w,
                        r as u32,
                        uid as u16,
                        &unit,
                        phase as u8,
                        false,
                        &mut seen,
                    );
                }
            }
        }
        for entries in idx.lin.iter_mut().chain(idx.lout.iter_mut()) {
            entries.sort_unstable();
            entries.dedup();
        }
        idx
    }

    /// One phase-aligned restricted BFS for hop `w`.
    ///
    /// Forward (`lin` entries, tag = start phase `p0`): states are
    /// `(x, q)` with a `w → x` path matching `u` from phase `p0` to
    /// phase `q`; an entry is recorded whenever `q == 0`.
    /// Backward (`lout` entries, tag = end phase `p0`): states are
    /// `(x, q)` with an `x → w` path matching `u` from phase `q` to
    /// phase `p0`; an entry is recorded whenever `q == 0`.
    #[allow(clippy::too_many_arguments)]
    fn hop_bfs(
        &mut self,
        g: &LabeledGraph,
        rank_of: &[u32],
        w: VertexId,
        r: u32,
        uid: u16,
        unit: &[Label],
        p0: u8,
        forward: bool,
        seen: &mut Vec<bool>,
    ) {
        let n = g.num_vertices();
        let klen = unit.len();
        seen.clear();
        seen.resize(n * klen, false);
        let mut queue: Vec<(VertexId, u8)> = vec![(w, p0)];
        seen[w.index() * klen + p0 as usize] = true;
        let mut head = 0;
        while head < queue.len() {
            let (x, q) = queue[head];
            head += 1;
            if q == 0 {
                let table = if forward {
                    &mut self.lin
                } else {
                    &mut self.lout
                };
                table[x.index()].push((r, uid, p0));
            }
            // interior restriction: only lower-priority vertices are
            // passed through
            if x != w && rank_of[x.index()] < r {
                continue;
            }
            if forward {
                let want = unit[q as usize];
                let nq = ((q as usize + 1) % klen) as u8;
                for (y, l) in g.out_edges(x) {
                    if l == want && !seen[y.index() * klen + nq as usize] {
                        seen[y.index() * klen + nq as usize] = true;
                        queue.push((y, nq));
                    }
                }
            } else {
                let nq = ((q as usize + klen - 1) % klen) as u8;
                let want = unit[nq as usize];
                for (y, l) in g.in_edges(x) {
                    if l == want && !seen[y.index() * klen + nq as usize] {
                        seen[y.index() * klen + nq as usize] = true;
                        queue.push((y, nq));
                    }
                }
            }
        }
    }

    /// The maximum supported unit length.
    pub fn kmax(&self) -> usize {
        self.kmax
    }

    fn unit_id(&self, unit: &[Label]) -> Option<u16> {
        self.units
            .binary_search_by(|u| u.as_slice().cmp(unit))
            .ok()
            .map(|i| i as u16)
    }
}

impl RlcIndexApi for RlcIndex {
    fn try_query(&self, s: VertexId, t: VertexId, unit: &[Label]) -> Option<bool> {
        assert!(!unit.is_empty(), "concatenation unit must be non-empty");
        if unit.len() > self.kmax {
            return None;
        }
        if s == t {
            return Some(true);
        }
        let uid = self.unit_id(unit)?;
        // join on (rank, unit, phase); both lists are sorted
        let lout = &self.lout[s.index()];
        let lin = &self.lin[t.index()];
        let (mut i, mut j) = (0, 0);
        while i < lout.len() && j < lin.len() {
            let a = lout[i];
            let b = lin[j];
            // compare on the full (rank, unit, phase) key but only
            // accept matches for the queried unit
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if a.1 == uid {
                        return Some(true);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Some(false)
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "RLC index",
            citation: "[52]",
            framework: LcrFramework::TwoHop,
            constraint: ConstraintClass::Concatenation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.size_entries() + 48 * self.lin.len()
    }

    fn size_entries(&self) -> usize {
        self.lin.iter().map(Vec::len).sum::<usize>() + self.lout.iter().map(Vec::len).sum::<usize>()
    }
}

use crate::lcr::LcrFramework;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::rlc_bfs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures::{self, B, FOLLOWS, FRIEND_OF, L, M, WORKS_FOR};
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn check_exact(g: &LabeledGraph, kmax: usize) {
        let idx = RlcIndex::build(g, kmax);
        let units = enumerate_units(g.num_labels(), kmax);
        for unit in &units {
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(
                        idx.try_query(s, t, unit),
                        Some(rlc_bfs(g, s, t, unit)),
                        "unit {unit:?} at {s:?}->{t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn papers_mr_example() {
        // Qr(L, B, (worksFor · friendOf)*) = true via the path
        // (L, worksFor, D, friendOf, H, worksFor, G, friendOf, B)
        let g = fixtures::figure1b();
        let idx = RlcIndex::build(&g, 2);
        assert_eq!(idx.try_query(L, B, &[WORKS_FOR, FRIEND_OF]), Some(true));
        assert_eq!(idx.try_query(L, B, &[FRIEND_OF, WORKS_FOR]), Some(false));
        assert_eq!(idx.try_query(L, M, &[WORKS_FOR, WORKS_FOR]), Some(true));
        assert_eq!(idx.try_query(L, M, &[FOLLOWS, FOLLOWS]), Some(false));
    }

    #[test]
    fn exact_on_figure1() {
        check_exact(&fixtures::figure1b(), 2);
    }

    #[test]
    fn exact_on_random_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(271);
        for _ in 0..3 {
            let g = random_labeled_digraph(18, 55, 3, LabelDistribution::Uniform, &mut rng);
            check_exact(&g, 2);
        }
    }

    #[test]
    fn exact_with_kmax_three() {
        let mut rng = SmallRng::seed_from_u64(272);
        let g = random_labeled_digraph(12, 40, 2, LabelDistribution::Uniform, &mut rng);
        check_exact(&g, 3);
    }

    #[test]
    fn cycles_with_repeats_are_found() {
        // 0 -a-> 1 -b-> 0: (a·b)* loops arbitrarily
        let g = LabeledGraph::from_edges(2, 2, &[(0, 0, 1), (1, 1, 0)]);
        let idx = RlcIndex::build(&g, 2);
        let (a, b) = (Label(0), Label(1));
        assert_eq!(idx.try_query(VertexId(0), VertexId(0), &[a, b]), Some(true));
        assert_eq!(idx.try_query(VertexId(1), VertexId(1), &[b, a]), Some(true));
        // 0 -> 1 needs a lone 'a': unit (a) matches, unit (a,b) cannot
        // end a full repeat at 1
        assert_eq!(idx.try_query(VertexId(0), VertexId(1), &[a]), Some(true));
        assert_eq!(
            idx.try_query(VertexId(0), VertexId(1), &[a, b]),
            Some(false)
        );
    }

    #[test]
    fn units_longer_than_kmax_are_rejected() {
        let g = fixtures::figure1b();
        let idx = RlcIndex::build(&g, 2);
        assert_eq!(
            idx.try_query(L, B, &[WORKS_FOR, FRIEND_OF, WORKS_FOR]),
            None
        );
    }

    #[test]
    fn unit_enumeration_is_complete_and_sorted() {
        let units = enumerate_units(2, 2);
        assert_eq!(units.len(), 2 + 4);
        assert!(units.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "unit universe too large")]
    fn oversized_configurations_are_rejected() {
        let g = random_labeled_digraph(
            5,
            10,
            16,
            LabelDistribution::Uniform,
            &mut SmallRng::seed_from_u64(1),
        );
        let _ = RlcIndex::build(&g, 3);
    }
}
