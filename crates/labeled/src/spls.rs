//! Sufficient path-label sets (§4.1).
//!
//! The two foundations of LCR indexing, due to Jin et al. \[21\]:
//!
//! 1. *redundancy* — if two `s`–`t` paths have label sets `S1 ⊆ S2`,
//!    recording `S1` suffices (`S2` is redundant). The non-redundant
//!    sets form an antichain under `⊆`, which [`SplsSet`] maintains;
//! 2. *transitivity* — the SPLSs from `s` to `t` arise as the
//!    pairwise unions ("cross product") of the SPLSs `s → u` and
//!    `u → t` ([`SplsSet::cross_product`]).

use reach_graph::LabelSet;

/// A minimal antichain of label sets: no member is a subset of another.
///
/// With ≤64 labels each member is one `u64`, so subset checks are a
/// single mask operation. Members are kept sorted by `(popcount, bits)`
/// for deterministic iteration.
///
/// ```
/// use reach_graph::{Label, LabelSet};
/// use reach_labeled::SplsSet;
///
/// let mut spls = SplsSet::new();
/// spls.insert(LabelSet::from_labels([Label(0), Label(1)]));
/// spls.insert(LabelSet::singleton(Label(0))); // evicts its superset
/// assert_eq!(spls.len(), 1);
/// assert!(spls.satisfies(LabelSet::from_labels([Label(0), Label(2)])));
/// assert!(!spls.satisfies(LabelSet::singleton(Label(1))));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SplsSet {
    sets: Vec<LabelSet>,
}

impl SplsSet {
    /// The empty family (no path known).
    pub fn new() -> Self {
        SplsSet::default()
    }

    /// The family containing just `s`.
    pub fn singleton(s: LabelSet) -> Self {
        SplsSet { sets: vec![s] }
    }

    /// Inserts `s`, dropping it if some member is a subset of it and
    /// evicting members it is a subset of. Returns `true` if the
    /// family changed (i.e. `s` was genuinely new information).
    pub fn insert(&mut self, s: LabelSet) -> bool {
        for &m in &self.sets {
            if m.is_subset_of(s) {
                return false; // s is redundant
            }
        }
        self.sets.retain(|&m| !s.is_subset_of(m));
        let pos = self
            .sets
            .partition_point(|&m| (m.len(), m.0) < (s.len(), s.0));
        self.sets.insert(pos, s);
        true
    }

    /// Whether some recorded path-label set fits inside `allowed` —
    /// the LCR query test.
    pub fn satisfies(&self, allowed: LabelSet) -> bool {
        // members are sorted by popcount: once a member is larger than
        // the allowance it could still fit (different labels), so a
        // full scan is required — but the antichain is tiny in practice
        self.sets.iter().any(|&m| m.is_subset_of(allowed))
    }

    /// Whether the family already implies `s` (has a member `⊆ s`).
    pub fn dominates(&self, s: LabelSet) -> bool {
        self.sets.iter().any(|&m| m.is_subset_of(s))
    }

    /// The transitivity step: the minimal antichain of `a ∪ b` over all
    /// members `a` of `self` and `b` of `other`.
    pub fn cross_product(&self, other: &SplsSet) -> SplsSet {
        let mut out = SplsSet::new();
        for &a in &self.sets {
            for &b in &other.sets {
                out.insert(a.union(b));
            }
        }
        out
    }

    /// Merges another family in, keeping minimality. Returns `true` if
    /// anything changed.
    pub fn merge(&mut self, other: &SplsSet) -> bool {
        let mut changed = false;
        for &s in &other.sets {
            changed |= self.insert(s);
        }
        changed
    }

    /// The members, sorted by `(popcount, bits)`.
    pub fn sets(&self) -> &[LabelSet] {
        &self.sets
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no path is recorded.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::Label;

    fn ls(bits: &[u8]) -> LabelSet {
        LabelSet::from_labels(bits.iter().map(|&b| Label(b)))
    }

    #[test]
    fn insert_keeps_antichain() {
        let mut f = SplsSet::new();
        assert!(f.insert(ls(&[0, 1])));
        assert!(f.insert(ls(&[2])));
        // superset of {2}: redundant
        assert!(!f.insert(ls(&[2, 3])));
        assert_eq!(f.len(), 2);
        // subset of {0,1}: evicts it
        assert!(f.insert(ls(&[0])));
        assert_eq!(f.len(), 2);
        assert!(f.sets().contains(&ls(&[0])));
        assert!(!f.sets().contains(&ls(&[0, 1])));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut f = SplsSet::singleton(ls(&[1]));
        assert!(!f.insert(ls(&[1])));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn satisfies_checks_subset() {
        let mut f = SplsSet::new();
        f.insert(ls(&[0, 2]));
        f.insert(ls(&[1]));
        assert!(f.satisfies(ls(&[1, 3])));
        assert!(f.satisfies(ls(&[0, 2])));
        assert!(!f.satisfies(ls(&[0])));
        assert!(!f.satisfies(ls(&[3])));
        assert!(!SplsSet::new().satisfies(ls(&[0, 1, 2])));
    }

    #[test]
    fn empty_set_member_satisfies_everything() {
        let f = SplsSet::singleton(LabelSet::EMPTY);
        assert!(f.satisfies(LabelSet::EMPTY));
        assert!(f.satisfies(ls(&[5])));
    }

    #[test]
    fn cross_product_is_pairwise_union() {
        // the paper's example: SPLS(A→L) = {follows}, SPLS(L→M) =
        // {worksFor} ⇒ SPLS(A→M) = {follows, worksFor}
        let a_l = SplsSet::singleton(ls(&[1]));
        let l_m = SplsSet::singleton(ls(&[2]));
        let a_m = a_l.cross_product(&l_m);
        assert_eq!(a_m.sets(), &[ls(&[1, 2])]);
    }

    #[test]
    fn cross_product_minimizes() {
        let mut left = SplsSet::new();
        left.insert(ls(&[0]));
        left.insert(ls(&[1]));
        let mut right = SplsSet::new();
        right.insert(ls(&[0]));
        right.insert(ls(&[1, 2]));
        let prod = left.cross_product(&right);
        // {0}∪{0}={0} dominates {0}∪{1,2}={0,1,2} and {1}∪{0}={0,1}
        assert!(prod.sets().contains(&ls(&[0])));
        assert!(!prod.sets().contains(&ls(&[0, 1, 2])));
    }

    #[test]
    fn merge_accumulates_minimally() {
        let mut f = SplsSet::singleton(ls(&[0, 1]));
        let g = SplsSet::singleton(ls(&[1]));
        assert!(f.merge(&g));
        assert_eq!(f.sets(), &[ls(&[1])]);
        assert!(!f.merge(&g), "second merge changes nothing");
    }

    #[test]
    fn members_sorted_by_popcount() {
        let mut f = SplsSet::new();
        f.insert(ls(&[0, 3]));
        f.insert(ls(&[1]));
        f.insert(ls(&[2, 4]));
        let lens: Vec<usize> = f.sets().iter().map(|s| s.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
    }
}
