//! P2H+ \[33\]: 2-hop labeling with sufficient path-label sets (§4.1.3).
//!
//! The 2-hop framework carries over to LCR queries by attaching an
//! SPLS to every label entry: `(h, S) ∈ Lout(s)` certifies an `s → h`
//! path with label set `S`, and a query `Qr(s, t, α)` succeeds iff a
//! common hop has `S1 ∪ S2 ⊆ α`. Hops are processed in
//! degree-descending order; each hop's label-BFS expands states in
//! ascending label-set size (the paper's prioritization of edges whose
//! labels are already present) and prunes states already covered by
//! higher-priority hops, so the index contains no redundancy.

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework, LcrIndex,
};
use reach_graph::{LabelSet, LabeledGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One label entry: `(hop rank, path-label set)`.
pub(crate) type LabelEntry = (u32, LabelSet);

/// Tests whether `lout_s` and `lin_t` share a hop whose combined label
/// sets fit inside `allowed`. Both lists are sorted by rank.
pub(crate) fn entries_join(lout_s: &[LabelEntry], lin_t: &[LabelEntry], allowed: LabelSet) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < lout_s.len() && j < lin_t.len() {
        let (ri, _) = lout_s[i];
        let (rj, _) = lin_t[j];
        match ri.cmp(&rj) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = lout_s[i..].iter().take_while(|&&(r, _)| r == ri).count() + i;
                let j_end = lin_t[j..].iter().take_while(|&&(r, _)| r == ri).count() + j;
                for &(_, s1) in &lout_s[i..i_end] {
                    if !s1.is_subset_of(allowed) {
                        continue;
                    }
                    for &(_, s2) in &lin_t[j..j_end] {
                        if s1.union(s2).is_subset_of(allowed) {
                            return true;
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    false
}

/// Inserts `(rank, ls)` into a sorted entry list unless a same-rank
/// entry already dominates it; evicts dominated same-rank entries.
/// Returns `true` if inserted.
pub(crate) fn entry_insert(entries: &mut Vec<LabelEntry>, rank: u32, ls: LabelSet) -> bool {
    let seg_start = entries.partition_point(|&(r, _)| r < rank);
    let seg_end = entries.partition_point(|&(r, _)| r <= rank);
    for &(_, existing) in &entries[seg_start..seg_end] {
        if existing.is_subset_of(ls) {
            return false;
        }
    }
    let mut w = seg_start;
    for i in seg_start..seg_end {
        if !ls.is_subset_of(entries[i].1) {
            entries[w] = entries[i];
            w += 1;
        }
    }
    entries.drain(w..seg_end);
    entries.insert(w, (rank, ls));
    true
}

/// Whether `(rank, ls)` is currently present verbatim.
pub(crate) fn entry_present(entries: &[LabelEntry], rank: u32, ls: LabelSet) -> bool {
    let seg = entries.partition_point(|&(r, _)| r < rank);
    entries[seg..]
        .iter()
        .take_while(|&&(r, _)| r == rank)
        .any(|&(_, s)| s == ls)
}

/// The P2H+ index.
///
/// ```
/// use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};
/// use reach_labeled::p2h::P2hPlus;
/// use reach_labeled::LcrIndex;
///
/// // 0 -a-> 1 -b-> 2
/// let g = LabeledGraph::from_edges(3, 2, &[(0, 0, 1), (1, 1, 2)]);
/// let idx = P2hPlus::build(&g);
/// assert!(idx.query(VertexId(0), VertexId(2), LabelSet::full(2)));
/// assert!(!idx.query(VertexId(0), VertexId(2), LabelSet::singleton(Label(0))));
/// ```
pub struct P2hPlus {
    rank_of: Vec<u32>,
    lin: Vec<Vec<LabelEntry>>,
    lout: Vec<Vec<LabelEntry>>,
}

impl P2hPlus {
    /// Builds the index with the degree-descending hop order.
    pub fn build(g: &LabeledGraph) -> Self {
        let n = g.num_vertices();
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        let mut rank_of = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank_of[v.index()] = r as u32;
        }
        let mut idx = P2hPlus {
            rank_of,
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
        };
        for (r, &w) in order.iter().enumerate() {
            idx.labeled_bfs(g, w, r as u32, true);
            idx.labeled_bfs(g, w, r as u32, false);
        }
        idx
    }

    fn labeled_bfs(&mut self, g: &LabeledGraph, w: VertexId, r: u32, forward: bool) {
        let mut heap: BinaryHeap<Reverse<(usize, u64, u32)>> = BinaryHeap::new();
        if self.try_add(w, w, r, LabelSet::EMPTY, forward) {
            heap.push(Reverse((0, 0, w.0)));
        }
        while let Some(Reverse((_, bits, x))) = heap.pop() {
            let x = VertexId(x);
            let ls = LabelSet(bits);
            let table = if forward { &self.lin } else { &self.lout };
            if !entry_present(&table[x.index()], r, ls) {
                continue; // evicted by a smaller set
            }
            if forward {
                for (y, l) in g.out_edges(x) {
                    let nls = ls.insert(l);
                    if self.try_add(w, y, r, nls, true) {
                        heap.push(Reverse((nls.len(), nls.0, y.0)));
                    }
                }
            } else {
                for (y, l) in g.in_edges(x) {
                    let nls = ls.insert(l);
                    if self.try_add(w, y, r, nls, false) {
                        heap.push(Reverse((nls.len(), nls.0, y.0)));
                    }
                }
            }
        }
    }

    /// Attempts to record that hop `w` (rank `r`) reaches `x` (forward)
    /// or is reached from `x` (backward) under label set `ls`.
    fn try_add(&mut self, w: VertexId, x: VertexId, r: u32, ls: LabelSet, forward: bool) -> bool {
        // redundancy pruning: covered by higher-priority hops already
        let covered = if forward {
            entries_join(&self.lout[w.index()], &self.lin[x.index()], ls)
        } else {
            entries_join(&self.lout[x.index()], &self.lin[w.index()], ls)
        };
        if covered {
            return false;
        }
        let table = if forward {
            &mut self.lin
        } else {
            &mut self.lout
        };
        entry_insert(&mut table[x.index()], r, ls)
    }

    /// The in-entries of `x` (sorted by rank).
    pub fn lin(&self, x: VertexId) -> &[LabelEntry] {
        &self.lin[x.index()]
    }

    /// The out-entries of `x` (sorted by rank).
    pub fn lout(&self, x: VertexId) -> &[LabelEntry] {
        &self.lout[x.index()]
    }

    /// The priority rank of `v`.
    pub fn rank_of(&self, v: VertexId) -> u32 {
        self.rank_of[v.index()]
    }
}

impl LcrIndex for P2hPlus {
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        s == t || entries_join(&self.lout[s.index()], &self.lin[t.index()], allowed)
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "P2H+",
            citation: "[33]",
            framework: LcrFramework::TwoHop,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        12 * self.size_entries() + 48 * self.lin.len()
    }

    fn size_entries(&self) -> usize {
        self.lin.iter().map(Vec::len).sum::<usize>() + self.lout.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::lcr_bfs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn check_exact(g: &LabeledGraph) {
        let idx = P2hPlus::build(g);
        let nl = g.num_labels();
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..(1u64 << nl) {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(g, s, t, allowed),
                        "at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check_exact(&fixtures::figure1b());
    }

    #[test]
    fn paper_claims_hold() {
        let g = fixtures::figure1b();
        let idx = P2hPlus::build(&g);
        assert!(!idx.query(
            fixtures::A,
            fixtures::G,
            LabelSet::from_labels([fixtures::FRIEND_OF, fixtures::FOLLOWS])
        ));
        assert!(idx.query(
            fixtures::L,
            fixtures::M,
            LabelSet::singleton(fixtures::WORKS_FOR)
        ));
    }

    #[test]
    fn exact_on_random_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(251);
        for _ in 0..4 {
            check_exact(&random_labeled_digraph(
                25,
                70,
                3,
                LabelDistribution::Uniform,
                &mut rng,
            ));
        }
    }

    #[test]
    fn exact_on_denser_alphabets() {
        let mut rng = SmallRng::seed_from_u64(252);
        check_exact(&random_labeled_digraph(
            18,
            60,
            5,
            LabelDistribution::Zipf,
            &mut rng,
        ));
    }

    #[test]
    fn entries_are_rank_sorted_antichains() {
        let mut rng = SmallRng::seed_from_u64(253);
        let g = random_labeled_digraph(30, 90, 3, LabelDistribution::Uniform, &mut rng);
        let idx = P2hPlus::build(&g);
        for x in g.vertices() {
            for entries in [idx.lin(x), idx.lout(x)] {
                assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "rank sorted");
                for (i, &(ri, si)) in entries.iter().enumerate() {
                    for (j, &(rj, sj)) in entries.iter().enumerate() {
                        if i != j && ri == rj {
                            assert!(!si.is_subset_of(sj), "antichain per rank");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn entry_insert_unit() {
        let mut e: Vec<LabelEntry> = Vec::new();
        assert!(entry_insert(&mut e, 1, LabelSet(0b11)));
        assert!(!entry_insert(&mut e, 1, LabelSet(0b111)), "dominated");
        assert!(entry_insert(&mut e, 1, LabelSet(0b01)), "evicts superset");
        assert_eq!(e, vec![(1, LabelSet(0b01))]);
        assert!(entry_insert(&mut e, 0, LabelSet(0b10)));
        assert_eq!(e[0].0, 0, "sorted by rank");
    }

    #[test]
    fn entries_join_unit() {
        let lout = vec![(1u32, LabelSet(0b01)), (3, LabelSet(0b10))];
        let lin = vec![(2u32, LabelSet(0b01)), (3, LabelSet(0b01))];
        assert!(entries_join(&lout, &lin, LabelSet(0b11)));
        assert!(
            !entries_join(&lout, &lin, LabelSet(0b01)),
            "rank 3 needs both bits"
        );
        assert!(!entries_join(&lout, &[], LabelSet(0b11)));
    }
}
