//! Zou et al. \[48, 56\]: generalized-transitive-closure computation
//! with the label-count Dijkstra and bottom-up sharing (§4.1.2).
//!
//! The fundamental step is the *single-source GTC*: all vertices
//! reachable from a source together with their sufficient path-label
//! sets. The worklist is ordered by the number of distinct labels —
//! the paper's Dijkstra-like simulation of distance (its example:
//! among the two L→H paths of Figure 1(b), the one with 1 distinct
//! label is expanded and the 2-label one ignored).
//!
//! The full index follows the paper's two-part recipe:
//!
//! 1. *"An input graph is first transformed into a DAG, and then the
//!    computation is done by following the topological order of the
//!    DAG so as to share the single-source GTC of vertices in a
//!    bottom-up manner"* — components are processed sinks-first and
//!    every vertex's rows are assembled from its boundary edges'
//!    already-finished targets;
//! 2. *"Each SCC is replaced by a bipartite graph with in-portal and
//!    out-portal vertices … the SPLSs from in-portal to out-portal
//!    vertices are computed and recorded"* — realized here as per-SCC
//!    all-pairs GTCs over the induced subgraph (correct because an
//!    intra-SCC path can never leave its component and return: the
//!    condensation is acyclic), which serve as the portal-to-portal
//!    SPLS tables joining intra- and inter-component segments.

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework, LcrIndex,
};
use crate::spls::SplsSet;
use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the single-source GTC from `s`: for every vertex, the
/// minimal antichain of path-label sets of `s`-to-it paths
/// (`spls[s] = {∅}` for the empty path).
///
/// States are expanded in ascending distinct-label count, so every
/// popped state that survives the dominance check is a genuine SPLS
/// and redundant label sets are never expanded.
pub fn single_source_gtc(g: &LabeledGraph, s: VertexId) -> Vec<SplsSet> {
    let mut rows: Vec<SplsSet> = vec![SplsSet::new(); g.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(usize, u64, u32)>> = BinaryHeap::new();
    rows[s.index()].insert(LabelSet::EMPTY);
    heap.push(Reverse((0, 0, s.0)));
    while let Some(Reverse((len, bits, v))) = heap.pop() {
        let ls = LabelSet(bits);
        let v = VertexId(v);
        // stale heap entry: a smaller set has since dominated this one
        if !rows[v.index()].sets().contains(&ls) {
            continue;
        }
        let _ = len;
        for (w, l) in g.out_edges(v) {
            let nls = ls.insert(l);
            if rows[w.index()].insert(nls) {
                heap.push(Reverse((nls.len(), nls.0, w.0)));
            }
        }
    }
    rows
}

/// The labeled subgraph induced by `group`, with local vertex ids
/// following `group`'s order (the per-SCC "portal" computation space).
fn induced_subgraph(g: &LabeledGraph, group: &[VertexId]) -> LabeledGraph {
    let mut local_of = std::collections::HashMap::with_capacity(group.len());
    for (i, &v) in group.iter().enumerate() {
        local_of.insert(v, i as u32);
    }
    let mut b = reach_graph::LabeledGraphBuilder::new(group.len(), g.num_labels());
    for &v in group {
        for (w, l) in g.out_edges(v) {
            if let Some(&lw) = local_of.get(&w) {
                b.add_edge(VertexId(local_of[&v]), l, VertexId(lw));
            }
        }
    }
    b.build()
}

/// The Zou et al. LCR index: one SPLS row per (source, target) pair.
pub struct ZouIndex {
    /// `rows[s][t]`: minimal SPLS antichain of s→t paths.
    rows: Vec<Vec<SplsSet>>,
    /// retained for dynamic maintenance
    edges: Vec<(VertexId, Label, VertexId)>,
    num_labels: usize,
}

impl ZouIndex {
    /// Builds the index: SCC portal transformation plus bottom-up
    /// sharing along the condensation's topological order. On a DAG
    /// every component is a singleton and this reduces to plain
    /// reverse-topological sharing.
    pub fn build(g: &LabeledGraph) -> Self {
        let n = g.num_vertices();
        let plain = g.to_digraph();
        let scc = reach_graph::scc::tarjan_scc(&plain);
        let nc = scc.num_components();
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); nc];
        for v in g.vertices() {
            members[scc.component_of(v) as usize].push(v);
        }

        let mut rows: Vec<Vec<SplsSet>> = vec![vec![SplsSet::new(); n]; n];
        // Tarjan numbers components in reverse topological order, so
        // ascending component id = sinks first: every boundary edge
        // from component c points into an already-finished component.
        #[allow(clippy::needless_range_loop)] // c is a component id, not a position
        for c in 0..nc {
            let group = &members[c];
            if group.len() == 1 {
                let v = group[0];
                rows[v.index()][v.index()].insert(LabelSet::EMPTY);
            } else {
                // portal table: all-pairs SPLSs inside the SCC (an
                // intra-SCC path cannot leave and return)
                let local = induced_subgraph(g, group);
                for (li, &v) in group.iter().enumerate() {
                    let local_rows = single_source_gtc(&local, VertexId::new(li));
                    for (lj, &x) in group.iter().enumerate() {
                        rows[v.index()][x.index()] = local_rows[lj].clone();
                    }
                }
            }
            // boundary edges: SPLS(v→x) ⊇ SPLS_C(v→q) × {l} × SPLS(w→x)
            for &q in group {
                for (w, l) in g.out_edges(q) {
                    if scc.component_of(w) as usize == c {
                        continue;
                    }
                    let unit = LabelSet::singleton(l);
                    for &v in group {
                        if rows[v.index()][q.index()].is_empty() {
                            continue;
                        }
                        let prefix =
                            rows[v.index()][q.index()].cross_product(&SplsSet::singleton(unit));
                        for x in 0..n {
                            if rows[w.index()][x].is_empty() {
                                continue;
                            }
                            let via = prefix.cross_product(&rows[w.index()][x]);
                            rows[v.index()][x].merge(&via);
                        }
                    }
                }
            }
        }
        ZouIndex {
            rows,
            edges: g.edges().collect(),
            num_labels: g.num_labels(),
        }
    }

    /// The SPLS antichain recorded for the pair `(s, t)`.
    pub fn spls(&self, s: VertexId, t: VertexId) -> &SplsSet {
        &self.rows[s.index()][t.index()]
    }

    fn rebuild_from_edges(&mut self) {
        let n = self.rows.len();
        let mut b = reach_graph::LabeledGraphBuilder::new(n, self.num_labels);
        for &(u, l, v) in &self.edges {
            b.add_edge(u, l, v);
        }
        *self = ZouIndex::build(&b.build());
    }

    /// Inserts a labeled edge, propagating new SPLSs to fixpoint.
    pub fn insert_edge(&mut self, u: VertexId, l: Label, v: VertexId) {
        if self.edges.contains(&(u, l, v)) {
            return;
        }
        self.edges.push((u, l, v));
        // monotone fixpoint: rows only gain (smaller) label sets
        let n = self.rows.len();
        let unit = LabelSet::singleton(l);
        let mut changed = true;
        while changed {
            changed = false;
            for a in 0..n {
                if self.rows[a][u.index()].is_empty() {
                    continue;
                }
                let prefix = self.rows[a][u.index()].clone();
                for x in 0..n {
                    if self.rows[v.index()][x].is_empty() {
                        continue;
                    }
                    let suffix = self.rows[v.index()][x].clone();
                    let via = prefix
                        .cross_product(&SplsSet::singleton(unit))
                        .cross_product(&suffix);
                    changed |= self.rows[a][x].merge(&via);
                }
            }
        }
    }

    /// Deletes a labeled edge. SPLSs can shrink arbitrarily, so the
    /// affected rows are recomputed (the survey notes maintenance on
    /// deletion is the hard direction for GTC-based indexes).
    pub fn delete_edge(&mut self, u: VertexId, l: Label, v: VertexId) {
        if let Some(p) = self.edges.iter().position(|&e| e == (u, l, v)) {
            self.edges.remove(p);
            self.rebuild_from_edges();
        }
    }
}

impl LcrIndex for ZouIndex {
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        s == t || self.rows[s.index()][t.index()].satisfies(allowed)
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "Zou et al.",
            citation: "[48,56]",
            framework: LcrFramework::Gtc,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::InsertDelete,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.size_entries() + 24 * self.rows.len() * self.rows.len()
    }

    fn size_entries(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|row| row.iter())
            .map(|s| s.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::lcr_bfs;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use reach_graph::fixtures::{self, C, D, FOLLOWS, FRIEND_OF, H, K, L, WORKS_FOR};
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn check_exact(g: &LabeledGraph, idx: &ZouIndex) {
        let k = g.num_labels();
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..(1u64 << k) {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(g, s, t, allowed),
                        "mismatch at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn papers_dijkstra_example() {
        // From L, H is reachable via p3 (worksFor, worksFor) — one
        // distinct label — and p4 (worksFor, friendOf) — two. The
        // single-source GTC from L must record {worksFor} as the SPLS
        // and ignore the 2-label alternative.
        let g = fixtures::figure1b();
        let rows = single_source_gtc(&g, L);
        assert_eq!(rows[H.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
        // sanity: direct neighbors
        assert_eq!(rows[C.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
        assert_eq!(rows[K.index()].sets(), &[LabelSet::singleton(FOLLOWS)]);
        assert_eq!(rows[D.index()].sets(), &[LabelSet::singleton(WORKS_FOR)]);
    }

    #[test]
    fn papers_spls_examples() {
        let g = fixtures::figure1b();
        let idx = ZouIndex::build(&g);
        // SPLS(L→M) = {worksFor}: p1 dominates p2
        assert_eq!(
            idx.spls(L, fixtures::M).sets(),
            &[LabelSet::singleton(WORKS_FOR)]
        );
        // SPLS(A→M) = {follows, worksFor}
        assert_eq!(
            idx.spls(fixtures::A, fixtures::M).sets(),
            &[LabelSet::from_labels([FOLLOWS, WORKS_FOR])]
        );
        // Qr(A, G, (friendOf ∪ follows)*) = false
        assert!(!idx.query(
            fixtures::A,
            fixtures::G,
            LabelSet::from_labels([FRIEND_OF, FOLLOWS])
        ));
    }

    #[test]
    fn exact_on_figure1() {
        let g = fixtures::figure1b();
        check_exact(&g, &ZouIndex::build(&g));
    }

    #[test]
    fn exact_on_random_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(201);
        for _ in 0..3 {
            let g = random_labeled_digraph(25, 70, 3, LabelDistribution::Uniform, &mut rng);
            check_exact(&g, &ZouIndex::build(&g));
        }
    }

    #[test]
    fn dag_sharing_agrees_with_per_source() {
        let mut rng = SmallRng::seed_from_u64(202);
        let g = reach_graph::generators::random_labeled_dag(
            30,
            70,
            3,
            LabelDistribution::Uniform,
            &mut rng,
        );
        let idx = ZouIndex::build(&g);
        for s in g.vertices() {
            let rows = single_source_gtc(&g, s);
            for t in g.vertices() {
                assert_eq!(idx.spls(s, t), &rows[t.index()], "row {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn insertions_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(203);
        let g = random_labeled_digraph(15, 25, 3, LabelDistribution::Uniform, &mut rng);
        let mut idx = ZouIndex::build(&g);
        let mut edges: Vec<(u32, u8, u32)> = g.edges().map(|(u, l, v)| (u.0, l.0, v.0)).collect();
        for _ in 0..10 {
            let u = rng.random_range(0..15u32);
            let mut v = rng.random_range(0..14u32);
            if v >= u {
                v += 1;
            }
            let l = rng.random_range(0..3u8);
            idx.insert_edge(VertexId(u), Label(l), VertexId(v));
            if !edges.contains(&(u, l, v)) {
                edges.push((u, l, v));
            }
            let g2 = LabeledGraph::from_edges(15, 3, &edges);
            check_exact(&g2, &idx);
        }
    }

    #[test]
    fn deletions_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(204);
        let g = random_labeled_digraph(12, 35, 3, LabelDistribution::Uniform, &mut rng);
        let mut idx = ZouIndex::build(&g);
        let mut edges: Vec<(u32, u8, u32)> = g.edges().map(|(u, l, v)| (u.0, l.0, v.0)).collect();
        for _ in 0..8 {
            if edges.is_empty() {
                break;
            }
            let i = rng.random_range(0..edges.len());
            let (u, l, v) = edges.swap_remove(i);
            idx.delete_edge(VertexId(u), Label(l), VertexId(v));
            let g2 = LabeledGraph::from_edges(12, 3, &edges);
            check_exact(&g2, &idx);
        }
    }
}
