//! Chen & Singh \[12\]: spanning-tree decomposition with a non-tree
//! summary (§4.1.1).
//!
//! The approach decomposes the graph into a tree-like structure `T`
//! (answered by interval labels + root-path label counts, as in
//! [`crate::jin`]) and a summary holding exactly the edges that can
//! transfer reachability *across* subtrees. Here the recursion is
//! realized at depth one: queries chain non-tree edges through the
//! summary online, checking each tree segment against the label
//! constraint in O(|L|) via the count trick — trading the partial GTC
//! of Jin et al. for a smaller index and more query-time work, which
//! is precisely the design axis §4.1.1 contrasts.

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework, LcrIndex,
};
use reach_graph::{Label, LabelSet, LabeledGraph, ScratchPool, VertexId};

/// The Chen & Singh LCR index (one-level decomposition).
pub struct ChenIndex {
    start: Vec<u32>,
    end: Vec<u32>,
    counts: Vec<Vec<u16>>,
    /// summary: non-tree edges sorted by the tail's post-order number,
    /// so the hops available inside a subtree form a contiguous range
    summary: Vec<(u32, VertexId, Label, VertexId)>,
    num_labels: usize,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    seen: Vec<bool>,
    stack: Vec<VertexId>,
}

impl ChenIndex {
    /// Builds the index over a general edge-labeled graph.
    pub fn build(g: &LabeledGraph) -> Self {
        let n = g.num_vertices();
        let k = g.num_labels();
        let mut visited = vec![false; n];
        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut counts: Vec<Vec<u16>> = vec![vec![0; k]; n];
        let mut non_tree: Vec<(VertexId, Label, VertexId)> = Vec::new();
        let mut counter = 0u32;

        struct Frame {
            v: VertexId,
            edges: Vec<(VertexId, Label)>,
            cursor: usize,
            entry: u32,
        }
        let mut stack: Vec<Frame> = Vec::new();
        for root in g.vertices() {
            if visited[root.index()] {
                continue;
            }
            visited[root.index()] = true;
            stack.push(Frame {
                v: root,
                edges: g.out_edges(root).collect(),
                cursor: 0,
                entry: counter,
            });
            while let Some(top) = stack.last_mut() {
                if top.cursor < top.edges.len() {
                    let (w, l) = top.edges[top.cursor];
                    let v = top.v;
                    top.cursor += 1;
                    if visited[w.index()] {
                        non_tree.push((v, l, w));
                    } else {
                        visited[w.index()] = true;
                        counts[w.index()] = counts[v.index()].clone();
                        counts[w.index()][l.index()] += 1;
                        stack.push(Frame {
                            v: w,
                            edges: g.out_edges(w).collect(),
                            cursor: 0,
                            entry: counter,
                        });
                    }
                } else {
                    counter += 1;
                    start[top.v.index()] = top.entry + 1;
                    end[top.v.index()] = counter;
                    stack.pop();
                }
            }
        }
        let mut summary: Vec<(u32, VertexId, Label, VertexId)> = non_tree
            .into_iter()
            .map(|(u, l, v)| (end[u.index()], u, l, v))
            .collect();
        summary.sort_unstable_by_key(|&(post, ..)| post);
        ChenIndex {
            start,
            end,
            counts,
            summary,
            num_labels: k,
            scratch: ScratchPool::new(),
        }
    }

    #[inline]
    fn tree_contains(&self, s: VertexId, t: VertexId) -> bool {
        self.start[s.index()] <= self.end[t.index()] && self.end[t.index()] <= self.end[s.index()]
    }

    /// Tree segment check: `t` in `s`'s subtree with path labels ⊆ allowed.
    fn tree_segment_ok(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        if !self.tree_contains(s, t) {
            return false;
        }
        for l in 0..self.num_labels {
            if self.counts[t.index()][l] > self.counts[s.index()][l]
                && !allowed.contains(Label(l as u8))
            {
                return false;
            }
        }
        true
    }

    /// Summary edges whose tail lies in `w`'s subtree.
    fn summary_in_subtree(&self, w: VertexId) -> &[(u32, VertexId, Label, VertexId)] {
        let lo = self.start[w.index()];
        let hi = self.end[w.index()];
        let a = self.summary.partition_point(|&(post, ..)| post < lo);
        let b = self.summary.partition_point(|&(post, ..)| post <= hi);
        &self.summary[a..b]
    }

    /// Number of summary (non-tree) edges.
    pub fn summary_size(&self) -> usize {
        self.summary.len()
    }
}

impl LcrIndex for ChenIndex {
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        if s == t {
            return true;
        }
        let scratch = &mut *self.scratch.checkout(|| Scratch {
            seen: vec![false; self.start.len()],
            stack: Vec::new(),
        });
        scratch.seen.iter_mut().for_each(|b| *b = false);
        scratch.stack.clear();
        scratch.stack.push(s);
        scratch.seen[s.index()] = true;
        while let Some(x) = scratch.stack.pop() {
            if self.tree_segment_ok(x, t, allowed) {
                return true;
            }
            for &(_, u, l, v) in self.summary_in_subtree(x) {
                if !allowed.contains(l) || scratch.seen[v.index()] {
                    continue;
                }
                if self.tree_segment_ok(x, u, allowed) {
                    scratch.seen[v.index()] = true;
                    scratch.stack.push(v);
                }
            }
        }
        false
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "Chen et al.",
            citation: "[12]",
            framework: LcrFramework::TreeCover,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.start.len() + 2 * self.num_labels * self.counts.len() + 16 * self.summary.len()
    }

    fn size_entries(&self) -> usize {
        self.counts.len() + self.summary.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::lcr_bfs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn check_exact(g: &LabeledGraph) {
        let idx = ChenIndex::build(g);
        let nl = g.num_labels();
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..(1u64 << nl) {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(g, s, t, allowed),
                        "at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check_exact(&fixtures::figure1b());
    }

    #[test]
    fn exact_on_random_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(241);
        for _ in 0..3 {
            check_exact(&random_labeled_digraph(
                25,
                70,
                3,
                LabelDistribution::Zipf,
                &mut rng,
            ));
        }
    }

    #[test]
    fn index_is_much_smaller_than_jin() {
        // the design axis: Chen trades the partial GTC for query work
        let mut rng = SmallRng::seed_from_u64(242);
        let g = random_labeled_digraph(50, 150, 4, LabelDistribution::Uniform, &mut rng);
        let chen = ChenIndex::build(&g);
        let jin = crate::jin::JinIndex::build(&g);
        assert!(chen.size_bytes() < jin.size_bytes());
    }

    #[test]
    fn summary_slice_matches_linear_scan() {
        let g = fixtures::figure1b();
        let idx = ChenIndex::build(&g);
        for w in g.vertices() {
            let slice = idx.summary_in_subtree(w);
            let expect = idx
                .summary
                .iter()
                .filter(|&&(_, u, _, _)| idx.tree_contains(w, u))
                .count();
            assert_eq!(slice.len(), expect);
        }
    }

    #[test]
    fn pure_tree_graph_has_empty_summary() {
        let g = LabeledGraph::from_edges(5, 2, &[(0, 0, 1), (0, 1, 2), (1, 0, 3), (1, 1, 4)]);
        let idx = ChenIndex::build(&g);
        assert_eq!(idx.summary_size(), 0);
        check_exact(&g);
    }
}
