//! The labeled side of the index-invariant audit subsystem.
//!
//! Path-constrained indexes answer `Qr(s, t, (l1 ∪ l2 ∪ …)*)`; their
//! invariants are behavioral rather than interval-shaped, so the audit
//! here is a sampled differential against the online label-constrained
//! BFS of §2.3, plus two structural laws every LCR oracle must obey:
//! *reflexivity* (the empty path satisfies any constraint) and
//! *monotonicity* (enlarging the allowed label set can only add
//! reachable pairs). Per-technique structural hooks plug in via
//! [`LcrIndex::check_invariants`].

use crate::lcr::LcrIndex;
use crate::online::lcr_bfs;
use crate::pipeline::{lcr_spec, LcrSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_core::audit::{AuditConfig, AuditOutcome, Violation};
use reach_core::pipeline::BuildOpts;
use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};
use std::sync::Arc;

/// Caps per finding category, mirroring the plain-side audit.
const MAX_PER_RULE: usize = 5;

/// Audits a built LCR index against `g`: sampled differential vs the
/// online constrained BFS (with empty, full, and random label masks),
/// reflexivity under the empty constraint, label-set monotonicity on
/// sampled triples, and the index's own structural
/// [`check_invariants`](LcrIndex::check_invariants) hook.
pub fn audit_lcr_index(idx: &dyn LcrIndex, g: &LabeledGraph, cfg: &AuditConfig) -> AuditOutcome {
    let name = idx.meta().name;
    let mut violations = Vec::new();
    let triples = sample_triples(g, cfg);

    // Differential: agree with the §2.3 online baseline on every
    // sampled (s, t, allowed) triple.
    let mut false_pos = 0usize;
    let mut false_neg = 0usize;
    for &(s, t, allowed) in &triples {
        let claimed = idx.query(s, t, allowed);
        let truth = lcr_bfs(g, s, t, allowed);
        if claimed == truth {
            continue;
        }
        if claimed {
            false_pos += 1;
            if false_pos <= MAX_PER_RULE {
                violations.push(Violation {
                    index: name,
                    rule: "lcr-soundness",
                    detail: format!(
                        "claims {s:?} reaches {t:?} under {allowed:?}, but no such path exists"
                    ),
                });
            }
        } else {
            false_neg += 1;
            if false_neg <= MAX_PER_RULE {
                violations.push(Violation {
                    index: name,
                    rule: "lcr-completeness",
                    detail: format!(
                        "denies {s:?} reaches {t:?} under {allowed:?}, but a path exists"
                    ),
                });
            }
        }
    }
    overflow_note(name, "lcr-soundness", false_pos, &mut violations);
    overflow_note(name, "lcr-completeness", false_neg, &mut violations);

    // Reflexivity: the empty path satisfies every constraint, even the
    // empty label set.
    for v in reach_core::audit::sample_vertices(g.num_vertices(), 64) {
        if !idx.query(v, v, LabelSet::EMPTY) {
            violations.push(Violation {
                index: name,
                rule: "lcr-self",
                detail: format!("{v:?} does not reach itself under the empty constraint"),
            });
        }
    }

    // Monotonicity: reachable under `a` implies reachable under any
    // superset of `a`.
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let full = LabelSet::full(g.num_labels());
    let mut non_monotone = 0usize;
    for &(s, t, a) in &triples {
        if !idx.query(s, t, a) {
            continue;
        }
        let wider = LabelSet(a.0 | (rng.random_range(0..=u64::MAX) & full.0));
        if !idx.query(s, t, wider) {
            non_monotone += 1;
            if non_monotone <= MAX_PER_RULE {
                violations.push(Violation {
                    index: name,
                    rule: "lcr-monotonicity",
                    detail: format!(
                        "{s:?} reaches {t:?} under {a:?} but not under the superset {wider:?}"
                    ),
                });
            }
        }
    }
    overflow_note(name, "lcr-monotonicity", non_monotone, &mut violations);

    // Per-technique structural invariants.
    violations.extend(idx.check_invariants(g));

    AuditOutcome {
        name,
        pairs_checked: triples.len(),
        violations,
    }
}

/// Builds `spec` over `g` and audits the result.
pub fn audit_lcr_spec(
    spec: &LcrSpec,
    g: &Arc<LabeledGraph>,
    opts: &BuildOpts,
    cfg: &AuditConfig,
) -> AuditOutcome {
    let idx = (spec.build)(g, opts);
    audit_lcr_index(idx.as_ref(), g, cfg)
}

/// [`audit_lcr_spec`] by registry name; `None` for unknown names.
pub fn audit_lcr(
    name: &str,
    g: &Arc<LabeledGraph>,
    opts: &BuildOpts,
    cfg: &AuditConfig,
) -> Option<AuditOutcome> {
    lcr_spec(name).map(|spec| audit_lcr_spec(spec, g, opts, cfg))
}

fn overflow_note(index: &'static str, rule: &'static str, count: usize, out: &mut Vec<Violation>) {
    if count > MAX_PER_RULE {
        out.push(Violation {
            index,
            rule,
            detail: format!("... and {} more such triples", count - MAX_PER_RULE),
        });
    }
}

/// Seeded triple sample: half uniform targets, half manufactured
/// positives (short random constrained walks whose traversed labels
/// seed the mask). Masks cycle through empty, full, and random subsets
/// so both degenerate constraints stay covered.
fn sample_triples(g: &LabeledGraph, cfg: &AuditConfig) -> Vec<(VertexId, VertexId, LabelSet)> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let full = LabelSet::full(g.num_labels());
    let mut triples = Vec::with_capacity(cfg.pairs);
    while triples.len() < cfg.pairs {
        let s = VertexId(rng.random_range(0..n as u32));
        let mask = match triples.len() % 4 {
            0 => LabelSet::EMPTY,
            1 => full,
            _ => LabelSet(rng.random_range(0..=u64::MAX) & full.0),
        };
        if triples.len() % 2 == 0 {
            triples.push((s, VertexId(rng.random_range(0..n as u32)), mask));
        } else {
            // walk forward along allowed-by-construction edges,
            // accumulating their labels into the mask
            let mut cur = s;
            let mut walked = mask;
            for _ in 0..rng.random_range(1..6usize) {
                let outs: Vec<(VertexId, Label)> = g.out_edges(cur).collect();
                if outs.is_empty() {
                    break;
                }
                let (next, l) = outs[rng.random_range(0..outs.len())];
                walked = walked.insert(l);
                cur = next;
            }
            triples.push((s, cur, walked));
        }
    }
    triples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcr::{
        Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework,
    };
    use crate::pipeline::{lcr_feasible, lcr_names};
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn meta(name: &'static str) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name,
            citation: "[-]",
            framework: LcrFramework::Gtc,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    /// Ground truth that forgets one label: paths needing it vanish.
    struct DropsLabel {
        g: LabeledGraph,
        dropped: Label,
    }

    impl LcrIndex for DropsLabel {
        fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
            let narrowed = LabelSet(allowed.0 & !LabelSet::singleton(self.dropped).0);
            lcr_bfs(&self.g, s, t, narrowed)
        }
        fn meta(&self) -> LabeledIndexMeta {
            meta("DropsLabel")
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn size_entries(&self) -> usize {
            0
        }
    }

    #[test]
    fn audit_catches_a_dropped_label() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = random_labeled_digraph(40, 120, 3, LabelDistribution::Uniform, &mut rng);
        let idx = DropsLabel {
            g: g.clone(),
            dropped: Label(0),
        };
        let outcome = audit_lcr_index(&idx, &g, &AuditConfig::default());
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.rule == "lcr-completeness"));
    }

    #[test]
    fn every_lcr_registry_index_audits_clean() {
        let mut rng = SmallRng::seed_from_u64(22);
        let g = Arc::new(random_labeled_digraph(
            60,
            180,
            3,
            LabelDistribution::Uniform,
            &mut rng,
        ));
        let opts = BuildOpts::default();
        let cfg = AuditConfig {
            pairs: 300,
            seed: 23,
        };
        for name in lcr_names() {
            if !lcr_feasible(name, g.num_vertices()) {
                continue;
            }
            let outcome = audit_lcr(name, &g, &opts, &cfg).expect("registry name");
            assert!(
                outcome.is_clean(),
                "{name} violations: {:#?}",
                outcome.violations
            );
        }
    }

    #[test]
    fn unknown_names_are_not_audited() {
        let g = Arc::new(LabeledGraph::from_edges(2, 1, &[(0, 0, 1)]));
        assert!(audit_lcr(
            "no such index",
            &g,
            &BuildOpts::default(),
            &AuditConfig::default()
        )
        .is_none());
    }
}
