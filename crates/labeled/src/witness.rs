//! Witness-path extraction: the paths behind a `true` answer.
//!
//! Reachability indexes answer *whether* an `s`–`t` path exists; real
//! deployments (the survey's fraud-detection and biology use cases in
//! §2.2) usually need to show *which* path. These helpers recover a
//! shortest witness for each query class, so any index answer can be
//! explained or audited.

use crate::constraint::Nfa;
use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};

/// A witness path: the visited vertices and the labels of the edges
/// between them (`labels.len() + 1 == vertices.len()`, both empty-free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Vertices in path order, starting at the source.
    pub vertices: Vec<VertexId>,
    /// Edge labels in path order.
    pub labels: Vec<Label>,
}

impl Witness {
    /// Number of edges on the path.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the empty (single-vertex) path.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label set of the path (an SPLS candidate).
    pub fn label_set(&self) -> LabelSet {
        LabelSet::from_labels(self.labels.iter().copied())
    }
}

/// Shortest witness for a plain reachability query (`None` if `t` is
/// unreachable from `s`; the empty witness for `s == t`).
pub fn plain_witness(g: &LabeledGraph, s: VertexId, t: VertexId) -> Option<Witness> {
    if s == t {
        return Some(Witness {
            vertices: vec![s],
            labels: vec![],
        });
    }
    lcr_witness(g, s, t, LabelSet::full(g.num_labels()))
}

/// Shortest witness for an alternation (LCR) query: a path using only
/// labels in `allowed`.
pub fn lcr_witness(
    g: &LabeledGraph,
    s: VertexId,
    t: VertexId,
    allowed: LabelSet,
) -> Option<Witness> {
    if s == t {
        return Some(Witness {
            vertices: vec![s],
            labels: vec![],
        });
    }
    let n = g.num_vertices();
    // predecessor[v] = (prev vertex, label) on the BFS tree
    let mut pred: Vec<Option<(VertexId, Label)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[s.index()] = true;
    let mut queue = vec![s];
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for (v, l) in g.out_edges(u) {
            if !allowed.contains(l) || seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            pred[v.index()] = Some((u, l));
            if v == t {
                return Some(unwind(&pred, s, t));
            }
            queue.push(v);
        }
    }
    None
}

/// Shortest witness for a concatenation (RLC) query: a path whose
/// label sequence is one or more full repetitions of `unit`.
pub fn rlc_witness(g: &LabeledGraph, s: VertexId, t: VertexId, unit: &[Label]) -> Option<Witness> {
    assert!(!unit.is_empty());
    if s == t {
        return Some(Witness {
            vertices: vec![s],
            labels: vec![],
        });
    }
    let k = unit.len();
    let n = g.num_vertices();
    let mut pred: Vec<Option<(VertexId, usize, Label)>> = vec![None; n * k];
    let mut seen = vec![false; n * k];
    seen[s.index() * k] = true;
    let mut queue = vec![(s, 0usize)];
    let mut head = 0;
    while head < queue.len() {
        let (u, phase) = queue[head];
        head += 1;
        let want = unit[phase];
        let next = (phase + 1) % k;
        for (v, l) in g.out_edges(u) {
            if l != want || seen[v.index() * k + next] {
                continue;
            }
            seen[v.index() * k + next] = true;
            pred[v.index() * k + next] = Some((u, phase, l));
            if v == t && next == 0 {
                return Some(unwind_phased(&pred, s, t, k));
            }
            queue.push((v, next));
        }
    }
    None
}

/// Shortest witness for a general regular path query over `nfa`.
pub fn rpq_witness(g: &LabeledGraph, s: VertexId, t: VertexId, nfa: &Nfa) -> Option<Witness> {
    let ns = nfa.num_states();
    let mut start = vec![nfa.start()];
    nfa.epsilon_closure(&mut start);
    if s == t && start.iter().any(|&q| nfa.is_accept(q)) {
        return Some(Witness {
            vertices: vec![s],
            labels: vec![],
        });
    }
    let n = g.num_vertices();
    let mut pred: Vec<Option<(VertexId, u32, Label)>> = vec![None; n * ns];
    let mut seen = vec![false; n * ns];
    let mut queue: Vec<(VertexId, u32)> = Vec::new();
    for &q in &start {
        seen[s.index() * ns + q as usize] = true;
        queue.push((s, q));
    }
    let mut head = 0;
    while head < queue.len() {
        let (u, q) = queue[head];
        head += 1;
        for (v, l) in g.out_edges(u) {
            let mut targets: Vec<u32> = nfa.step(q, l).collect();
            nfa.epsilon_closure(&mut targets);
            for qq in targets {
                let slot = v.index() * ns + qq as usize;
                if seen[slot] {
                    continue;
                }
                seen[slot] = true;
                pred[slot] = Some((u, q, l));
                if v == t && nfa.is_accept(qq) {
                    return Some(unwind_nfa(&pred, s, v, qq, ns, &start));
                }
                queue.push((v, qq));
            }
        }
    }
    None
}

fn unwind(pred: &[Option<(VertexId, Label)>], s: VertexId, t: VertexId) -> Witness {
    let mut vertices = vec![t];
    let mut labels = Vec::new();
    let mut cur = t;
    while cur != s {
        let (prev, l) = pred[cur.index()].expect("predecessor chain reaches s");
        labels.push(l);
        vertices.push(prev);
        cur = prev;
    }
    vertices.reverse();
    labels.reverse();
    Witness { vertices, labels }
}

fn unwind_phased(
    pred: &[Option<(VertexId, usize, Label)>],
    s: VertexId,
    t: VertexId,
    k: usize,
) -> Witness {
    let mut vertices = vec![t];
    let mut labels = Vec::new();
    let mut cur = t;
    let mut phase = 0usize; // t is reached at a unit boundary
    while let Some((prev, prev_phase, l)) = pred[cur.index() * k + phase] {
        labels.push(l);
        vertices.push(prev);
        cur = prev;
        phase = prev_phase;
    }
    debug_assert!(cur == s && phase == 0, "chain roots at the source");
    vertices.reverse();
    labels.reverse();
    Witness { vertices, labels }
}

fn unwind_nfa(
    pred: &[Option<(VertexId, u32, Label)>],
    s: VertexId,
    t: VertexId,
    accept_state: u32,
    ns: usize,
    start_states: &[u32],
) -> Witness {
    let mut vertices = vec![t];
    let mut labels = Vec::new();
    let mut cur = t;
    let mut state = accept_state;
    while let Some((prev, prev_state, l)) = pred[cur.index() * ns + state as usize] {
        labels.push(l);
        vertices.push(prev);
        cur = prev;
        state = prev_state;
    }
    debug_assert!(
        cur == s && start_states.contains(&state),
        "chain roots at the source"
    );
    vertices.reverse();
    labels.reverse();
    Witness { vertices, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::parse;
    use crate::online::{lcr_bfs, rlc_bfs, rpq_bfs};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use reach_graph::fixtures::{self, A, B, D, FOLLOWS, FRIEND_OF, G, H, L, WORKS_FOR};
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn verify_witness(g: &LabeledGraph, s: VertexId, t: VertexId, w: &Witness) {
        assert_eq!(w.vertices.first(), Some(&s));
        assert_eq!(w.vertices.last(), Some(&t));
        assert_eq!(w.vertices.len(), w.labels.len() + 1);
        for (i, &l) in w.labels.iter().enumerate() {
            let (u, v) = (w.vertices[i], w.vertices[i + 1]);
            assert!(
                g.out_edges(u).any(|(x, el)| x == v && el == l),
                "edge {u:?} -{l:?}-> {v:?} not in graph"
            );
        }
    }

    #[test]
    fn plain_witness_on_figure1() {
        let g = fixtures::figure1b();
        let w = plain_witness(&g, A, G).expect("A reaches G");
        verify_witness(&g, A, G, &w);
        // the shortest A→G path is the paper's (A, D, H, G)
        assert_eq!(w.vertices, vec![A, D, H, G]);
        assert!(plain_witness(&g, G, A).is_none());
        assert_eq!(plain_witness(&g, A, A).unwrap().len(), 0);
    }

    #[test]
    fn lcr_witness_respects_the_constraint() {
        let g = fixtures::figure1b();
        let allowed = LabelSet::from_labels([FRIEND_OF, FOLLOWS]);
        assert!(
            lcr_witness(&g, A, G, allowed).is_none(),
            "the paper's false query"
        );
        let w = lcr_witness(&g, A, H, allowed).expect("A→D→H avoids worksFor");
        verify_witness(&g, A, H, &w);
        assert!(w.label_set().is_subset_of(allowed));
    }

    #[test]
    fn rlc_witness_is_a_full_repetition() {
        let g = fixtures::figure1b();
        let unit = [WORKS_FOR, FRIEND_OF];
        let w = rlc_witness(&g, L, B, &unit).expect("the paper's MR example");
        verify_witness(&g, L, B, &w);
        assert_eq!(w.labels.len() % unit.len(), 0);
        for (i, &l) in w.labels.iter().enumerate() {
            assert_eq!(l, unit[i % unit.len()], "phase-aligned repetition");
        }
        assert!(rlc_witness(&g, L, B, &[FRIEND_OF, WORKS_FOR]).is_none());
    }

    #[test]
    fn rpq_witness_word_is_accepted() {
        let g = fixtures::figure1b();
        let alphabet = ["friendOf", "follows", "worksFor"];
        let nfa = Nfa::compile(&parse("follows · worksFor+", &alphabet).unwrap());
        for s in g.vertices() {
            for t in g.vertices() {
                match rpq_witness(&g, s, t, &nfa) {
                    Some(w) => {
                        verify_witness(&g, s, t, &w);
                        assert!(nfa.accepts(&w.labels), "witness word rejected");
                    }
                    None => assert!(!rpq_bfs(&g, s, t, &nfa)),
                }
            }
        }
    }

    #[test]
    fn witness_existence_matches_the_boolean_evaluators() {
        let mut rng = SmallRng::seed_from_u64(401);
        let g = random_labeled_digraph(30, 90, 3, LabelDistribution::Uniform, &mut rng);
        for _ in 0..60 {
            let s = VertexId(rng.random_range(0..30));
            let t = VertexId(rng.random_range(0..30));
            let allowed = LabelSet(rng.random_range(0..8));
            match lcr_witness(&g, s, t, allowed) {
                Some(w) => {
                    verify_witness(&g, s, t, &w);
                    assert!(w.label_set().is_subset_of(allowed) || w.is_empty());
                    assert!(lcr_bfs(&g, s, t, allowed));
                }
                None => assert!(!lcr_bfs(&g, s, t, allowed)),
            }
            let unit = [Label(rng.random_range(0..3)), Label(rng.random_range(0..3))];
            match rlc_witness(&g, s, t, &unit) {
                Some(w) => {
                    verify_witness(&g, s, t, &w);
                    assert!(rlc_bfs(&g, s, t, &unit));
                }
                None => assert!(!rlc_bfs(&g, s, t, &unit)),
            }
        }
    }

    #[test]
    fn witnesses_are_shortest() {
        // diamond with a long detour: witness must take the short arm
        let g = LabeledGraph::from_edges(
            5,
            2,
            &[(0, 0, 1), (1, 0, 4), (0, 0, 2), (2, 0, 3), (3, 0, 4)],
        );
        let w = plain_witness(&g, VertexId(0), VertexId(4)).unwrap();
        assert_eq!(w.len(), 2);
    }
}
