//! DLCR \[10\]: label-constrained 2-hop under edge insertions *and*
//! deletions (§4.1.3).
//!
//! DLCR extends P2H+ with dynamic maintenance. The update problem the
//! survey describes — inserting entries can make old ones redundant,
//! deleting entries can make previously-redundant ones necessary again
//! (the `RIE` bookkeeping) — is solved here by keeping each hop's
//! entries *locally canonical*: hop `w` records the minimal label-set
//! antichain over paths whose interior vertices all have lower
//! priority than `w`. Entries then depend only on the hop's own
//! restricted closure, never on other hops' labels, so an edge update
//! touches exactly the hops whose restricted closure contains an
//! endpoint — no cross-hop redundancy cascade exists by construction
//! (completeness follows from the highest-priority-vertex-on-the-path
//! argument; cf. [`reach_core::tol`] for the plain-graph analogue).

use crate::lcr::{
    Completeness, ConstraintClass, Dynamism, InputClass, LabeledIndexMeta, LcrFramework, LcrIndex,
};
use crate::p2h::{entries_join, entry_insert, entry_present, LabelEntry};
use reach_graph::{Label, LabelSet, LabeledGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The DLCR index. Owns a mutable copy of the labeled graph.
pub struct Dlcr {
    out_adj: Vec<Vec<(VertexId, Label)>>,
    in_adj: Vec<Vec<(VertexId, Label)>>,
    rank_of: Vec<u32>,
    vertex_at: Vec<VertexId>,
    lin: Vec<Vec<LabelEntry>>,
    lout: Vec<Vec<LabelEntry>>,
}

impl Dlcr {
    /// Builds the index with the degree-descending hop order.
    pub fn build(g: &LabeledGraph) -> Self {
        let n = g.num_vertices();
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        let mut rank_of = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank_of[v.index()] = r as u32;
        }
        let mut idx = Dlcr {
            out_adj: g.vertices().map(|v| g.out_edges(v).collect()).collect(),
            in_adj: g.vertices().map(|v| g.in_edges(v).collect()).collect(),
            rank_of,
            vertex_at: order,
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
        };
        for r in 0..n as u32 {
            idx.restricted_label_bfs(r, true);
            idx.restricted_label_bfs(r, false);
        }
        idx
    }

    /// (Re)runs hop `r`'s restricted label-BFS from scratch.
    fn restricted_label_bfs(&mut self, r: u32, forward: bool) {
        let w = self.vertex_at[r as usize];
        self.extend_hop(r, w, LabelSet::EMPTY, forward);
    }

    /// Resumes hop `r`'s restricted label-BFS from `(start, start_ls)`.
    /// Borrows are split up front so the inner loop never clones
    /// adjacency lists.
    fn extend_hop(&mut self, r: u32, start: VertexId, start_ls: LabelSet, forward: bool) {
        let w = self.vertex_at[r as usize];
        let (adjacency, table) = if forward {
            (&self.out_adj, &mut self.lin)
        } else {
            (&self.in_adj, &mut self.lout)
        };
        let mut heap: BinaryHeap<Reverse<(usize, u64, u32)>> = BinaryHeap::new();
        if entry_insert(&mut table[start.index()], r, start_ls) {
            heap.push(Reverse((start_ls.len(), start_ls.0, start.0)));
        }
        while let Some(Reverse((_, bits, x))) = heap.pop() {
            let x = VertexId(x);
            let ls = LabelSet(bits);
            if !entry_present(&table[x.index()], r, ls) {
                continue; // evicted by a dominating set
            }
            // interior restriction: only lower-priority vertices are
            // passed through
            if x != w && self.rank_of[x.index()] < r {
                continue;
            }
            for &(y, l) in &adjacency[x.index()] {
                let nls = ls.insert(l);
                if entry_insert(&mut table[y.index()], r, nls) {
                    heap.push(Reverse((nls.len(), nls.0, y.0)));
                }
            }
        }
    }

    /// Removes every entry of hop `r`.
    fn clear_hop(&mut self, r: u32) {
        for entries in self.lin.iter_mut().chain(self.lout.iter_mut()) {
            entries.retain(|&(er, _)| er != r);
        }
    }

    /// Hops whose restricted closure can change through an edge at
    /// `end` (entries at `end` where `end` may serve as interior).
    fn affected_hops(&self, end: VertexId, forward: bool) -> Vec<(u32, LabelSet)> {
        let table = if forward { &self.lin } else { &self.lout };
        table[end.index()]
            .iter()
            .copied()
            .filter(|&(r, _)| self.vertex_at[r as usize] == end || self.rank_of[end.index()] > r)
            .collect()
    }

    /// Inserts the labeled edge `u -l-> v`.
    pub fn insert_edge(&mut self, u: VertexId, l: Label, v: VertexId) {
        if self.out_adj[u.index()].contains(&(v, l)) {
            return;
        }
        self.out_adj[u.index()].push((v, l));
        self.in_adj[v.index()].push((u, l));
        for (r, ls) in self.affected_hops(u, true) {
            self.extend_hop(r, v, ls.insert(l), true);
        }
        for (r, ls) in self.affected_hops(v, false) {
            self.extend_hop(r, u, ls.insert(l), false);
        }
    }

    /// Deletes the labeled edge `u -l-> v`, recomputing exactly the
    /// hops whose restricted closure could shrink.
    pub fn delete_edge(&mut self, u: VertexId, l: Label, v: VertexId) {
        let Some(p) = self.out_adj[u.index()].iter().position(|&e| e == (v, l)) else {
            return;
        };
        let fwd: Vec<u32> = self
            .affected_hops(u, true)
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        let bwd: Vec<u32> = self
            .affected_hops(v, false)
            .into_iter()
            .map(|(r, _)| r)
            .collect();
        self.out_adj[u.index()].remove(p);
        let q = self.in_adj[v.index()]
            .iter()
            .position(|&e| e == (u, l))
            .unwrap();
        self.in_adj[v.index()].remove(q);
        let mut hops: Vec<u32> = fwd.into_iter().chain(bwd).collect();
        hops.sort_unstable();
        hops.dedup();
        for &r in &hops {
            self.clear_hop(r);
        }
        for r in hops {
            self.restricted_label_bfs(r, true);
            self.restricted_label_bfs(r, false);
        }
    }
}

impl LcrIndex for Dlcr {
    fn query(&self, s: VertexId, t: VertexId, allowed: LabelSet) -> bool {
        s == t || entries_join(&self.lout[s.index()], &self.lin[t.index()], allowed)
    }

    fn meta(&self) -> LabeledIndexMeta {
        LabeledIndexMeta {
            name: "DLCR",
            citation: "[10]",
            framework: LcrFramework::TwoHop,
            constraint: ConstraintClass::Alternation,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::InsertDelete,
        }
    }

    fn size_bytes(&self) -> usize {
        12 * self.size_entries() + 48 * self.lin.len()
    }

    fn size_entries(&self) -> usize {
        self.lin.iter().map(Vec::len).sum::<usize>() + self.lout.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::lcr_bfs;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use reach_graph::fixtures;
    use reach_graph::generators::{random_labeled_digraph, LabelDistribution};

    fn check_exact(g: &LabeledGraph, idx: &Dlcr) {
        let nl = g.num_labels();
        for s in g.vertices() {
            for t in g.vertices() {
                for mask in 0..(1u64 << nl) {
                    let allowed = LabelSet(mask);
                    assert_eq!(
                        idx.query(s, t, allowed),
                        lcr_bfs(g, s, t, allowed),
                        "at {s:?}->{t:?} under {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        let g = fixtures::figure1b();
        check_exact(&g, &Dlcr::build(&g));
    }

    #[test]
    fn exact_on_random_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(261);
        for _ in 0..3 {
            let g = random_labeled_digraph(22, 60, 3, LabelDistribution::Uniform, &mut rng);
            check_exact(&g, &Dlcr::build(&g));
        }
    }

    #[test]
    fn insertions_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(262);
        let g = random_labeled_digraph(15, 25, 3, LabelDistribution::Uniform, &mut rng);
        let mut idx = Dlcr::build(&g);
        let mut edges: Vec<(u32, u8, u32)> = g.edges().map(|(u, l, v)| (u.0, l.0, v.0)).collect();
        for _ in 0..15 {
            let u = rng.random_range(0..15u32);
            let mut v = rng.random_range(0..14u32);
            if v >= u {
                v += 1;
            }
            let l = rng.random_range(0..3u8);
            idx.insert_edge(VertexId(u), Label(l), VertexId(v));
            if !edges.contains(&(u, l, v)) {
                edges.push((u, l, v));
            }
            let g2 = LabeledGraph::from_edges(15, 3, &edges);
            check_exact(&g2, &idx);
        }
    }

    #[test]
    fn deletions_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(263);
        let g = random_labeled_digraph(14, 45, 3, LabelDistribution::Uniform, &mut rng);
        let mut idx = Dlcr::build(&g);
        let mut edges: Vec<(u32, u8, u32)> = g.edges().map(|(u, l, v)| (u.0, l.0, v.0)).collect();
        for _ in 0..20 {
            if edges.is_empty() {
                break;
            }
            let i = rng.random_range(0..edges.len());
            let (u, l, v) = edges.swap_remove(i);
            idx.delete_edge(VertexId(u), Label(l), VertexId(v));
            let g2 = LabeledGraph::from_edges(14, 3, &edges);
            check_exact(&g2, &idx);
        }
    }

    #[test]
    fn mixed_updates_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(264);
        let g = random_labeled_digraph(12, 24, 2, LabelDistribution::Uniform, &mut rng);
        let mut idx = Dlcr::build(&g);
        let mut edges: Vec<(u32, u8, u32)> = g.edges().map(|(u, l, v)| (u.0, l.0, v.0)).collect();
        for _ in 0..30 {
            if rng.random_bool(0.5) || edges.is_empty() {
                let u = rng.random_range(0..12u32);
                let mut v = rng.random_range(0..11u32);
                if v >= u {
                    v += 1;
                }
                let l = rng.random_range(0..2u8);
                if !edges.contains(&(u, l, v)) {
                    idx.insert_edge(VertexId(u), Label(l), VertexId(v));
                    edges.push((u, l, v));
                }
            } else {
                let i = rng.random_range(0..edges.len());
                let (u, l, v) = edges.swap_remove(i);
                idx.delete_edge(VertexId(u), Label(l), VertexId(v));
            }
            let g2 = LabeledGraph::from_edges(12, 2, &edges);
            check_exact(&g2, &idx);
        }
    }

    #[test]
    fn duplicate_and_missing_updates_are_noops() {
        let g = fixtures::figure1b();
        let mut idx = Dlcr::build(&g);
        let before = idx.size_entries();
        idx.insert_edge(fixtures::A, fixtures::FRIEND_OF, fixtures::D);
        assert_eq!(idx.size_entries(), before);
        idx.delete_edge(fixtures::B, fixtures::FOLLOWS, fixtures::A);
        check_exact(&g, &idx);
    }
}
