//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion's API its benches use: benchmark
//! groups with `sample_size` / `measurement_time` / `throughput`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a plain wall-clock loop: warm up once, run
//! batches of iterations until the measurement budget is spent, and
//! report mean / min per-iteration time on stdout. No statistics, no
//! HTML reports — enough to compare techniques and catch regressions
//! by eye, offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Wall-clock measurement (the only measurement this shim has).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// How `iter_batched` amortizes setup cost. The shim always runs one
/// setup per routine invocation, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; fewer iterations).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiples.
    BytesDecimal(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts (and ignores) criterion's CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            measurement_time: Duration::from_secs(1),
            throughput: None,
            _marker_field: std::marker::PhantomData,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&id.into().id, 100, Duration::from_secs(1), None, &mut f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _marker_field: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Sets the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for each benchmark in the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the per-iteration throughput (echoed in the report).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Drives the measured closure.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    /// Collected per-iteration times.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f` repeatedly until the sample target or time budget is
    /// reached.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let started = Instant::now();
        // one warm-up iteration outside the measurements
        black_box(f());
        while self.times.len() < self.samples && started.elapsed() < self.budget {
            let t = Instant::now();
            black_box(f());
            self.times.push(t.elapsed());
        }
    }

    /// Times `routine` over fresh values from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        let started = Instant::now();
        black_box(routine(setup()));
        while self.times.len() < self.samples && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.times.push(t.elapsed());
        }
    }

    /// Like [`iter_batched`](Self::iter_batched), but the routine takes
    /// the input by reference.
    pub fn iter_batched_ref<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> O,
        _size: BatchSize,
    ) {
        let started = Instant::now();
        black_box(routine(&mut setup()));
        while self.times.len() < self.samples && started.elapsed() < self.budget {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.times.push(t.elapsed());
        }
    }
}

fn run_one(
    label: &str,
    samples: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        budget,
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let min = *b.times.iter().min().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!(
        "{label:<44} mean {:>12?}  min {:>12?}  ({} samples){rate}",
        mean,
        min,
        b.times.len()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_function("counts", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran >= 5, "warm-up plus samples must run the closure");
    }

    #[test]
    fn batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(4)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
