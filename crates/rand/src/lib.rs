//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: seedable
//! generators (`SmallRng`, `StdRng`), `Rng::random_range` over integer
//! and float ranges, and `Rng::random_bool`. The generator core is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the workspace's seeded tests and workload
//! generators require. Streams differ from upstream `rand`, so seeds
//! produce different (but stable) workloads.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. Panics if `low >= high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range");
                // closed-unit-interval fraction: both endpoints reachable
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform sample from `[0, span)` via Lemire rejection.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // widening-multiply rejection sampling keeps the draw unbiased
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = (rng.next_u64() as u128) * (span as u128);
            if (m as u64) >= threshold {
                return m >> 64;
            }
        }
    } else {
        // spans over 2^64 only arise for i128-wide integer ranges,
        // which the workspace never uses; a double draw suffices.
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        x % span
    }
}

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`0..n`, `0..=n`, `0.0..x`, …).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! The concrete generators: both are xoshiro256++ here.

    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * i..8 * (i + 1)]);
                *word = u64::from_le_bytes(bytes);
            }
            // the all-zero state is a fixed point of xoshiro
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            SmallRng { s }
        }
    }

    /// The "standard" generator; here an alias for the same core.
    #[derive(Debug, Clone)]
    pub struct StdRng(SmallRng);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(SmallRng::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0..u64::MAX) == b.random_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random_range(5..17u32);
            assert!((5..17).contains(&x));
            let y = rng.random_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.random_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn all_range_values_are_reachable() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.random_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_800..3_200).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(rng: &mut R) -> u32 {
            rng.random_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(6);
        let through_ref = draw(&mut &mut rng);
        assert!(through_ref < 10);
    }
}
