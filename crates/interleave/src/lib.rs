//! # reach-interleave
//!
//! A vendored, dependency-free **bounded interleaving checker** — a
//! miniature [loom](https://github.com/tokio-rs/loom) in the same
//! spirit as the workspace's `rand`/`criterion` shims.  It
//! exhaustively enumerates every thread schedule of a small,
//! explicitly-modeled concurrent protocol and checks a safety
//! invariant in every reachable state plus an acceptance condition in
//! every quiescent (no-thread-can-step) state.
//!
//! The workspace uses it to model-check the two hand-rolled
//! concurrency protocols that `cargo test` can only probe
//! stochastically:
//!
//! * [`scratch_pool`] — the CAS claim/release protocol of
//!   `reach_graph::scratch::ScratchPool` (no double-claim, overflow
//!   allocates instead of blocking);
//! * [`queue`] — the server's bounded accept queue + condvar worker
//!   pool + shutdown-drain handshake (no lost wakeup, drain
//!   completeness, every thread terminates).
//!
//! ## Exploration bound
//!
//! State spaces are bounded by construction: models fix the thread
//! count (2–3), the iteration count per thread, and the queue/slot
//! capacities, so program counters and shared state are finite
//! enumerations.  [`explore`] performs a depth-first search over the
//! *entire* transition graph with visited-state memoization, i.e. it
//! covers every interleaving of the bounded model, not a sampled
//! subset.  A deadlock (some thread not done, nothing can step) shows
//! up as a quiescent state that fails [`Model::accept`] — which is
//! exactly how a lost condvar wakeup manifests.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

pub mod queue;
pub mod scratch_pool;

/// A finite concurrent protocol: shared state plus `threads()`
/// deterministic state machines.
pub trait Model {
    /// Global state (shared variables + every thread's program
    /// counter).  Must be hashable so the checker can memoize
    /// visited states.
    type State: Clone + Eq + Hash + fmt::Debug;

    /// The initial global state.
    fn initial(&self) -> Self::State;

    /// Number of threads; thread ids are `0..threads()`.
    fn threads(&self) -> usize;

    /// Execute one atomic step of thread `tid`, or `None` if the
    /// thread is blocked (waiting on a mutex/condvar) or finished.
    /// Each step must be one plausible hardware-atomic action — the
    /// grain of the model decides which races the checker can see.
    fn step(&self, state: &Self::State, tid: usize) -> Option<Self::State>;

    /// Safety invariant, checked in **every** reachable state.
    fn invariant(&self, state: &Self::State) -> Result<(), String>;

    /// Acceptance condition for quiescent states (no thread can
    /// step).  A quiescent state that fails this is either a genuine
    /// protocol-violation terminal state or a deadlock.
    fn accept(&self, state: &Self::State) -> Result<(), String>;
}

/// Statistics from a successful exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct reachable states visited.
    pub states: usize,
    /// Transitions executed (edges of the interleaving graph).
    pub transitions: usize,
    /// Longest schedule followed before hitting quiescence or a
    /// previously-visited state.
    pub deepest_schedule: usize,
}

/// A schedule that drives the model into a bad state.
#[derive(Debug, Clone)]
pub struct CounterExample<S> {
    /// Thread ids in execution order, from the initial state.
    pub schedule: Vec<usize>,
    /// The offending state.
    pub state: S,
    /// Why it is bad (invariant or acceptance message).
    pub message: String,
}

impl<S: fmt::Debug> fmt::Display for CounterExample<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample after schedule {:?}:", self.schedule)?;
        writeln!(f, "  {}", self.message)?;
        write!(f, "  state: {:?}", self.state)
    }
}

/// Why exploration stopped without a clean pass.
#[derive(Debug)]
pub enum CheckError<S> {
    /// A reachable state violated the invariant, or a quiescent
    /// state failed acceptance.
    Violation(Box<CounterExample<S>>),
    /// The model exceeded the state budget — it is not bounded
    /// tightly enough to be exhaustively checked.
    StateLimit(usize),
}

impl<S: fmt::Debug> fmt::Display for CheckError<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Violation(cex) => write!(f, "{cex}"),
            CheckError::StateLimit(n) => {
                write!(f, "state budget exhausted after {n} distinct states")
            }
        }
    }
}

/// Default state budget for [`explore`]; far above what the shipped
/// models need (they stay under ~10^5 states) but low enough that a
/// mis-bounded model fails fast instead of consuming the machine.
pub const DEFAULT_STATE_LIMIT: usize = 2_000_000;

/// Exhaustively explore every bounded schedule of `model` with the
/// [`DEFAULT_STATE_LIMIT`] budget.
pub fn explore<M: Model>(model: &M) -> Result<Exploration, CheckError<M::State>> {
    explore_with_limit(model, DEFAULT_STATE_LIMIT)
}

/// [`explore`] with an explicit distinct-state budget.
pub fn explore_with_limit<M: Model>(
    model: &M,
    state_limit: usize,
) -> Result<Exploration, CheckError<M::State>> {
    let mut visited: HashSet<M::State> = HashSet::new();
    let mut stats = Exploration {
        states: 0,
        transitions: 0,
        deepest_schedule: 0,
    };
    // Each frame is (state, next thread id to try). `schedule` holds
    // the thread ids on the current DFS path; frame i's incoming edge
    // is schedule[i-1] (the root frame has none).
    let mut stack: Vec<(M::State, usize)> = Vec::new();
    let mut schedule: Vec<usize> = Vec::new();

    let init = model.initial();
    if enter(
        model,
        init,
        &mut visited,
        &mut stats,
        &schedule,
        state_limit,
    )? {
        stack.push((model.initial(), 0));
    }

    while let Some((state, next_tid)) = stack.last() {
        let mut chosen = None;
        for tid in *next_tid..model.threads() {
            if let Some(succ) = model.step(state, tid) {
                chosen = Some((tid, succ));
                break;
            }
        }
        match chosen {
            None => {
                stack.pop();
                schedule.pop();
            }
            Some((tid, succ)) => {
                stack.last_mut().expect("frame just inspected").1 = tid + 1;
                stats.transitions += 1;
                schedule.push(tid);
                stats.deepest_schedule = stats.deepest_schedule.max(schedule.len());
                if enter(
                    model,
                    succ.clone(),
                    &mut visited,
                    &mut stats,
                    &schedule,
                    state_limit,
                )? {
                    stack.push((succ, 0));
                } else {
                    schedule.pop();
                }
            }
        }
    }
    Ok(stats)
}

/// Register a newly-reached state: memoize it, check the invariant,
/// and classify quiescence.  Returns `Ok(true)` when the state is
/// fresh and has at least one enabled thread (i.e. the DFS should
/// descend into it).
fn enter<M: Model>(
    model: &M,
    state: M::State,
    visited: &mut HashSet<M::State>,
    stats: &mut Exploration,
    schedule: &[usize],
    state_limit: usize,
) -> Result<bool, CheckError<M::State>> {
    if !visited.insert(state.clone()) {
        return Ok(false);
    }
    stats.states += 1;
    if stats.states > state_limit {
        return Err(CheckError::StateLimit(stats.states));
    }
    if let Err(message) = model.invariant(&state) {
        return Err(CheckError::Violation(Box::new(CounterExample {
            schedule: schedule.to_vec(),
            state,
            message,
        })));
    }
    let enabled = (0..model.threads()).any(|tid| model.step(&state, tid).is_some());
    if !enabled {
        if let Err(message) = model.accept(&state) {
            return Err(CheckError::Violation(Box::new(CounterExample {
                schedule: schedule.to_vec(),
                state,
                message: format!("quiescent state rejected: {message}"),
            })));
        }
        return Ok(false);
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a shared counter `rounds` times;
    /// the increment is a single atomic step, so the final count is
    /// always exact.
    struct Counter {
        rounds: u8,
    }

    impl Model for Counter {
        type State = (u8, [u8; 2]);

        fn initial(&self) -> Self::State {
            (0, [0, 0])
        }

        fn threads(&self) -> usize {
            2
        }

        fn step(&self, state: &Self::State, tid: usize) -> Option<Self::State> {
            let (count, done) = *state;
            if done[tid] == self.rounds {
                return None;
            }
            let mut next_done = done;
            next_done[tid] += 1;
            Some((count + 1, next_done))
        }

        fn invariant(&self, state: &Self::State) -> Result<(), String> {
            let (count, done) = *state;
            if count == done[0] + done[1] {
                Ok(())
            } else {
                Err(format!("count {count} != steps {done:?}"))
            }
        }

        fn accept(&self, state: &Self::State) -> Result<(), String> {
            if state.0 == 2 * self.rounds {
                Ok(())
            } else {
                Err(format!("final count {} != {}", state.0, 2 * self.rounds))
            }
        }
    }

    #[test]
    fn counter_model_explores_all_interleavings() {
        let stats = explore(&Counter { rounds: 3 }).expect("atomic counter is correct");
        // States form the (rounds+1)^2 grid of per-thread progress.
        assert_eq!(stats.states, 16);
        assert_eq!(stats.deepest_schedule, 6);
        assert!(stats.transitions >= stats.states - 1);
    }

    /// A deliberately broken acceptance condition must surface a
    /// schedule, proving quiescent states are checked.
    struct NeverDone;

    impl Model for NeverDone {
        type State = u8;

        fn initial(&self) -> Self::State {
            0
        }

        fn threads(&self) -> usize {
            1
        }

        fn step(&self, state: &Self::State, _tid: usize) -> Option<Self::State> {
            (*state < 2).then_some(state + 1)
        }

        fn invariant(&self, _state: &Self::State) -> Result<(), String> {
            Ok(())
        }

        fn accept(&self, _state: &Self::State) -> Result<(), String> {
            Err("refused".into())
        }
    }

    #[test]
    fn quiescent_rejection_reports_the_schedule() {
        match explore(&NeverDone) {
            Err(CheckError::Violation(cex)) => {
                assert_eq!(cex.schedule, vec![0, 0]);
                assert!(cex.message.contains("quiescent"));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn state_limit_aborts_unbounded_models() {
        struct Unbounded;
        impl Model for Unbounded {
            type State = u64;
            fn initial(&self) -> u64 {
                0
            }
            fn threads(&self) -> usize {
                1
            }
            fn step(&self, state: &u64, _tid: usize) -> Option<u64> {
                Some(state + 1)
            }
            fn invariant(&self, _state: &u64) -> Result<(), String> {
                Ok(())
            }
            fn accept(&self, _state: &u64) -> Result<(), String> {
                Ok(())
            }
        }
        match explore_with_limit(&Unbounded, 100) {
            Err(CheckError::StateLimit(n)) => assert!(n > 100),
            other => panic!("expected state-limit abort, got {other:?}"),
        }
    }
}
