//! Model of the server's bounded accept queue, condvar worker pool,
//! and shutdown-drain handshake (`reach_server::server`).
//!
//! The real protocol: the listener thread pushes accepted connections
//! into a `Mutex<VecDeque>` (rejecting with 429 when the queue is at
//! capacity) and signals `not_empty`; workers pop under the lock,
//! waiting on the condvar when the queue is empty and the shutdown
//! flag is clear.  `begin_shutdown` sets the flag and calls
//! `notify_all`; workers drain the queue *before* honoring the flag
//! so no accepted connection is dropped.
//!
//! The model collapses connection handling to counters and keeps the
//! synchronization skeleton: the mutex is an `Option<owner>`, the
//! condvar a waitset bitmask whose notify operations move waiters to
//! a re-acquire state.  Three injectable bugs demonstrate the checker
//! detects the failure modes the real code avoids:
//!
//! * [`QueueBug::SkipShutdownNotify`] — shutdown without
//!   `notify_all`: parked workers sleep forever (deadlock).
//! * [`QueueBug::ExitBeforeDrain`] — workers check the shutdown flag
//!   before the queue: accepted connections are dropped
//!   (drain-completeness violation).
//! * [`QueueBug::NonAtomicWait`] — releasing the mutex *before*
//!   joining the waitset (instead of the atomic unlock-and-wait the
//!   real `Condvar::wait` provides): a notify in the gap is lost and
//!   the worker sleeps forever.

use crate::Model;

/// Listener program counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ListenerPc {
    /// Ready to accept the next connection (or begin shutdown once
    /// all connections have arrived).
    Accept,
    /// Holding the lock, about to push or reject.
    Locked,
    /// All connections dispatched; about to set the shutdown flag.
    SetFlag,
    /// Flag set; about to `notify_all`.
    NotifyAll,
    Done,
}

/// Worker program counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkerPc {
    /// Contending for the lock.
    Lock,
    /// Holding the lock, deciding: pop, exit, or wait.
    Check,
    /// `NonAtomicWait` only: lock released, waitset registration
    /// still pending — the lost-wakeup window.
    WaitGap,
    /// Parked on the condvar; only a notify can move this thread.
    Waiting,
    /// Woken; re-contending for the lock (as `Condvar::wait` does on
    /// return).
    Reacquire,
    /// Popped a connection; serving it outside the lock.
    Serve,
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QueueState {
    /// Mutex owner: `None` = unlocked, `Some(tid)` = held.
    lock: Option<u8>,
    /// Queued (accepted, not yet popped) connections.
    queue: u8,
    /// Condvar waitset as a bitmask of *worker* indexes.
    waiters: u8,
    shutdown: bool,
    accepted: u8,
    rejected: u8,
    served: u8,
    listener: ListenerPc,
    workers: Vec<WorkerPc>,
}

/// Seeded protocol defects; `None` is the shipped protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueBug {
    None,
    SkipShutdownNotify,
    ExitBeforeDrain,
    NonAtomicWait,
}

/// Checker harness: thread 0 is the listener, threads `1..=workers`
/// are the pool.
pub struct QueueModel {
    pub workers: usize,
    pub capacity: u8,
    /// Connections the listener dispatches before shutting down.
    pub connections: u8,
    pub bug: QueueBug,
}

impl QueueModel {
    const LISTENER: u8 = 0;

    fn worker_tid(w: usize) -> u8 {
        w as u8 + 1
    }

    /// Move one waiter (the lowest index, matching `notify_one`'s
    /// "some waiter" contract) to the re-acquire state.
    fn notify_one(state: &mut QueueState) {
        if state.waiters != 0 {
            let w = state.waiters.trailing_zeros() as usize;
            state.waiters &= !(1 << w);
            state.workers[w] = WorkerPc::Reacquire;
        }
    }

    fn notify_all(state: &mut QueueState) {
        while state.waiters != 0 {
            Self::notify_one(state);
        }
    }

    fn step_listener(&self, state: &QueueState) -> Option<QueueState> {
        let mut next = state.clone();
        match state.listener {
            ListenerPc::Accept => {
                if state.accepted + state.rejected < self.connections {
                    // accept() returned; take the queue lock.
                    if state.lock.is_some() {
                        return None;
                    }
                    next.lock = Some(Self::LISTENER);
                    next.listener = ListenerPc::Locked;
                } else {
                    next.listener = ListenerPc::SetFlag;
                }
            }
            ListenerPc::Locked => {
                if state.queue < self.capacity {
                    next.queue += 1;
                    next.accepted += 1;
                    // Real code notifies while holding the lock.
                    Self::notify_one(&mut next);
                } else {
                    // Admission control: reject (429) instead of
                    // blocking the accept loop.
                    next.rejected += 1;
                }
                next.lock = None;
                next.listener = ListenerPc::Accept;
            }
            ListenerPc::SetFlag => {
                next.shutdown = true;
                next.listener = if self.bug == QueueBug::SkipShutdownNotify {
                    ListenerPc::Done
                } else {
                    ListenerPc::NotifyAll
                };
            }
            ListenerPc::NotifyAll => {
                Self::notify_all(&mut next);
                next.listener = ListenerPc::Done;
            }
            ListenerPc::Done => return None,
        }
        Some(next)
    }

    fn step_worker(&self, state: &QueueState, w: usize) -> Option<QueueState> {
        let tid = Self::worker_tid(w);
        let mut next = state.clone();
        match state.workers[w] {
            WorkerPc::Lock | WorkerPc::Reacquire => {
                if state.lock.is_some() {
                    return None;
                }
                next.lock = Some(tid);
                next.workers[w] = WorkerPc::Check;
            }
            WorkerPc::Check => {
                let exit_first = self.bug == QueueBug::ExitBeforeDrain;
                if exit_first && state.shutdown {
                    next.lock = None;
                    next.workers[w] = WorkerPc::Done;
                } else if state.queue > 0 {
                    next.queue -= 1;
                    next.lock = None;
                    next.workers[w] = WorkerPc::Serve;
                } else if state.shutdown {
                    next.lock = None;
                    next.workers[w] = WorkerPc::Done;
                } else if self.bug == QueueBug::NonAtomicWait {
                    // Broken wait: unlock now, register later.
                    next.lock = None;
                    next.workers[w] = WorkerPc::WaitGap;
                } else {
                    // Condvar::wait — unlock and park atomically.
                    next.waiters |= 1 << w;
                    next.lock = None;
                    next.workers[w] = WorkerPc::Waiting;
                }
            }
            WorkerPc::WaitGap => {
                next.waiters |= 1 << w;
                next.workers[w] = WorkerPc::Waiting;
            }
            // Parked: only a notify moves this thread.
            WorkerPc::Waiting => return None,
            WorkerPc::Serve => {
                next.served += 1;
                next.workers[w] = WorkerPc::Lock;
            }
            WorkerPc::Done => return None,
        }
        Some(next)
    }

    fn in_flight(state: &QueueState) -> u8 {
        state
            .workers
            .iter()
            .filter(|&&pc| pc == WorkerPc::Serve)
            .count() as u8
    }
}

impl Model for QueueModel {
    type State = QueueState;

    fn initial(&self) -> QueueState {
        QueueState {
            lock: None,
            queue: 0,
            waiters: 0,
            shutdown: false,
            accepted: 0,
            rejected: 0,
            served: 0,
            listener: ListenerPc::Accept,
            workers: vec![WorkerPc::Lock; self.workers],
        }
    }

    fn threads(&self) -> usize {
        self.workers + 1
    }

    fn step(&self, state: &QueueState, tid: usize) -> Option<QueueState> {
        if tid == Self::LISTENER as usize {
            self.step_listener(state)
        } else {
            self.step_worker(state, tid - 1)
        }
    }

    fn invariant(&self, state: &QueueState) -> Result<(), String> {
        if state.queue > self.capacity {
            return Err(format!(
                "queue depth {} exceeds capacity {}",
                state.queue, self.capacity
            ));
        }
        // Conservation: every accepted connection is queued, being
        // served, or served — none vanish (the /metrics identity
        // sum(requests) == sum(responses) at drain).
        let accounted = state.queue + Self::in_flight(state) + state.served;
        if state.accepted != accounted {
            return Err(format!(
                "{} accepted but only {} accounted for (queue {} + in-flight {} + served {})",
                state.accepted,
                accounted,
                state.queue,
                Self::in_flight(state),
                state.served
            ));
        }
        Ok(())
    }

    fn accept(&self, state: &QueueState) -> Result<(), String> {
        if state.listener != ListenerPc::Done {
            return Err(format!("listener stuck at {:?}", state.listener));
        }
        if let Some(w) = state.workers.iter().position(|&pc| pc != WorkerPc::Done) {
            return Err(format!(
                "worker {w} stuck at {:?} (lost wakeup or missed shutdown)",
                state.workers[w]
            ));
        }
        if state.queue != 0 {
            return Err(format!(
                "{} connections left undrained at shutdown",
                state.queue
            ));
        }
        if state.served != state.accepted {
            return Err(format!(
                "served {} != accepted {} — connections dropped",
                state.served, state.accepted
            ));
        }
        if state.waiters != 0 {
            return Err(format!(
                "stale waitset {:#b} after termination",
                state.waiters
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, CheckError};

    fn model(workers: usize, capacity: u8, connections: u8, bug: QueueBug) -> QueueModel {
        QueueModel {
            workers,
            capacity,
            connections,
            bug,
        }
    }

    #[test]
    fn shipped_protocol_drains_and_terminates() {
        for workers in 1..=2 {
            let stats = explore(&model(workers, 2, 3, QueueBug::None))
                .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
            assert!(stats.states > 50, "exploration too shallow: {stats:?}");
        }
    }

    #[test]
    fn shipped_protocol_with_three_workers_and_tight_queue() {
        // Capacity 1 forces the reject path; three workers force
        // contention on the condvar during shutdown.
        let stats = explore(&model(3, 1, 3, QueueBug::None)).expect("protocol is correct");
        assert!(stats.states > 1_000, "exploration too shallow: {stats:?}");
    }

    #[test]
    fn missing_shutdown_notify_deadlocks_parked_workers() {
        match explore(&model(2, 2, 1, QueueBug::SkipShutdownNotify)) {
            Err(CheckError::Violation(cex)) => {
                assert!(cex.message.contains("stuck"), "message: {}", cex.message);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn checking_shutdown_before_draining_drops_connections() {
        match explore(&model(2, 2, 2, QueueBug::ExitBeforeDrain)) {
            Err(CheckError::Violation(cex)) => {
                assert!(
                    cex.message.contains("undrained") || cex.message.contains("dropped"),
                    "message: {}",
                    cex.message
                );
            }
            other => panic!("expected drain violation, got {other:?}"),
        }
    }

    #[test]
    fn unlocking_before_joining_the_waitset_loses_wakeups() {
        match explore(&model(1, 2, 1, QueueBug::NonAtomicWait)) {
            Err(CheckError::Violation(cex)) => {
                assert!(cex.message.contains("stuck"), "message: {}", cex.message);
            }
            other => panic!("expected lost wakeup, got {other:?}"),
        }
    }
}
