//! Model of `reach_graph::scratch::ScratchPool`'s claim/release
//! protocol.
//!
//! The real pool holds `SLOTS` entries, each an `AtomicBool` busy
//! flag guarding an `UnsafeCell` buffer.  `checkout` scans the slots
//! and claims the first one whose flag it can CAS from `false` to
//! `true`; if every CAS fails it falls through to a fresh heap
//! allocation (the *overflow* path) rather than spinning.  Dropping
//! the guard stores `false` with release ordering.
//!
//! The model keeps the same shape at a grain where the interesting
//! race is visible: `atomic_claim: true` performs the
//! test-and-set as one step (the `compare_exchange` of the real
//! code), while `atomic_claim: false` splits it into a read step and
//! a write step — the classic broken load-then-store "lock" — which
//! the checker must catch as a double-claim.  Slot ownership is
//! tracked as a per-slot bitmask of holder thread ids so a
//! double-claim is a state property (two bits set), not a guessed
//! schedule.
//!
//! Because every thread always has an enabled step (claim, overflow,
//! or release), the model also demonstrates the pool's obstruction
//! freedom: a thread that holds a slot forever never blocks another
//! thread's checkout — the checker would report any blocked-forever
//! quiescent state as a rejected deadlock.

use crate::Model;

/// Per-thread program counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Pc {
    /// About to start checkout round `iter`.
    Start {
        iter: u8,
    },
    /// Scanning: about to examine `slot` in round `iter`.
    Scan {
        iter: u8,
        slot: u8,
    },
    /// Non-atomic mode only: observed `slot` free, store still
    /// pending.  This is the window where another thread can sneak
    /// in.
    Claim {
        iter: u8,
        slot: u8,
    },
    /// Holding `slot`; next step releases it.
    Hold {
        iter: u8,
        slot: u8,
    },
    /// Took the overflow (fresh allocation) path; next step finishes
    /// the round.
    HoldOverflow {
        iter: u8,
    },
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PoolState {
    /// The `AtomicBool` busy flags.
    busy: Vec<bool>,
    /// Ghost state: bitmask of thread ids currently holding each
    /// slot's buffer.  The protocol is correct iff each mask has at
    /// most one bit set.
    holders: Vec<u8>,
    pcs: Vec<Pc>,
    overflows: u8,
}

/// Checker harness for the pool protocol.
pub struct ScratchPoolModel {
    /// Number of pool slots (the real pool has 16; 1–2 suffices to
    /// exercise contention).
    pub slots: usize,
    /// Concurrent threads (2–3).
    pub threads: usize,
    /// Checkout/release rounds per thread.
    pub iterations: u8,
    /// `true` models the real CAS; `false` models a broken
    /// load-then-store claim and must produce a double-claim.
    pub atomic_claim: bool,
}

impl Model for ScratchPoolModel {
    type State = PoolState;

    fn initial(&self) -> PoolState {
        PoolState {
            busy: vec![false; self.slots],
            holders: vec![0; self.slots],
            pcs: vec![Pc::Start { iter: 0 }; self.threads],
            overflows: 0,
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn step(&self, state: &PoolState, tid: usize) -> Option<PoolState> {
        let bit = 1u8 << tid;
        let mut next = state.clone();
        match state.pcs[tid] {
            Pc::Start { iter } => {
                next.pcs[tid] = Pc::Scan { iter, slot: 0 };
            }
            Pc::Scan { iter, slot } => {
                let s = slot as usize;
                if s == self.slots {
                    // Every CAS failed: allocate instead of spinning.
                    next.overflows += 1;
                    next.pcs[tid] = Pc::HoldOverflow { iter };
                } else if !state.busy[s] {
                    if self.atomic_claim {
                        next.busy[s] = true;
                        next.holders[s] |= bit;
                        next.pcs[tid] = Pc::Hold { iter, slot };
                    } else {
                        // Broken variant: decision made, store later.
                        next.pcs[tid] = Pc::Claim { iter, slot };
                    }
                } else {
                    next.pcs[tid] = Pc::Scan {
                        iter,
                        slot: slot + 1,
                    };
                }
            }
            Pc::Claim { iter, slot } => {
                let s = slot as usize;
                next.busy[s] = true;
                next.holders[s] |= bit;
                next.pcs[tid] = Pc::Hold { iter, slot };
            }
            Pc::Hold { iter, slot } => {
                let s = slot as usize;
                next.holders[s] &= !bit;
                next.busy[s] = false;
                next.pcs[tid] = Self::after_round(iter, self.iterations);
            }
            Pc::HoldOverflow { iter } => {
                next.pcs[tid] = Self::after_round(iter, self.iterations);
            }
            Pc::Done => return None,
        }
        Some(next)
    }

    fn invariant(&self, state: &PoolState) -> Result<(), String> {
        for (slot, &mask) in state.holders.iter().enumerate() {
            if mask.count_ones() > 1 {
                return Err(format!(
                    "double claim: slot {slot} held by threads {:?}",
                    (0..self.threads)
                        .filter(|t| mask & (1 << t) != 0)
                        .collect::<Vec<_>>()
                ));
            }
            if mask != 0 && !state.busy[slot] {
                return Err(format!(
                    "slot {slot} held by mask {mask:#b} but busy flag clear"
                ));
            }
        }
        Ok(())
    }

    fn accept(&self, state: &PoolState) -> Result<(), String> {
        if let Some(tid) = state.pcs.iter().position(|pc| *pc != Pc::Done) {
            return Err(format!("thread {tid} stuck at {:?}", state.pcs[tid]));
        }
        if state.holders.iter().any(|&m| m != 0) || state.busy.iter().any(|&b| b) {
            return Err(format!(
                "slots still claimed after all threads finished: busy {:?} holders {:?}",
                state.busy, state.holders
            ));
        }
        Ok(())
    }
}

impl ScratchPoolModel {
    fn after_round(iter: u8, iterations: u8) -> Pc {
        if iter + 1 < iterations {
            Pc::Start { iter: iter + 1 }
        } else {
            Pc::Done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, CheckError};

    #[test]
    fn cas_claim_never_double_claims_two_threads() {
        let stats = explore(&ScratchPoolModel {
            slots: 1,
            threads: 2,
            iterations: 2,
            atomic_claim: true,
        })
        .expect("CAS protocol is race-free");
        assert!(stats.states > 20, "exploration too shallow: {stats:?}");
    }

    #[test]
    fn cas_claim_never_double_claims_three_threads() {
        let stats = explore(&ScratchPoolModel {
            slots: 2,
            threads: 3,
            iterations: 2,
            atomic_claim: true,
        })
        .expect("CAS protocol is race-free with 3 threads over 2 slots");
        // Three threads contending for two slots plus overflow: the
        // schedule space is well into the thousands of states, all
        // visited.
        assert!(stats.states > 1_000, "exploration too shallow: {stats:?}");
    }

    #[test]
    fn load_then_store_claim_is_caught_as_double_claim() {
        match explore(&ScratchPoolModel {
            slots: 1,
            threads: 2,
            iterations: 1,
            atomic_claim: false,
        }) {
            Err(CheckError::Violation(cex)) => {
                assert!(
                    cex.message.contains("double claim"),
                    "message: {}",
                    cex.message
                );
                assert!(
                    !cex.schedule.is_empty(),
                    "counterexample must carry a schedule"
                );
            }
            other => panic!("broken claim must be detected, got {other:?}"),
        }
    }

    #[test]
    fn full_pool_overflows_instead_of_blocking() {
        // One slot, three threads: at least two rounds must take the
        // overflow path in some schedule; no schedule may deadlock
        // (explore() Ok already proves the absence of stuck states).
        let stats = explore(&ScratchPoolModel {
            slots: 1,
            threads: 3,
            iterations: 1,
            atomic_claim: true,
        })
        .expect("overflow path keeps the pool obstruction-free");
        assert!(stats.states > 100);
    }
}
