//! A warm-index façade for long-lived query services.
//!
//! The paper's §5 observation — index construction dwarfs query time —
//! only pays off when the index is built *once* and then serves many
//! queries. [`IndexService`] bundles everything a serving layer needs
//! to do that: the prepared graph, the built index, the
//! [`BuildReport`] describing what construction cost, and a
//! [`QueryEngine`] for sharded batch evaluation. `reach-server` holds
//! one of these per process; the CLI `serve` command builds it at
//! startup and answers from it until shutdown.

use crate::index::ReachIndex;
use crate::pipeline::{build_plain_with_report, plain_spec, BuildOpts, BuildReport};
use crate::query_engine::QueryEngine;
use reach_graph::{PreparedGraph, VertexId};
use std::fmt;
use std::sync::Arc;

/// The requested technique is not in the plain-index registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownIndex {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown plain index {:?}", self.name)
    }
}

impl std::error::Error for UnknownIndex {}

/// A built plain-reachability index plus everything needed to serve
/// queries from it: the graph it was built over, the build report, and
/// a batch engine with a fixed shard count.
pub struct IndexService {
    prepared: Arc<PreparedGraph>,
    index: Box<dyn ReachIndex>,
    report: BuildReport,
    engine: QueryEngine,
}

impl IndexService {
    /// Builds the named registry technique over `prepared` and wraps
    /// it with a [`QueryEngine`] sharding batches over `threads`.
    pub fn build(
        name: &str,
        prepared: Arc<PreparedGraph>,
        opts: &BuildOpts,
        threads: usize,
    ) -> Result<Self, UnknownIndex> {
        if plain_spec(name).is_none() {
            return Err(UnknownIndex { name: name.into() });
        }
        let (index, report) = build_plain_with_report(name, &prepared, opts);
        Ok(IndexService {
            prepared,
            index,
            report,
            engine: QueryEngine::new(threads),
        })
    }

    /// The registry name of the technique this service answers with.
    pub fn name(&self) -> &'static str {
        self.report.name
    }

    /// Number of vertices in the served graph; queries must use ids in
    /// `0..num_vertices()`.
    pub fn num_vertices(&self) -> usize {
        self.prepared.num_vertices()
    }

    /// Number of edges in the served graph.
    pub fn num_edges(&self) -> usize {
        self.prepared.num_edges()
    }

    /// The prepared graph the index was built over.
    pub fn prepared(&self) -> &Arc<PreparedGraph> {
        &self.prepared
    }

    /// What building the index cost (phases, size).
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// The underlying index, for callers that need the trait object.
    pub fn index(&self) -> &dyn ReachIndex {
        self.index.as_ref()
    }

    /// Shard count the batch engine uses.
    pub fn engine_threads(&self) -> usize {
        self.engine.threads()
    }

    /// Answers one reachability query.
    pub fn query(&self, s: VertexId, t: VertexId) -> bool {
        self.index.query(s, t)
    }

    /// Answers a batch in input order, sharded over the engine's
    /// threads; identical output at every thread count.
    pub fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        self.engine.run(self.index.as_ref(), pairs)
    }
}

impl fmt::Debug for IndexService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexService")
            .field("name", &self.name())
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .field("engine_threads", &self.engine_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use reach_graph::generators::random_digraph;

    #[test]
    fn service_matches_direct_index_queries() {
        let mut rng = SmallRng::seed_from_u64(77);
        let g = Arc::new(random_digraph(150, 450, &mut rng));
        let prepared = PreparedGraph::new_shared(g);
        let svc = IndexService::build("BFL", prepared, &BuildOpts::default(), 3).unwrap();
        assert_eq!(svc.name(), "BFL");
        assert_eq!(svc.num_vertices(), 150);
        let pairs: Vec<_> = (0..200)
            .map(|_| {
                (
                    VertexId(rng.random_range(0..150)),
                    VertexId(rng.random_range(0..150)),
                )
            })
            .collect();
        let batch = svc.query_batch(&pairs);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(batch[i], svc.query(s, t));
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        let prepared = PreparedGraph::new(reach_graph::fixtures::figure1a());
        let e = IndexService::build("NotAnIndex", prepared, &BuildOpts::default(), 1).unwrap_err();
        assert!(e.to_string().contains("NotAnIndex"));
    }
}
