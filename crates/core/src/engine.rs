//! Guided traversal: the machinery that turns a partial index into an
//! exact oracle.
//!
//! §5 of the survey: *"Let v be a current frontier vertex during the
//! online traversal from s. In a partial index without false
//! positives, if the index lookup for evaluating the reachability from
//! v to t returns true, the online traversal can immediately
//! terminate. In the case of a partial index without false negatives,
//! the online traversal does not need to visit the outgoing neighbours
//! of v if the index lookup … returns false."* [`GuidedSearch`] is
//! precisely that loop.

use crate::audit::{self, Violation};
use crate::index::{Certainty, IndexMeta, ReachFilter, ReachIndex};
use reach_graph::traverse::{Side, VisitMap};
use reach_graph::{DiGraph, ScratchPool, VertexId};
use std::sync::Arc;

/// Work counters for one guided query, used by the `claims` harness to
/// show how much traversal the filter prunes away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices whose out-neighbors were expanded.
    pub expanded: usize,
    /// Index lookups performed.
    pub lookups: usize,
}

/// An exact reachability oracle built from a graph plus a pruning
/// filter (a partial index in the survey's terminology).
///
/// `Send + Sync` (for `F: Send + Sync`, which [`ReachFilter`]
/// requires): per-query scratch is checked out of a lock-free
/// [`ScratchPool`], so one `Arc<GuidedSearch<_>>` serves any number of
/// request threads and `query(&self, ..)` still allocates nothing in
/// the steady state.
pub struct GuidedSearch<F> {
    graph: Arc<DiGraph>,
    filter: F,
    meta: IndexMeta,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    visit: VisitMap,
    stack: Vec<VertexId>,
}

impl<F: ReachFilter> GuidedSearch<F> {
    /// Wraps `filter` over `graph`; `meta` describes the resulting
    /// technique (the filter's own name and classification).
    pub fn new(graph: Arc<DiGraph>, filter: F, meta: IndexMeta) -> Self {
        GuidedSearch {
            graph,
            filter,
            meta,
            scratch: ScratchPool::new(),
        }
    }

    fn fresh_scratch(&self) -> Scratch {
        Scratch {
            visit: VisitMap::new(self.graph.num_vertices()),
            stack: Vec::new(),
        }
    }

    /// The underlying filter, for direct lookup experiments.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// The graph the search runs on.
    pub fn graph(&self) -> &Arc<DiGraph> {
        &self.graph
    }

    /// [`ReachIndex::query`] with work counters.
    pub fn query_counted(&self, s: VertexId, t: VertexId) -> (bool, SearchStats) {
        let mut stats = SearchStats::default();
        if s == t {
            return (true, stats);
        }
        stats.lookups += 1;
        match self.filter.certain(s, t) {
            Certainty::Reachable => return (true, stats),
            Certainty::Unreachable => return (false, stats),
            Certainty::Unknown => {}
        }
        let scratch = &mut *self.scratch.checkout(|| self.fresh_scratch());
        scratch.visit.reset();
        scratch.stack.clear();
        scratch.stack.push(s);
        scratch.visit.mark(s, Side::Forward);
        while let Some(u) = scratch.stack.pop() {
            stats.expanded += 1;
            for &v in self.graph.out_neighbors(u) {
                if v == t {
                    return (true, stats);
                }
                if !scratch.visit.mark(v, Side::Forward) {
                    continue;
                }
                stats.lookups += 1;
                match self.filter.certain(v, t) {
                    Certainty::Reachable => return (true, stats),
                    // no-false-negative verdict: v's subtree cannot
                    // contain t, skip it entirely
                    Certainty::Unreachable => {}
                    Certainty::Unknown => scratch.stack.push(v),
                }
            }
        }
        (false, stats)
    }

    /// One traversal from `s` answering every pair in `group` (indexes
    /// into `pairs`, all with source `s`, all undecided by the filter).
    ///
    /// Per-target `Unreachable` pruning is not sound when one
    /// traversal serves many targets (a subtree empty of one target
    /// may contain another), so this is a plain DFS that stops as soon
    /// as every wanted target has been seen. The per-pair filter
    /// lookups have already run by the time this is called.
    fn query_multi_target(
        &self,
        s: VertexId,
        group: &[usize],
        pairs: &[(VertexId, VertexId)],
        out: &mut [bool],
    ) {
        let scratch = &mut *self.scratch.checkout(|| self.fresh_scratch());
        scratch.visit.reset();
        // Backward marks tag the still-wanted targets. A vertex holds
        // one stamp, so the tag is consumed when the traversal marks
        // the vertex Forward — which is fine: hits are recorded first.
        let mut remaining = 0usize;
        for &i in group {
            if scratch.visit.mark(pairs[i].1, Side::Backward) {
                remaining += 1;
            }
        }
        scratch.stack.clear();
        scratch.stack.push(s);
        scratch.visit.mark(s, Side::Forward);
        let mut found = 0usize;
        while let Some(u) = scratch.stack.pop() {
            for &v in self.graph.out_neighbors(u) {
                if scratch.visit.is_marked(v, Side::Backward) {
                    for &i in group {
                        if pairs[i].1 == v {
                            out[i] = true;
                        }
                    }
                    found += 1;
                    scratch.visit.mark(v, Side::Forward);
                    if found == remaining {
                        return;
                    }
                    scratch.stack.push(v);
                } else if scratch.visit.mark(v, Side::Forward) {
                    scratch.stack.push(v);
                }
            }
        }
    }
}

impl<F: ReachFilter> ReachIndex for GuidedSearch<F> {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        self.query_counted(s, t).0
    }

    /// Batch evaluation: per-pair filter lookups first (they decide
    /// most pairs on a good filter), then the undecided pairs are
    /// grouped by source so each group costs one traversal instead of
    /// one per pair.
    fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        let mut out = vec![false; pairs.len()];
        let mut open: Vec<usize> = Vec::new();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            if s == t {
                out[i] = true;
                continue;
            }
            match self.filter.certain(s, t) {
                Certainty::Reachable => out[i] = true,
                Certainty::Unreachable => {}
                Certainty::Unknown => open.push(i),
            }
        }
        open.sort_by_key(|&i| pairs[i].0 .0);
        let mut k = 0;
        while k < open.len() {
            let s = pairs[open[k]].0;
            let mut end = k;
            while end < open.len() && pairs[open[end]].0 == s {
                end += 1;
            }
            let group = &open[k..end];
            if group.len() == 1 {
                out[group[0]] = self.query(s, pairs[group[0]].1);
            } else {
                self.query_multi_target(s, group, pairs, &mut out);
            }
            k = end;
        }
        out
    }

    fn meta(&self) -> IndexMeta {
        self.meta
    }

    fn size_bytes(&self) -> usize {
        self.filter.size_bytes()
    }

    fn size_entries(&self) -> usize {
        self.filter.size_entries()
    }

    /// Probes the filter's definite verdicts against a BFS ground
    /// truth from sampled sources. The guided DFS trusts *every*
    /// `Reachable`/`Unreachable` verdict unconditionally, so a single
    /// wrong definite answer corrupts the lifted oracle — this is the
    /// no-false-negative check for BFL/IP/GRAIL and the
    /// no-false-positive check for Ferrari's exact intervals, at the
    /// verdict level. The filter's own structural hook runs first.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let name = self.meta.name;
        let mut out = self.filter.check_invariants(graph);
        let n = graph.num_vertices();
        if n != self.graph.num_vertices() {
            out.push(Violation {
                index: name,
                rule: "graph-mismatch",
                detail: format!(
                    "search graph has {} vertices, audited graph has {n}",
                    self.graph.num_vertices()
                ),
            });
            return out;
        }
        let mut visit = VisitMap::new(n);
        let mut buf = Vec::new();
        let mut wrong = 0usize;
        for s in audit::sample_vertices(n, 96) {
            let row = audit::closure_row(graph, s, &mut visit, &mut buf);
            for t in graph.vertices() {
                let verdict = self.filter.certain(s, t);
                let bad_rule = match verdict {
                    Certainty::Reachable if !row[t.index()] => "filter-false-positive",
                    Certainty::Unreachable if row[t.index()] => "filter-false-negative",
                    _ => continue,
                };
                wrong += 1;
                if wrong <= 5 {
                    out.push(Violation {
                        index: name,
                        rule: bad_rule,
                        detail: format!(
                            "filter verdict {verdict:?} for {s:?}->{t:?} contradicts traversal"
                        ),
                    });
                }
            }
        }
        if wrong > 5 {
            out.push(Violation {
                index: name,
                rule: "filter-verdicts",
                detail: format!("... and {} more wrong definite verdicts", wrong - 5),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{Completeness, Dynamism, FilterGuarantees, Framework, InputClass};

    /// A filter that knows nothing: guided search degenerates to DFS.
    struct Oblivious;
    impl ReachFilter for Oblivious {
        fn certain(&self, _: VertexId, _: VertexId) -> Certainty {
            Certainty::Unknown
        }
        fn guarantees(&self) -> FilterGuarantees {
            FilterGuarantees {
                definite_positive: false,
                definite_negative: false,
            }
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn size_entries(&self) -> usize {
            0
        }
    }

    /// A filter that answers `Unreachable` for one poisoned target
    /// subtree root, to check pruning is actually applied.
    struct BlockVertex(VertexId);
    impl ReachFilter for BlockVertex {
        fn certain(&self, s: VertexId, _: VertexId) -> Certainty {
            if s == self.0 {
                Certainty::Unreachable
            } else {
                Certainty::Unknown
            }
        }
        fn guarantees(&self) -> FilterGuarantees {
            FilterGuarantees {
                definite_positive: false,
                definite_negative: true,
            }
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn size_entries(&self) -> usize {
            0
        }
    }

    fn meta() -> IndexMeta {
        IndexMeta {
            name: "test",
            citation: "[-]",
            framework: Framework::Other,
            completeness: Completeness::Partial,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn graph() -> Arc<DiGraph> {
        // 0 -> 1 -> 2 -> 3, and 1 -> 4 (dead end)
        Arc::new(DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4)]))
    }

    #[test]
    fn oblivious_filter_is_plain_dfs() {
        let gs = GuidedSearch::new(graph(), Oblivious, meta());
        assert!(gs.query(VertexId(0), VertexId(3)));
        assert!(!gs.query(VertexId(3), VertexId(0)));
        assert!(gs.query(VertexId(2), VertexId(2)));
    }

    #[test]
    fn unreachable_verdict_prunes_subtree() {
        // Block vertex 1: the only route 0 -> 3 goes through it, so a
        // (deliberately wrong) filter makes the search miss it —
        // proving the subtree really was skipped.
        let gs = GuidedSearch::new(graph(), BlockVertex(VertexId(1)), meta());
        assert!(!gs.query(VertexId(0), VertexId(3)));
        // edge directly to target is still found before the lookup
        assert!(gs.query(VertexId(0), VertexId(1)));
    }

    #[test]
    fn stats_count_lookups_and_expansions() {
        let gs = GuidedSearch::new(graph(), Oblivious, meta());
        let (ok, stats) = gs.query_counted(VertexId(0), VertexId(4));
        assert!(ok);
        assert!(stats.lookups >= 1);
        let (ok, stats) = gs.query_counted(VertexId(4), VertexId(0));
        assert!(!ok);
        assert_eq!(stats.expanded, 1, "vertex 4 has no out-neighbors");
    }

    #[test]
    fn scratch_is_reused_across_queries() {
        let gs = GuidedSearch::new(graph(), Oblivious, meta());
        for _ in 0..100 {
            assert!(gs.query(VertexId(0), VertexId(3)));
            assert!(!gs.query(VertexId(4), VertexId(2)));
        }
    }

    #[test]
    fn guided_search_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GuidedSearch<Oblivious>>();
        assert_send_sync::<GuidedSearch<BlockVertex>>();
    }

    #[test]
    fn query_batch_groups_same_source_pairs() {
        let gs = GuidedSearch::new(graph(), Oblivious, meta());
        let pairs = [
            (VertexId(0), VertexId(3)),
            (VertexId(0), VertexId(4)),
            (VertexId(0), VertexId(0)),
            (VertexId(3), VertexId(0)),
            (VertexId(1), VertexId(3)),
            (VertexId(1), VertexId(0)),
            (VertexId(4), VertexId(2)),
        ];
        let batch = gs.query_batch(&pairs);
        let per_pair: Vec<bool> = pairs.iter().map(|&(s, t)| gs.query(s, t)).collect();
        assert_eq!(batch, per_pair);
    }

    #[test]
    fn one_index_serves_many_threads() {
        let gs = std::sync::Arc::new(GuidedSearch::new(graph(), Oblivious, meta()));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let gs = std::sync::Arc::clone(&gs);
                scope.spawn(move || {
                    for _ in 0..200 {
                        assert!(gs.query(VertexId(0), VertexId(3)));
                        assert!(!gs.query(VertexId(4), VertexId(2)));
                    }
                });
            }
        });
    }
}
