//! The index-invariant audit subsystem.
//!
//! Every index family in the survey rests on a structural invariant —
//! tree-cover intervals must nest along edges, 2-hop covers must be
//! sound and complete, approximate-TC filters must never produce
//! false negatives.  This module gives those invariants a runtime
//! check: [`crate::ReachIndex::check_invariants`] (and the
//! [`crate::ReachFilter`] twin) let each family validate its own
//! labels, and [`audit_index`]/[`audit_plain`] wrap that structural
//! pass with a sampled differential against the BFS ground truth,
//! batch-vs-scalar consistency, and self-reachability probes.
//!
//! The CLI surfaces the whole thing as `reach verify --index
//! NAME|--all`; the differential property suite in
//! `tests/verify_differential.rs` runs it across the registry.

use crate::index::ReachIndex;
use crate::pipeline::{BuildOpts, PlainSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_graph::traverse::{self, VisitMap};
use reach_graph::{DiGraph, PreparedGraph, VertexId};
use std::fmt;

/// One invariant violation found by an audit. The audit API reports
/// all findings instead of stopping at the first, so a broken build
/// shows the blast radius at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Technique name (`IndexMeta::name`).
    pub index: &'static str,
    /// Short rule identifier, e.g. `"2hop-completeness"`.
    pub rule: &'static str,
    /// Human-readable description of the failing instance.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.index, self.rule, self.detail)
    }
}

/// Sampling parameters for an audit run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Query pairs drawn for the differential pass.
    pub pairs: usize,
    /// Seed for the pair sampler.
    pub seed: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            pairs: 1_000,
            seed: 0xA0D17,
        }
    }
}

/// The result of auditing one index.
#[derive(Debug, Clone)]
pub struct AuditOutcome {
    /// Technique name.
    pub name: &'static str,
    /// Differential pairs actually checked.
    pub pairs_checked: usize,
    /// Every violation found (empty = clean).
    pub violations: Vec<Violation>,
}

impl AuditOutcome {
    /// No violations of any kind.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Caps per finding category so a systematically broken index emits a
/// readable report, not one line per sampled pair.
const MAX_PER_RULE: usize = 5;

/// Audits a built index against `g`: sampled differential vs the
/// multi-source-BFS ground truth, `query_batch` vs scalar `query`
/// consistency, self-reachability, and the index's own structural
/// [`check_invariants`](ReachIndex::check_invariants) hook.
pub fn audit_index(idx: &dyn ReachIndex, g: &DiGraph, cfg: &AuditConfig) -> AuditOutcome {
    let name = idx.meta().name;
    let mut violations = Vec::new();
    let pairs = sample_pairs(g, cfg);

    // Differential: the index must agree with traversal on every
    // sampled pair. Soundness and completeness failures are reported
    // separately because they implicate different invariants.
    let truth = traverse::batch_reaches(g, &pairs);
    let scalar: Vec<bool> = pairs.iter().map(|&(s, t)| idx.query(s, t)).collect();
    let mut false_pos = 0usize;
    let mut false_neg = 0usize;
    for (i, &(s, t)) in pairs.iter().enumerate() {
        if scalar[i] == truth[i] {
            continue;
        }
        if scalar[i] {
            false_pos += 1;
            if false_pos <= MAX_PER_RULE {
                violations.push(Violation {
                    index: name,
                    rule: "differential-soundness",
                    detail: format!("claims {s:?} reaches {t:?}, but no path exists"),
                });
            }
        } else {
            false_neg += 1;
            if false_neg <= MAX_PER_RULE {
                violations.push(Violation {
                    index: name,
                    rule: "differential-completeness",
                    detail: format!("denies {s:?} reaches {t:?}, but a path exists"),
                });
            }
        }
    }
    overflow_note(name, "differential-soundness", false_pos, &mut violations);
    overflow_note(
        name,
        "differential-completeness",
        false_neg,
        &mut violations,
    );

    // Batch evaluation must return exactly what the per-pair loop does.
    let batch = idx.query_batch(&pairs);
    let mut batch_bad = 0usize;
    for (i, &(s, t)) in pairs.iter().enumerate() {
        if batch[i] != scalar[i] {
            batch_bad += 1;
            if batch_bad <= MAX_PER_RULE {
                violations.push(Violation {
                    index: name,
                    rule: "batch-consistency",
                    detail: format!(
                        "query_batch says {} for {s:?}->{t:?}, scalar query says {}",
                        batch[i], scalar[i]
                    ),
                });
            }
        }
    }
    overflow_note(name, "batch-consistency", batch_bad, &mut violations);

    // Reflexivity: every vertex reaches itself.
    for v in sample_vertices(g.num_vertices(), 64) {
        if !idx.query(v, v) {
            violations.push(Violation {
                index: name,
                rule: "self-reachability",
                detail: format!("{v:?} does not reach itself"),
            });
        }
    }

    // Per-family structural invariants.
    violations.extend(idx.check_invariants(g));

    AuditOutcome {
        name,
        pairs_checked: pairs.len(),
        violations,
    }
}

/// Builds `spec` over `prepared` and audits the result.
pub fn audit_plain_spec(
    spec: &PlainSpec,
    prepared: &PreparedGraph,
    opts: &BuildOpts,
    cfg: &AuditConfig,
) -> AuditOutcome {
    let idx = (spec.build)(prepared, opts);
    audit_index(idx.as_ref(), prepared.graph(), cfg)
}

/// [`audit_plain_spec`] by registry name; `None` for unknown names.
pub fn audit_plain(
    name: &str,
    prepared: &PreparedGraph,
    opts: &BuildOpts,
    cfg: &AuditConfig,
) -> Option<AuditOutcome> {
    crate::pipeline::plain_spec(name).map(|spec| audit_plain_spec(spec, prepared, opts, cfg))
}

fn overflow_note(index: &'static str, rule: &'static str, count: usize, out: &mut Vec<Violation>) {
    if count > MAX_PER_RULE {
        out.push(Violation {
            index,
            rule,
            detail: format!("... and {} more such pairs", count - MAX_PER_RULE),
        });
    }
}

/// Seeded pair sample: half uniform, half positives manufactured by
/// short random forward walks (uniform pairs on sparse graphs are
/// almost all unreachable, which would leave completeness untested).
fn sample_pairs(g: &DiGraph, cfg: &AuditConfig) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut pairs = Vec::with_capacity(cfg.pairs);
    while pairs.len() < cfg.pairs {
        let s = VertexId(rng.random_range(0..n as u32));
        if pairs.len() % 2 == 0 {
            pairs.push((s, VertexId(rng.random_range(0..n as u32))));
        } else {
            let mut cur = s;
            for _ in 0..rng.random_range(1..8usize) {
                let outs = g.out_neighbors(cur);
                if outs.is_empty() {
                    break;
                }
                cur = outs[rng.random_range(0..outs.len())];
            }
            pairs.push((s, cur));
        }
    }
    pairs
}

/// Up to `limit` vertices, evenly spaced so the sample is
/// deterministic and covers the id range. Public so the labeled
/// crate's audit can share the sampler.
pub fn sample_vertices(n: usize, limit: usize) -> Vec<VertexId> {
    if n == 0 || limit == 0 {
        return Vec::new();
    }
    let step = n.div_ceil(limit).max(1);
    (0..n).step_by(step).map(|i| VertexId(i as u32)).collect()
}

/// Membership row of `s`'s forward closure (including `s`).
pub(crate) fn closure_row(
    g: &DiGraph,
    s: VertexId,
    visit: &mut VisitMap,
    buf: &mut Vec<VertexId>,
) -> Vec<bool> {
    traverse::forward_closure_with(g, s, visit, buf);
    let mut row = vec![false; g.num_vertices()];
    for &v in buf.iter() {
        row[v.index()] = true;
    }
    row
}

/// Shared validator for the 2-hop family (2-Hop, PLL, TFL, DL, TOL):
/// labels must be strictly sorted, every hub entry must be *sound* (a
/// rank in `lout(x)` means `x` really reaches that hub; a rank in
/// `lin(x)` means the hub really reaches `x`), and the cover must be
/// *complete* (every reachable sampled pair is witnessed by a common
/// hub).
pub(crate) fn check_two_hop_cover<'a>(
    name: &'static str,
    g: &DiGraph,
    lout: impl Fn(VertexId) -> &'a [u32],
    lin: impl Fn(VertexId) -> &'a [u32],
    vertex_at: impl Fn(u32) -> VertexId,
    out: &mut Vec<Violation>,
) {
    let n = g.num_vertices();
    let mut visit = VisitMap::new(n);
    let mut buf = Vec::new();

    // Label order: the query's sorted-merge intersection requires
    // strictly ascending ranks.
    for x in g.vertices() {
        for (kind, label) in [("lout", lout(x)), ("lin", lin(x))] {
            if label.windows(2).any(|w| w[0] >= w[1]) {
                out.push(Violation {
                    index: name,
                    rule: "2hop-label-order",
                    detail: format!("{kind}({x:?}) is not strictly ascending: {label:?}"),
                });
            }
        }
    }

    // Soundness: audit a sample of hub ranks against the hubs' true
    // forward/backward closures.
    let mut unsound = 0usize;
    for r in sample_vertices(n, 48).iter().map(|v| v.0) {
        let hub = vertex_at(r);
        let fwd = closure_row(g, hub, &mut visit, &mut buf);
        traverse::backward_closure_with(g, hub, &mut visit, &mut buf);
        let mut bwd = vec![false; n];
        for &v in &buf {
            bwd[v.index()] = true;
        }
        for x in g.vertices() {
            if lin(x).binary_search(&r).is_ok() && !fwd[x.index()] {
                unsound += 1;
                if unsound <= MAX_PER_RULE {
                    out.push(Violation {
                        index: name,
                        rule: "2hop-soundness",
                        detail: format!(
                            "lin({x:?}) lists hub {hub:?} (rank {r}), but the hub does not reach {x:?}"
                        ),
                    });
                }
            }
            if lout(x).binary_search(&r).is_ok() && !bwd[x.index()] {
                unsound += 1;
                if unsound <= MAX_PER_RULE {
                    out.push(Violation {
                        index: name,
                        rule: "2hop-soundness",
                        detail: format!(
                            "lout({x:?}) lists hub {hub:?} (rank {r}), but {x:?} does not reach the hub"
                        ),
                    });
                }
            }
        }
    }
    overflow_note(name, "2hop-soundness", unsound, out);

    // Completeness: from sampled sources, every truly reachable
    // target must be witnessed by a common hub.
    let mut incomplete = 0usize;
    for s in sample_vertices(n, 48) {
        let row = closure_row(g, s, &mut visit, &mut buf);
        for t in g.vertices() {
            if t == s || !row[t.index()] {
                continue;
            }
            if !sorted_ranks_intersect(lout(s), lin(t)) {
                incomplete += 1;
                if incomplete <= MAX_PER_RULE {
                    out.push(Violation {
                        index: name,
                        rule: "2hop-completeness",
                        detail: format!("{s:?} reaches {t:?} but no common hub witnesses it"),
                    });
                }
            }
        }
    }
    overflow_note(name, "2hop-completeness", incomplete, out);
}

fn sorted_ranks_intersect(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexMeta;
    use crate::index::{Completeness, Dynamism, Framework, InputClass};
    use crate::pipeline::{plain_feasible, plain_names};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::generators::random_digraph;
    use reach_graph::traverse::bfs_reaches;

    fn meta(name: &'static str) -> IndexMeta {
        IndexMeta {
            name,
            citation: "[-]",
            framework: Framework::Other,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    /// Ground truth with a lie: flips the verdict for one pair.
    struct OneLie {
        g: DiGraph,
        pair: (VertexId, VertexId),
    }

    impl ReachIndex for OneLie {
        fn query(&self, s: VertexId, t: VertexId) -> bool {
            let mut vm = VisitMap::new(self.g.num_vertices());
            let truth = bfs_reaches(&self.g, s, t, &mut vm);
            if (s, t) == self.pair {
                !truth
            } else {
                truth
            }
        }
        fn meta(&self) -> IndexMeta {
            meta("OneLie")
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn size_entries(&self) -> usize {
            0
        }
    }

    /// Correct scalar queries, broken batch override.
    struct BadBatch {
        g: DiGraph,
    }

    impl ReachIndex for BadBatch {
        fn query(&self, s: VertexId, t: VertexId) -> bool {
            let mut vm = VisitMap::new(self.g.num_vertices());
            bfs_reaches(&self.g, s, t, &mut vm)
        }
        fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
            vec![false; pairs.len()]
        }
        fn meta(&self) -> IndexMeta {
            meta("BadBatch")
        }
        fn size_bytes(&self) -> usize {
            0
        }
        fn size_entries(&self) -> usize {
            0
        }
    }

    #[test]
    fn audit_catches_a_single_wrong_answer() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = random_digraph(30, 70, &mut rng);
        // lie about a self-pair so every sampler path can see it
        let idx = OneLie {
            g: g.clone(),
            pair: (VertexId(3), VertexId(3)),
        };
        let outcome = audit_index(&idx, &g, &AuditConfig::default());
        assert!(!outcome.is_clean());
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.rule == "self-reachability" || v.rule.starts_with("differential")));
    }

    #[test]
    fn audit_catches_batch_divergence() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = random_digraph(30, 70, &mut rng);
        let idx = BadBatch { g: g.clone() };
        let outcome = audit_index(&idx, &g, &AuditConfig::default());
        assert!(outcome
            .violations
            .iter()
            .any(|v| v.rule == "batch-consistency"));
    }

    #[test]
    fn every_registry_index_audits_clean_on_a_cyclic_graph() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = random_digraph(120, 320, &mut rng);
        let prepared = PreparedGraph::new(g);
        let opts = BuildOpts::default();
        let cfg = AuditConfig {
            pairs: 400,
            seed: 11,
        };
        for name in plain_names() {
            if !plain_feasible(name, prepared.num_vertices(), prepared.num_edges()) {
                continue;
            }
            let outcome = audit_plain(name, &prepared, &opts, &cfg).expect("registry name");
            assert!(
                outcome.is_clean(),
                "{name} violations: {:#?}",
                outcome.violations
            );
            assert_eq!(outcome.pairs_checked, 400);
        }
    }

    #[test]
    fn unknown_names_are_not_audited() {
        let prepared = PreparedGraph::new(DiGraph::from_edges(2, &[(0, 1)]));
        assert!(audit_plain(
            "no such index",
            &prepared,
            &BuildOpts::default(),
            &AuditConfig::default()
        )
        .is_none());
    }

    #[test]
    fn sample_vertices_is_bounded_and_in_range() {
        let vs = sample_vertices(1_000, 64);
        assert!(vs.len() <= 64 && !vs.is_empty());
        assert!(vs.iter().all(|v| v.index() < 1_000));
        assert!(sample_vertices(0, 64).is_empty());
        assert_eq!(sample_vertices(3, 64).len(), 3);
    }
}
