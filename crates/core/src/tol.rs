//! TOL \[55\]: the total-order 2-hop labeling framework, with the TFL
//! \[13\] and DL \[25\] instantiations and dynamic maintenance.
//!
//! §3.2: *"TOL is a general approach for computing the 2-hop index
//! with a total order of vertices as input, and TFL, DL, and PLL are
//! instantiations of TOL."* Every vertex `w` labels exactly its
//! *restricted closure*: the vertices reachable from `w` along paths
//! whose interior vertices all have lower priority than `w`. This is
//! the canonical label set of the total order:
//!
//! * **complete** — for any reachable pair `(s, t)`, the
//!   highest-priority vertex on a witness path appears in
//!   `Lout(s) ∩ Lin(t)`;
//! * **local** — whether `w ∈ Lin(x)` depends only on `w`'s restricted
//!   closure, never on other hops' labels, which is what makes edge
//!   insertions *and* deletions maintainable without cascading
//!   invalidation (the property the TOL paper exploits for its
//!   dynamic-graph support).

use crate::audit::Violation;
use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use reach_graph::{Dag, DiGraph, VertexId};

/// The vertex total order a TOL instance is built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderStrategy {
    /// Topological order of a DAG — the TFL \[13\] instantiation.
    Topological,
    /// Descending total degree — the DL \[25\] instantiation (the same
    /// order family as PLL \[49\]).
    DegreeDescending,
    /// Ascending vertex id, for ablation baselines.
    ById,
}

/// A TOL index instance.
///
/// ```
/// use reach_core::tol::{OrderStrategy, Tol};
/// use reach_core::ReachIndex;
/// use reach_graph::{DiGraph, VertexId};
///
/// let g = DiGraph::from_edges(3, &[(0, 1)]);
/// let mut tol = Tol::build(&g, OrderStrategy::DegreeDescending);
/// assert!(!tol.query(VertexId(0), VertexId(2)));
///
/// tol.insert_edge(VertexId(1), VertexId(2));
/// assert!(tol.query(VertexId(0), VertexId(2)));
///
/// tol.delete_edge(VertexId(0), VertexId(1));
/// assert!(!tol.query(VertexId(0), VertexId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct Tol {
    // dynamic adjacency: the index owns its graph so updates stay local
    out_adj: Vec<Vec<VertexId>>,
    in_adj: Vec<Vec<VertexId>>,
    /// rank 0 = highest priority
    rank_of: Vec<u32>,
    vertex_at: Vec<VertexId>,
    /// `lin[x]`: sorted ranks of hops whose restricted closure contains `x`.
    lin: Vec<Vec<u32>>,
    /// `lout[x]`: sorted ranks of hops whose restricted *backward*
    /// closure contains `x`.
    lout: Vec<Vec<u32>>,
    meta: IndexMeta,
}

fn order_ranks(g: &DiGraph, strategy: OrderStrategy) -> Vec<VertexId> {
    match strategy {
        OrderStrategy::Topological => {
            unreachable!("topological strategy is built via build_tfl")
        }
        OrderStrategy::DegreeDescending => {
            let mut vs: Vec<VertexId> = g.vertices().collect();
            vs.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
            vs
        }
        OrderStrategy::ById => g.vertices().collect(),
    }
}

impl Tol {
    /// Builds a TOL index over `g` with an explicit vertex order
    /// (`order[0]` is the highest-priority hop).
    pub fn build_with_order(g: &DiGraph, order: &[VertexId], meta: IndexMeta) -> Self {
        assert_eq!(
            order.len(),
            g.num_vertices(),
            "order must cover all vertices"
        );
        let n = g.num_vertices();
        let mut rank_of = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank_of[v.index()] = r as u32;
        }
        // Initial construction appends (hop, member) facts and sorts
        // once per vertex — ~3× faster than the sorted-insertion path,
        // which only the incremental updates need.
        let mut lin: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut lout: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut seen = vec![false; n];
        let mut queue: Vec<VertexId> = Vec::new();
        for r in 0..n as u32 {
            let w = order[r as usize];
            for forward in [true, false] {
                queue.clear();
                queue.push(w);
                seen[w.index()] = true;
                let mut head = 0;
                while head < queue.len() {
                    let x = queue[head];
                    head += 1;
                    if forward {
                        lin[x.index()].push(r);
                    } else {
                        lout[x.index()].push(r);
                    }
                    if x == w || rank_of[x.index()] > r {
                        let adj = if forward {
                            g.out_neighbors(x)
                        } else {
                            g.in_neighbors(x)
                        };
                        for &y in adj {
                            if !seen[y.index()] {
                                seen[y.index()] = true;
                                queue.push(y);
                            }
                        }
                    }
                }
                for &x in &queue {
                    seen[x.index()] = false;
                }
            }
        }
        // ranks were appended in ascending hop order, so the label
        // lists are already sorted
        Tol {
            out_adj: g.vertices().map(|v| g.out_neighbors(v).to_vec()).collect(),
            in_adj: g.vertices().map(|v| g.in_neighbors(v).to_vec()).collect(),
            rank_of,
            vertex_at: order.to_vec(),
            lin,
            lout,
            meta,
        }
    }

    /// Builds TOL over a general graph with the given order strategy
    /// (not `Topological`, which needs [`build_tfl`]).
    pub fn build(g: &DiGraph, strategy: OrderStrategy) -> Self {
        assert!(
            strategy != OrderStrategy::Topological,
            "use build_tfl for the topological instantiation"
        );
        let order = order_ranks(g, strategy);
        Tol::build_with_order(
            g,
            &order,
            IndexMeta {
                name: "TOL",
                citation: "[55]",
                framework: Framework::TwoHop,
                completeness: Completeness::Complete,
                input: InputClass::Dag,
                dynamism: Dynamism::InsertDelete,
            },
        )
    }

    /// (Re)runs hop `r`'s restricted BFS, labeling everything visited.
    fn restricted_bfs(&mut self, r: u32, forward: bool) {
        let w = self.vertex_at[r as usize];
        let mut queue = vec![w];
        let mut seen = vec![false; self.rank_of.len()];
        seen[w.index()] = true;
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            let labels = if forward {
                &mut self.lin[x.index()]
            } else {
                &mut self.lout[x.index()]
            };
            if let Err(pos) = labels.binary_search(&r) {
                labels.insert(pos, r);
            }
            // interior restriction: only lower-priority vertices may be
            // passed through (the hop itself always expands)
            if x != w && self.rank_of[x.index()] < r {
                continue;
            }
            let adj = if forward {
                &self.out_adj[x.index()]
            } else {
                &self.in_adj[x.index()]
            };
            for &y in adj {
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    queue.push(y);
                }
            }
        }
    }

    /// Removes every label entry contributed by hop `r`.
    fn clear_hop(&mut self, r: u32) {
        for labels in self.lin.iter_mut().chain(self.lout.iter_mut()) {
            if let Ok(pos) = labels.binary_search(&r) {
                labels.remove(pos);
            }
        }
    }

    /// Inserts the edge `u -> v` and extends the labels of every hop
    /// whose restricted closure can grow through it.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        if self.out_adj[u.index()].contains(&v) {
            return;
        }
        self.out_adj[u.index()].push(v);
        self.in_adj[v.index()].push(u);
        for r in self.affected_hops(u, true) {
            self.extend_hop(r, v, true);
        }
        for r in self.affected_hops(v, false) {
            self.extend_hop(r, u, false);
        }
    }

    /// Deletes the edge `u -> v` and recomputes the labels of every hop
    /// whose restricted closure may have shrunk.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) {
        let Some(pos) = self.out_adj[u.index()].iter().position(|&x| x == v) else {
            return;
        };
        // affected hops must be identified before the edge disappears
        let fwd = self.affected_hops(u, true);
        let bwd = self.affected_hops(v, false);
        self.out_adj[u.index()].remove(pos);
        let ipos = self.in_adj[v.index()].iter().position(|&x| x == u).unwrap();
        self.in_adj[v.index()].remove(ipos);
        for &r in fwd.iter().chain(bwd.iter()) {
            self.clear_hop(r);
        }
        for r in fwd.into_iter().chain(bwd) {
            self.restricted_bfs(r, true);
            self.restricted_bfs(r, false);
        }
    }

    /// Hops `w` whose restricted (forward/backward) closure contains
    /// `end` with `end` usable as an interior vertex — exactly the
    /// hops whose closure an edge at `end` can affect.
    fn affected_hops(&self, end: VertexId, forward: bool) -> Vec<u32> {
        let labels = if forward {
            &self.lin[end.index()]
        } else {
            &self.lout[end.index()]
        };
        labels
            .iter()
            .copied()
            .filter(|&r| self.vertex_at[r as usize] == end || self.rank_of[end.index()] > r)
            .collect()
    }

    /// Resumes hop `r`'s restricted BFS from `start` (after an edge
    /// insertion, only newly-reachable vertices need labeling).
    fn extend_hop(&mut self, r: u32, start: VertexId, forward: bool) {
        let w = self.vertex_at[r as usize];
        let mut queue = vec![start];
        let mut seen = vec![false; self.rank_of.len()];
        seen[start.index()] = true;
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            let labels = if forward {
                &mut self.lin[x.index()]
            } else {
                &mut self.lout[x.index()]
            };
            match labels.binary_search(&r) {
                Ok(_) => continue, // reached the previously-labeled region
                Err(pos) => labels.insert(pos, r),
            }
            if x != w && self.rank_of[x.index()] < r {
                continue;
            }
            let adj = if forward {
                &self.out_adj[x.index()]
            } else {
                &self.in_adj[x.index()]
            };
            for &y in adj {
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    queue.push(y);
                }
            }
        }
    }

    /// Assembles an index from prebuilt labels (used by the parallel
    /// builder; the labels must be the canonical restricted closures
    /// of `order`).
    pub(crate) fn from_parts(
        g: &DiGraph,
        vertex_at: Vec<VertexId>,
        rank_of: Vec<u32>,
        lin: Vec<Vec<u32>>,
        lout: Vec<Vec<u32>>,
        meta: IndexMeta,
    ) -> Self {
        Tol {
            out_adj: g.vertices().map(|v| g.out_neighbors(v).to_vec()).collect(),
            in_adj: g.vertices().map(|v| g.in_neighbors(v).to_vec()).collect(),
            rank_of,
            vertex_at,
            lin,
            lout,
            meta,
        }
    }

    /// The rank (priority position) of `v` in the total order.
    pub fn rank_of(&self, v: VertexId) -> u32 {
        self.rank_of[v.index()]
    }

    /// The vertex holding rank `r`.
    pub fn vertex_at(&self, r: u32) -> VertexId {
        self.vertex_at[r as usize]
    }

    /// The in-label of `x` as hop ranks, sorted ascending.
    pub fn lin(&self, x: VertexId) -> &[u32] {
        &self.lin[x.index()]
    }

    /// The out-label of `x` as hop ranks, sorted ascending.
    pub fn lout(&self, x: VertexId) -> &[u32] {
        &self.lout[x.index()]
    }
}

/// Sorted-slice intersection test (the 2-hop query primitive).
pub(crate) fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl ReachIndex for Tol {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        s == t || sorted_intersects(&self.lout[s.index()], &self.lin[t.index()])
    }

    fn meta(&self) -> IndexMeta {
        self.meta
    }

    fn size_bytes(&self) -> usize {
        4 * self.size_entries() + 48 * self.lin.len()
    }

    fn size_entries(&self) -> usize {
        self.lin.iter().map(Vec::len).sum::<usize>() + self.lout.iter().map(Vec::len).sum::<usize>()
    }

    /// 2-hop cover validation for the whole TOL family (TOL, TFL,
    /// DL): label order, hub soundness, witness completeness.
    /// `graph` must reflect the index's *current* edge set — after
    /// `insert_edge`/`delete_edge`, validate against the updated
    /// graph, not the one the index was first built on.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let name = self.meta.name;
        let mut out = Vec::new();
        if graph.num_vertices() != self.lin.len() {
            out.push(Violation {
                index: name,
                rule: "graph-mismatch",
                detail: format!(
                    "index covers {} vertices, graph has {}",
                    self.lin.len(),
                    graph.num_vertices()
                ),
            });
            return out;
        }
        crate::audit::check_two_hop_cover(
            name,
            graph,
            |x| self.lout(x),
            |x| self.lin(x),
            |r| self.vertex_at(r),
            &mut out,
        );
        out
    }
}

/// Builds TFL \[13\]: TOL instantiated with the topological order of a DAG.
pub fn build_tfl(dag: &Dag) -> Tol {
    Tol::build_with_order(
        dag.graph(),
        dag.topo_order(),
        IndexMeta {
            name: "TFL",
            citation: "[13]",
            framework: Framework::TwoHop,
            completeness: Completeness::Complete,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

/// Builds DL \[25\]: TOL instantiated with the degree-descending order,
/// directly on a general graph.
pub fn build_dl(g: &DiGraph) -> Tol {
    let order = order_ranks(g, OrderStrategy::DegreeDescending);
    Tol::build_with_order(
        g,
        &order,
        IndexMeta {
            name: "DL",
            citation: "[25]",
            framework: Framework::TwoHop,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use reach_graph::fixtures;
    use reach_graph::generators::{random_dag, random_digraph};

    fn check_exact(g: &DiGraph, tol: &Tol) {
        let tc = TransitiveClosure::build(g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(tol.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn tfl_exact_on_figure1() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let tfl = build_tfl(&dag);
        check_exact(dag.graph(), &tfl);
        assert!(tfl.query(fixtures::A, fixtures::G));
    }

    #[test]
    fn dl_exact_on_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(91);
        for _ in 0..4 {
            let g = random_digraph(50, 140, &mut rng);
            check_exact(&g, &build_dl(&g));
        }
    }

    #[test]
    fn all_orders_give_exact_indexes() {
        let mut rng = SmallRng::seed_from_u64(92);
        let dag = random_dag(70, 180, &mut rng);
        check_exact(dag.graph(), &build_tfl(&dag));
        check_exact(
            dag.graph(),
            &Tol::build(dag.graph(), OrderStrategy::DegreeDescending),
        );
        check_exact(dag.graph(), &Tol::build(dag.graph(), OrderStrategy::ById));
    }

    #[test]
    fn labels_are_sound() {
        // w ∈ lin(x) implies w reaches x; w ∈ lout(x) implies x reaches w
        let mut rng = SmallRng::seed_from_u64(93);
        let g = random_digraph(40, 100, &mut rng);
        let tol = build_dl(&g);
        let tc = TransitiveClosure::build(&g);
        for x in g.vertices() {
            for &r in tol.lin(x) {
                assert!(tc.reaches(tol.vertex_at(r), x));
            }
            for &r in tol.lout(x) {
                assert!(tc.reaches(x, tol.vertex_at(r)));
            }
        }
    }

    #[test]
    fn every_vertex_labels_itself() {
        let g = fixtures::figure1a();
        let tol = build_dl(&g);
        for v in g.vertices() {
            let r = tol.rank_of(v);
            assert!(tol.lin(v).contains(&r));
            assert!(tol.lout(v).contains(&r));
        }
    }

    #[test]
    fn insertions_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(94);
        let g = random_digraph(30, 40, &mut rng);
        let mut tol = build_dl(&g);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..25 {
            let u = rng.random_range(0..30u32);
            let mut v = rng.random_range(0..29u32);
            if v >= u {
                v += 1;
            }
            tol.insert_edge(VertexId(u), VertexId(v));
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
            let g2 = DiGraph::from_edges(30, &edges);
            check_exact(&g2, &tol);
        }
    }

    #[test]
    fn deletions_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(95);
        let g = random_digraph(25, 90, &mut rng);
        let mut tol = build_dl(&g);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..30 {
            if edges.is_empty() {
                break;
            }
            let i = rng.random_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            tol.delete_edge(VertexId(u), VertexId(v));
            let g2 = DiGraph::from_edges(25, &edges);
            check_exact(&g2, &tol);
        }
    }

    #[test]
    fn mixed_update_workload_matches_rebuild() {
        let mut rng = SmallRng::seed_from_u64(96);
        let g = random_digraph(20, 40, &mut rng);
        let mut tol = Tol::build(&g, OrderStrategy::ById);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..40 {
            if rng.random_bool(0.5) || edges.is_empty() {
                let u = rng.random_range(0..20u32);
                let mut v = rng.random_range(0..19u32);
                if v >= u {
                    v += 1;
                }
                if !edges.contains(&(u, v)) {
                    tol.insert_edge(VertexId(u), VertexId(v));
                    edges.push((u, v));
                }
            } else {
                let i = rng.random_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                tol.delete_edge(VertexId(u), VertexId(v));
            }
            let g2 = DiGraph::from_edges(20, &edges);
            check_exact(&g2, &tol);
        }
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let g = fixtures::figure1a();
        let mut tol = build_dl(&g);
        let before = tol.size_entries();
        tol.insert_edge(fixtures::A, fixtures::D); // already present
        assert_eq!(tol.size_entries(), before);
        tol.delete_edge(fixtures::B, fixtures::A); // never existed
        check_exact(&g, &tol);
    }

    #[test]
    fn sorted_intersection_unit() {
        assert!(sorted_intersects(&[1, 3, 5], &[5, 9]));
        assert!(!sorted_intersects(&[1, 3, 5], &[0, 2, 4]));
        assert!(!sorted_intersects(&[], &[1]));
        assert!(sorted_intersects(&[7], &[7]));
    }

    #[test]
    fn insert_into_empty_graph() {
        let g = DiGraph::from_edges(5, &[]);
        let mut tol = Tol::build(&g, OrderStrategy::ById);
        tol.insert_edge(VertexId(0), VertexId(1));
        tol.insert_edge(VertexId(1), VertexId(2));
        assert!(tol.query(VertexId(0), VertexId(2)));
        assert!(!tol.query(VertexId(2), VertexId(0)));
    }
}
