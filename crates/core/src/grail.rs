//! GRAIL \[50\]: k random interval labelings with guided search.
//!
//! Each labeling assigns `L_v = [low_v, rank_v]` where `rank_v` is a
//! randomized DFS post-order number and `low_v` is the minimum rank in
//! `v`'s forward closure. If `s` reaches `t` then `L_t ⊆ L_s` in
//! *every* labeling, so a single failed containment proves
//! non-reachability — no false negatives, the property §5 of the
//! survey singles out. Containment in all `k` labelings proves
//! nothing, so undecided queries fall to the guided DFS.

use crate::audit::Violation;
use crate::engine::GuidedSearch;
use crate::index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter,
};
use crate::interval::SpanningForest;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_graph::{Dag, DiGraph, VertexId};
use std::sync::Arc;

/// The pruning filter: `k` independent `(low, rank)` labelings.
#[derive(Debug, Clone)]
pub struct GrailFilter {
    /// `k` labelings, each `n` entries of `(low, rank)`.
    labelings: Vec<Vec<(u32, u32)>>,
}

/// Computes one GRAIL labeling from a random DFS post-order.
fn one_labeling<R: Rng>(dag: &Dag, rng: &mut R) -> Vec<(u32, u32)> {
    let forest = SpanningForest::build_random(dag.graph(), rng);
    let n = dag.num_vertices();
    let mut label: Vec<(u32, u32)> = (0..n)
        .map(|i| {
            let r = forest.end(VertexId::new(i));
            (r, r)
        })
        .collect();
    // low_v = min(rank_v, min over out-neighbors' low): one reverse-topo sweep
    for &u in dag.topo_order().iter().rev() {
        let mut low = label[u.index()].0;
        for &v in dag.out_neighbors(u) {
            low = low.min(label[v.index()].0);
        }
        label[u.index()].0 = low;
    }
    label
}

impl GrailFilter {
    /// Builds `k` independent labelings seeded from `rng`.
    pub fn build<R: Rng>(dag: &Dag, k: usize, rng: &mut R) -> Self {
        assert!(k >= 1, "GRAIL needs at least one labeling");
        GrailFilter {
            labelings: (0..k).map(|_| one_labeling(dag, rng)).collect(),
        }
    }

    /// Number of labelings (the `k` parameter).
    pub fn num_labelings(&self) -> usize {
        self.labelings.len()
    }

    /// Consumes the filter, exposing its raw labelings (used by the
    /// dynamic DAGGER wrapper).
    pub(crate) fn into_labelings(self) -> Vec<Vec<(u32, u32)>> {
        self.labelings
    }

    /// Assembles a filter from prebuilt labelings (used by the
    /// parallel builder).
    pub(crate) fn from_labelings(labelings: Vec<Vec<(u32, u32)>>) -> Self {
        assert!(!labelings.is_empty());
        GrailFilter { labelings }
    }
}

impl ReachFilter for GrailFilter {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        for label in &self.labelings {
            let (ls, rs) = label[s.index()];
            let (lt, rt) = label[t.index()];
            if !(ls <= lt && rt <= rs) {
                return Certainty::Unreachable;
            }
        }
        Certainty::Unknown
    }

    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: false,
            definite_negative: true,
        }
    }

    fn size_bytes(&self) -> usize {
        self.labelings.iter().map(|l| l.len() * 8).sum()
    }

    fn size_entries(&self) -> usize {
        // one interval per vertex per labeling
        self.labelings.iter().map(Vec::len).sum()
    }

    /// GRAIL's no-false-negative guarantee rests on interval nesting
    /// along edges: in every labeling, an edge `(u, v)` must satisfy
    /// `L_v ⊆ L_u` (so containment failing anywhere on a path proves
    /// non-reachability), and each label must be a well-formed
    /// interval `low ≤ rank`.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let name = "GRAIL";
        let mut out = Vec::new();
        for (k, label) in self.labelings.iter().enumerate() {
            if label.len() != graph.num_vertices() {
                out.push(Violation {
                    index: name,
                    rule: "graph-mismatch",
                    detail: format!(
                        "labeling {k} covers {} vertices, graph has {}",
                        label.len(),
                        graph.num_vertices()
                    ),
                });
                continue;
            }
            for u in graph.vertices() {
                let (lu, ru) = label[u.index()];
                if lu > ru {
                    out.push(Violation {
                        index: name,
                        rule: "grail-interval",
                        detail: format!("labeling {k}: {u:?} has low {lu} > rank {ru}"),
                    });
                }
                for &v in graph.out_neighbors(u) {
                    let (lv, rv) = label[v.index()];
                    if !(lu <= lv && rv <= ru) {
                        out.push(Violation {
                            index: name,
                            rule: "grail-containment",
                            detail: format!(
                                "labeling {k}: edge {u:?}->{v:?} breaks nesting \
                                 ([{lu}, {ru}] does not contain [{lv}, {rv}])"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// GRAIL as an exact oracle: the filter plus guided DFS.
pub type Grail = GuidedSearch<GrailFilter>;

/// Builds GRAIL with `k` random labelings.
pub fn build_grail(dag: &Dag, k: usize, seed: u64) -> Grail {
    let mut rng = SmallRng::seed_from_u64(seed);
    let filter = GrailFilter::build(dag, k, &mut rng);
    GuidedSearch::new(
        dag.shared_graph(),
        filter,
        IndexMeta {
            name: "GRAIL",
            citation: "[50]",
            framework: Framework::TreeCover,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

/// Builds GRAIL over an explicitly shared graph (avoids a clone when
/// the caller already holds an `Arc`).
pub fn build_grail_shared(graph: Arc<DiGraph>, dag: &Dag, k: usize, seed: u64) -> Grail {
    let mut rng = SmallRng::seed_from_u64(seed);
    let filter = GrailFilter::build(dag, k, &mut rng);
    GuidedSearch::new(
        graph,
        filter,
        IndexMeta {
            name: "GRAIL",
            citation: "[50]",
            framework: Framework::TreeCover,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ReachIndex;
    use crate::tc::TransitiveClosure;
    use reach_graph::fixtures;
    use reach_graph::generators::random_dag;

    #[test]
    fn filter_has_no_false_negatives() {
        let mut rng = SmallRng::seed_from_u64(31);
        let dag = random_dag(100, 260, &mut rng);
        let filter = GrailFilter::build(&dag, 3, &mut rng);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                if tc.reaches(s, t) {
                    assert_ne!(
                        filter.certain(s, t),
                        Certainty::Unreachable,
                        "false negative at {s:?}->{t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_is_exact() {
        let mut rng = SmallRng::seed_from_u64(32);
        for k in [1, 2, 5] {
            let dag = random_dag(80, 200, &mut rng);
            let grail = build_grail(&dag, k, 99);
            let tc = TransitiveClosure::build_dag(&dag);
            for s in dag.vertices() {
                for t in dag.vertices() {
                    assert_eq!(grail.query(s, t), tc.reaches(s, t));
                }
            }
        }
    }

    #[test]
    fn figure1_queries() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let grail = build_grail(&dag, 2, 7);
        assert!(grail.query(fixtures::A, fixtures::G));
        assert!(!grail.query(fixtures::M, fixtures::G));
    }

    #[test]
    fn more_labelings_never_weaken_pruning() {
        // With more labelings the filter can only answer Unreachable
        // at least as often (each labeling is an independent chance).
        let mut rng = SmallRng::seed_from_u64(33);
        let dag = random_dag(60, 150, &mut rng);
        let f1 = GrailFilter::build(&dag, 1, &mut SmallRng::seed_from_u64(1));
        let f4 = GrailFilter {
            labelings: {
                let mut ls = f1.labelings.clone();
                ls.extend(GrailFilter::build(&dag, 3, &mut SmallRng::seed_from_u64(2)).labelings);
                ls
            },
        };
        let mut pruned1 = 0;
        let mut pruned4 = 0;
        for s in dag.vertices() {
            for t in dag.vertices() {
                if f1.certain(s, t) == Certainty::Unreachable {
                    pruned1 += 1;
                    assert_eq!(f4.certain(s, t), Certainty::Unreachable);
                }
                if f4.certain(s, t) == Certainty::Unreachable {
                    pruned4 += 1;
                }
            }
        }
        assert!(pruned4 >= pruned1);
    }

    #[test]
    fn size_scales_with_k() {
        let mut rng = SmallRng::seed_from_u64(34);
        let dag = random_dag(50, 120, &mut rng);
        let f2 = GrailFilter::build(&dag, 2, &mut rng);
        let f5 = GrailFilter::build(&dag, 5, &mut rng);
        assert_eq!(f2.size_entries(), 2 * 50);
        assert_eq!(f5.size_entries(), 5 * 50);
        assert!(f5.size_bytes() > f2.size_bytes());
    }
}
