//! Dual labeling \[17\]: constant-time queries for graphs with few
//! non-tree edges.
//!
//! The index is *dual*: a spanning-forest interval label handles
//! tree-descendant pairs, and a transitive link table over the `t`
//! non-tree edges handles everything else. With the link table's
//! transitive closure materialized, a query touches only the interval
//! labels and an O(t²) scan of the (assumed tiny) link matrix —
//! constant time when `t` is a constant, which is the regime
//! (XML-like, almost-tree data) the technique was designed for; the
//! survey notes it "works well only if the number of non-tree edges is
//! very low".

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use crate::interval::SpanningForest;
use reach_graph::{Dag, VertexId};

/// The dual-labeling index.
#[derive(Debug)]
pub struct DualLabeling {
    forest: SpanningForest,
    /// The non-tree "transitive links" `(u_i, v_i)`.
    links: Vec<(VertexId, VertexId)>,
    /// `link_tc[i * stride + j/64] bit j%64`: taking link `i`, can one
    /// subsequently take link `j`? Reflexive by construction.
    link_tc: Vec<u64>,
    stride: usize,
}

impl DualLabeling {
    /// Builds the index for a DAG.
    pub fn build(dag: &Dag) -> Self {
        let forest = SpanningForest::build(dag.graph());
        let links: Vec<(VertexId, VertexId)> = forest.non_tree_edges().to_vec();
        let t = links.len();
        let stride = t.div_ceil(64).max(1);
        let mut link_tc = vec![0u64; t * stride];
        // direct relation: after link i (landing at v_i), link j is
        // usable if u_j is a tree descendant of v_i
        for i in 0..t {
            link_tc[i * stride + i / 64] |= 1 << (i % 64);
            for j in 0..t {
                if forest.contains(links[i].1, links[j].0) {
                    link_tc[i * stride + j / 64] |= 1 << (j % 64);
                }
            }
        }
        // Floyd–Warshall over the t×t bit matrix
        for k in 0..t {
            for i in 0..t {
                if link_tc[i * stride + k / 64] >> (k % 64) & 1 == 1 {
                    let (a, b) = if i < k {
                        let (x, y) = link_tc.split_at_mut(k * stride);
                        (&mut x[i * stride..i * stride + stride], &y[..stride])
                    } else if i > k {
                        let (x, y) = link_tc.split_at_mut(i * stride);
                        (
                            &mut y[..stride],
                            &x[k * stride..k * stride + stride] as &[u64],
                        )
                    } else {
                        continue;
                    };
                    for w in 0..stride {
                        a[w] |= b[w];
                    }
                }
            }
        }
        DualLabeling {
            forest,
            links,
            link_tc,
            stride,
        }
    }

    /// Number of transitive links (non-tree edges).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    #[inline]
    fn link_reaches(&self, i: usize, j: usize) -> bool {
        self.link_tc[i * self.stride + j / 64] >> (j % 64) & 1 == 1
    }
}

impl ReachIndex for DualLabeling {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        if self.forest.contains(s, t) {
            return true;
        }
        // s ⤳tree u_i, link chain i→j, v_j ⤳tree t
        for (i, &(u_i, _)) in self.links.iter().enumerate() {
            if !self.forest.contains(s, u_i) {
                continue;
            }
            for (j, &(_, v_j)) in self.links.iter().enumerate() {
                if self.link_reaches(i, j) && self.forest.contains(v_j, t) {
                    return true;
                }
            }
        }
        false
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "Dual labeling",
            citation: "[17]",
            framework: Framework::TreeCover,
            completeness: Completeness::Complete,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.forest.num_vertices() + 8 * self.links.len() + 8 * self.link_tc.len()
    }

    fn size_entries(&self) -> usize {
        self.forest.num_vertices() + self.links.len() * self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_dag, random_tree_plus_edges};

    fn check(dag: &Dag) {
        let idx = DualLabeling::build(dag);
        let tc = TransitiveClosure::build_dag(dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check(&Dag::new(fixtures::figure1a()).unwrap());
    }

    #[test]
    fn exact_on_almost_trees() {
        let mut rng = SmallRng::seed_from_u64(71);
        for extra in [0, 3, 8] {
            check(&random_tree_plus_edges(80, extra, &mut rng));
        }
    }

    #[test]
    fn exact_even_when_links_are_many() {
        // correctness must not depend on the sparse-links assumption
        let mut rng = SmallRng::seed_from_u64(72);
        check(&random_dag(50, 180, &mut rng));
    }

    #[test]
    fn pure_tree_has_empty_link_table() {
        let mut rng = SmallRng::seed_from_u64(73);
        let dag = random_tree_plus_edges(60, 0, &mut rng);
        let idx = DualLabeling::build(&dag);
        assert_eq!(idx.num_links(), 0);
        check(&dag);
    }

    #[test]
    fn link_closure_is_transitive() {
        let mut rng = SmallRng::seed_from_u64(74);
        let dag = random_tree_plus_edges(70, 10, &mut rng);
        let idx = DualLabeling::build(&dag);
        let t = idx.num_links();
        for i in 0..t {
            assert!(idx.link_reaches(i, i), "reflexive");
            for j in 0..t {
                for k in 0..t {
                    if idx.link_reaches(i, j) && idx.link_reaches(j, k) {
                        assert!(idx.link_reaches(i, k), "transitive {i}->{j}->{k}");
                    }
                }
            }
        }
    }
}
