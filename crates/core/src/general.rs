//! The DAG-only → general-graph adapter of §3.1.
//!
//! *"General graphs with directed cycles can be transformed to a DAG
//! … all the strongly connected components are identified, and each
//! SCC is coarsened into a representative vertex. … `Qr(s,t)` can be
//! processed by first checking whether s and t belong to the same SCC,
//! followed by checking the reachability in the DAG."*

use crate::audit::Violation;
use crate::index::{IndexMeta, InputClass, ReachIndex};
use reach_graph::{Condensation, Dag, DiGraph, PreparedGraph, VertexId};
use std::sync::Arc;

/// Lifts a DAG-only index to general graphs via Tarjan condensation.
///
/// Queries on original vertices are answered as
/// `same_scc(s, t) || inner.query(comp(s), comp(t))`.
///
/// The condensation is held behind an `Arc` so many adapted indexes
/// built over the same [`PreparedGraph`] share one artifact instead of
/// each re-running Tarjan (see
/// [`from_prepared`](Self::from_prepared)).
pub struct Condensed<I> {
    cond: Arc<Condensation>,
    inner: I,
}

impl<I: ReachIndex> Condensed<I> {
    /// Condenses `g` and builds the inner index on the SCC DAG via
    /// `build` (which receives the condensation DAG).
    pub fn build(g: &DiGraph, build: impl FnOnce(&Dag) -> I) -> Self {
        Self::from_condensation(Arc::new(Condensation::new(g)), build)
    }

    /// Builds the inner index on an existing (shared) condensation.
    pub fn from_condensation(cond: Arc<Condensation>, build: impl FnOnce(&Dag) -> I) -> Self {
        let inner = build(cond.dag());
        Condensed { cond, inner }
    }

    /// Builds the inner index on a [`PreparedGraph`]'s memoized
    /// condensation — the pipeline path: no per-index Tarjan run.
    pub fn from_prepared(prepared: &PreparedGraph, build: impl FnOnce(&Dag) -> I) -> Self {
        Self::from_condensation(Arc::clone(prepared.condensation()), build)
    }

    /// The inner DAG index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// The condensation this adapter queries through.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The shared handle to that condensation, for `Arc::ptr_eq`
    /// checks that two adapters really use one artifact.
    pub fn shared_condensation(&self) -> Arc<Condensation> {
        Arc::clone(&self.cond)
    }
}

impl<I: ReachIndex> ReachIndex for Condensed<I> {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        self.cond.same_component(s, t)
            || self
                .inner
                .query(self.cond.component_of(s), self.cond.component_of(t))
    }

    fn meta(&self) -> IndexMeta {
        // the composition handles general input; everything else is inherited
        IndexMeta {
            input: InputClass::General,
            ..self.inner.meta()
        }
    }

    fn size_bytes(&self) -> usize {
        // component map + inner index
        4 * self.cond.scc().components().len() + self.inner.size_bytes()
    }

    fn size_entries(&self) -> usize {
        self.inner.size_entries()
    }

    /// Condensation consistency — the §3.1 transform must preserve
    /// reachability structure: `same_component` must agree with the
    /// component map, and every original edge must either stay inside
    /// one SCC or appear as an edge of the condensation DAG.  The
    /// inner index is then validated against that DAG.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let name = self.meta().name;
        let mut out = Vec::new();
        let dag = self.cond.dag();
        for u in graph.vertices() {
            let cu = self.cond.component_of(u);
            if cu.index() >= dag.num_vertices() {
                out.push(Violation {
                    index: name,
                    rule: "condensation-component",
                    detail: format!("{u:?} maps to out-of-range component {cu:?}"),
                });
                continue;
            }
            for &v in graph.out_neighbors(u) {
                let cv = self.cond.component_of(v);
                if self.cond.same_component(u, v) != (cu == cv) {
                    out.push(Violation {
                        index: name,
                        rule: "condensation-component",
                        detail: format!(
                            "same_component({u:?}, {v:?}) disagrees with the component map"
                        ),
                    });
                }
                if cu != cv && !dag.graph().out_neighbors(cu).contains(&cv) {
                    out.push(Violation {
                        index: name,
                        rule: "condensation-edge",
                        detail: format!(
                            "edge {u:?}->{v:?} crosses SCCs {cu:?}->{cv:?} but the \
                             condensation DAG has no such edge"
                        ),
                    });
                }
            }
        }
        out.extend(self.inner.check_invariants(dag.graph()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;

    #[test]
    fn condensed_tc_handles_cycles() {
        // {0,1,2} cycle -> 3 -> {4,5} cycle, 6 isolated
        let g = DiGraph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 4)]);
        let idx = Condensed::build(&g, TransitiveClosure::build_dag);
        assert!(idx.query(VertexId(0), VertexId(5)));
        assert!(idx.query(VertexId(1), VertexId(0)), "same SCC");
        assert!(idx.query(VertexId(4), VertexId(5)));
        assert!(!idx.query(VertexId(3), VertexId(0)));
        assert!(!idx.query(VertexId(6), VertexId(0)));
        assert!(idx.query(VertexId(6), VertexId(6)));
    }

    #[test]
    fn meta_reports_general_input() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let idx = Condensed::build(&g, TransitiveClosure::build_dag);
        assert_eq!(idx.meta().input, InputClass::General);
    }

    #[test]
    fn agrees_with_bfs_on_random_cyclic_graphs() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use reach_graph::generators::random_digraph;
        use reach_graph::traverse::{bfs_reaches, VisitMap};

        let mut rng = SmallRng::seed_from_u64(3);
        for trial in 0..5 {
            let g = random_digraph(60, 150, &mut rng);
            let idx = Condensed::build(&g, TransitiveClosure::build_dag);
            let mut vm = VisitMap::new(g.num_vertices());
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(
                        idx.query(s, t),
                        bfs_reaches(&g, s, t, &mut vm),
                        "trial {trial}: mismatch at {s:?}->{t:?}"
                    );
                }
            }
        }
    }
}
