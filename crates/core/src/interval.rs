//! Interval labeling over spanning forests — the shared primitive of
//! every tree-cover index (§3.1).
//!
//! *"For each vertex v, b_v is v's post-order number obtained by the
//! post-order traversal from the root of the tree, and a_v is the
//! lowest post-order number of all the descendants of v in the tree.
//! `Qr(s,t)` can be processed by checking if b_t ∈ [a_s, b_s]."*

use rand::Rng;
use reach_graph::{DiGraph, VertexId};

/// A spanning forest of a digraph: each vertex's discovery parent in a
/// DFS from the unvisited-vertex roots, plus its post-order interval.
///
/// `contains(u, v)` decides *tree* ancestry in O(1); edges of the
/// underlying graph that were not used for discovery are reported as
/// [`non_tree_edges`](Self::non_tree_edges) and are exactly what the
/// different tree-cover techniques handle differently.
#[derive(Debug, Clone)]
pub struct SpanningForest {
    parent: Vec<Option<VertexId>>,
    /// a_v: lowest post-order number in v's subtree.
    start: Vec<u32>,
    /// b_v: v's own post-order number.
    end: Vec<u32>,
    non_tree: Vec<(VertexId, VertexId)>,
}

impl SpanningForest {
    /// Builds a deterministic spanning forest: roots and children are
    /// visited in ascending id order.
    pub fn build(g: &DiGraph) -> Self {
        Self::build_inner(g, None::<&mut rand::rngs::SmallRng>)
    }

    /// Builds a randomized spanning forest: root order and child order
    /// are shuffled. Repeated calls give the independent random trees
    /// GRAIL-style techniques need.
    pub fn build_random<R: Rng>(g: &DiGraph, rng: &mut R) -> Self {
        Self::build_inner(g, Some(rng))
    }

    fn build_inner<R: Rng>(g: &DiGraph, mut rng: Option<&mut R>) -> Self {
        let n = g.num_vertices();
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut non_tree = Vec::new();
        let mut counter = 0u32;

        let mut roots: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        if let Some(rng) = rng.as_deref_mut() {
            shuffle(&mut roots, rng);
        }

        // Iterative DFS; each frame remembers the shuffled neighbor
        // list and a cursor, and the post-order counter at entry (the
        // eventual a_v).
        struct Frame {
            v: VertexId,
            neighbors: Vec<VertexId>,
            cursor: usize,
            entry_counter: u32,
        }
        let mut stack: Vec<Frame> = Vec::new();

        for root in roots {
            if visited[root.index()] {
                continue;
            }
            visited[root.index()] = true;
            let mut neighbors = g.out_neighbors(root).to_vec();
            if let Some(rng) = rng.as_deref_mut() {
                shuffle(&mut neighbors, rng);
            }
            stack.push(Frame {
                v: root,
                neighbors,
                cursor: 0,
                entry_counter: counter,
            });
            while let Some(top) = stack.last_mut() {
                if top.cursor < top.neighbors.len() {
                    let w = top.neighbors[top.cursor];
                    let v = top.v;
                    top.cursor += 1;
                    if visited[w.index()] {
                        non_tree.push((v, w));
                    } else {
                        visited[w.index()] = true;
                        parent[w.index()] = Some(v);
                        let mut nb = g.out_neighbors(w).to_vec();
                        if let Some(rng) = rng.as_deref_mut() {
                            shuffle(&mut nb, rng);
                        }
                        stack.push(Frame {
                            v: w,
                            neighbors: nb,
                            cursor: 0,
                            entry_counter: counter,
                        });
                    }
                } else {
                    counter += 1;
                    start[top.v.index()] = top.entry_counter + 1;
                    end[top.v.index()] = counter;
                    stack.pop();
                }
            }
        }
        SpanningForest {
            parent,
            start,
            end,
            non_tree,
        }
    }

    /// Whether `v` lies in the tree subtree rooted at `u` (including
    /// `u` itself): `b_v ∈ [a_u, b_u]`.
    #[inline]
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.start[u.index()] <= self.end[v.index()] && self.end[v.index()] <= self.end[u.index()]
    }

    /// `a_v`: the lowest post-order number in `v`'s subtree.
    #[inline]
    pub fn start(&self, v: VertexId) -> u32 {
        self.start[v.index()]
    }

    /// `b_v`: the post-order number of `v`.
    #[inline]
    pub fn end(&self, v: VertexId) -> u32 {
        self.end[v.index()]
    }

    /// The DFS parent of `v`, or `None` for forest roots.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.index()]
    }

    /// The edges of the graph that are not forest edges, in the order
    /// the DFS encountered them.
    pub fn non_tree_edges(&self) -> &[(VertexId, VertexId)] {
        &self.non_tree
    }

    /// Number of vertices covered by the forest.
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }
}

fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.random_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;

    fn tree() -> DiGraph {
        //       0
        //      / \
        //     1   2
        //    / \
        //   3   4
        DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)])
    }

    #[test]
    fn pure_tree_has_no_non_tree_edges() {
        let f = SpanningForest::build(&tree());
        assert!(f.non_tree_edges().is_empty());
    }

    #[test]
    fn containment_matches_ancestry() {
        let g = tree();
        let f = SpanningForest::build(&g);
        let anc = |u: u32, v: u32| f.contains(VertexId(u), VertexId(v));
        assert!(anc(0, 3) && anc(0, 4) && anc(1, 3) && anc(1, 4));
        assert!(anc(0, 0) && anc(3, 3));
        assert!(!anc(2, 3) && !anc(3, 1) && !anc(1, 2));
    }

    #[test]
    fn post_order_numbers_are_a_permutation() {
        let f = SpanningForest::build(&fixtures::figure1a());
        let mut ends: Vec<u32> = (0..f.num_vertices())
            .map(|i| f.end(VertexId::new(i)))
            .collect();
        ends.sort_unstable();
        let expect: Vec<u32> = (1..=f.num_vertices() as u32).collect();
        assert_eq!(ends, expect);
    }

    #[test]
    fn non_tree_edges_complete_the_edge_set() {
        let g = fixtures::figure1a();
        let f = SpanningForest::build(&g);
        let tree_edges = g.edges().filter(|&(u, v)| f.parent(v) == Some(u)).count();
        assert_eq!(tree_edges + f.non_tree_edges().len(), g.num_edges());
    }

    #[test]
    fn tree_descendants_are_reachable() {
        // tree containment is a sound positive filter on the graph
        let g = fixtures::figure1a();
        let f = SpanningForest::build(&g);
        let mut vm = reach_graph::traverse::VisitMap::new(g.num_vertices());
        for u in g.vertices() {
            for v in g.vertices() {
                if f.contains(u, v) {
                    assert!(reach_graph::traverse::bfs_reaches(&g, u, v, &mut vm));
                }
            }
        }
    }

    #[test]
    fn random_forests_differ_but_stay_valid() {
        let g = fixtures::figure1a();
        let mut rng = SmallRng::seed_from_u64(5);
        let forests: Vec<SpanningForest> = (0..8)
            .map(|_| SpanningForest::build_random(&g, &mut rng))
            .collect();
        // all valid positive filters
        let mut vm = reach_graph::traverse::VisitMap::new(g.num_vertices());
        for f in &forests {
            for u in g.vertices() {
                for v in g.vertices() {
                    if f.contains(u, v) {
                        assert!(reach_graph::traverse::bfs_reaches(&g, u, v, &mut vm));
                    }
                }
            }
        }
        // at least two of them disagree on some interval (randomization works)
        let distinct = forests
            .iter()
            .any(|f| (0..9).any(|i| f.end(VertexId(i)) != forests[0].end(VertexId(i))));
        assert!(
            distinct,
            "8 random forests all identical is vanishingly unlikely"
        );
    }

    #[test]
    fn cyclic_graph_gets_a_forest_too() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let f = SpanningForest::build(&g);
        assert_eq!(f.non_tree_edges().len(), 1);
        assert!(f.contains(VertexId(0), VertexId(2)));
    }
}
