//! DAGGER \[51\]: GRAIL for dynamic graphs.
//!
//! Maintains the `k` GRAIL interval labelings under edge updates by
//! *conservative widening*: an inserted edge `(u, v)` forces `L_v ⊆
//! L_u` along the new edge (and transitively backward), which keeps
//! the labels an over-approximation of reachability — the
//! no-false-negative invariant guided search needs. Deletions leave
//! labels untouched (reachability only shrinks, so the
//! over-approximation stays valid); the intervals merely lose pruning
//! power until [`DynamicGrail::rebuild`] re-tightens them. This is the
//! soundness-first reading of DAGGER's design: the index never answers
//! wrongly, it only degrades toward plain DFS between rebuilds.

use crate::grail::GrailFilter;
use crate::index::{
    Certainty, Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reach_graph::traverse::{Side, VisitMap};
use reach_graph::{Dag, DiGraphBuilder, ScratchPool, VertexId};

/// The dynamic GRAIL index.
pub struct DynamicGrail {
    out_adj: Vec<Vec<VertexId>>,
    in_adj: Vec<Vec<VertexId>>,
    /// `k` labelings, each `n` entries of `(low, high)` with the
    /// invariant: `s` reaches `t` ⇒ interval of `t` ⊆ interval of `s`.
    labelings: Vec<Vec<(u32, u32)>>,
    k: usize,
    seed: u64,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    visit: VisitMap,
    stack: Vec<VertexId>,
}

impl DynamicGrail {
    /// Builds the index from a DAG snapshot with `k` labelings.
    pub fn build(dag: &Dag, k: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let filter = GrailFilter::build(dag, k, &mut rng);
        DynamicGrail {
            out_adj: dag
                .vertices()
                .map(|v| dag.out_neighbors(v).to_vec())
                .collect(),
            in_adj: dag
                .vertices()
                .map(|v| dag.in_neighbors(v).to_vec())
                .collect(),
            labelings: filter.into_labelings(),
            k,
            seed,
            scratch: ScratchPool::new(),
        }
    }

    /// Inserts `u -> v`, widening intervals backward from `u` until the
    /// edge-wise containment invariant holds again.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        if self.out_adj[u.index()].contains(&v) {
            return;
        }
        self.out_adj[u.index()].push(v);
        self.in_adj[v.index()].push(u);
        for li in 0..self.labelings.len() {
            let mut queue = vec![u];
            let mut head = 0;
            while head < queue.len() {
                let x = queue[head];
                head += 1;
                let mut widened = false;
                // x must contain the intervals of all its out-neighbors
                let (mut lo, mut hi) = self.labelings[li][x.index()];
                for &y in &self.out_adj[x.index()] {
                    let (ylo, yhi) = self.labelings[li][y.index()];
                    if ylo < lo {
                        lo = ylo;
                        widened = true;
                    }
                    if yhi > hi {
                        hi = yhi;
                        widened = true;
                    }
                }
                if widened || x == u {
                    self.labelings[li][x.index()] = (lo, hi);
                    if widened {
                        for &p in &self.in_adj[x.index()] {
                            queue.push(p);
                        }
                    }
                }
            }
        }
    }

    /// Deletes `u -> v`. Labels are left as a (still sound)
    /// over-approximation; call [`rebuild`](Self::rebuild) to
    /// re-tighten once drift accumulates.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) {
        if let Some(p) = self.out_adj[u.index()].iter().position(|&x| x == v) {
            self.out_adj[u.index()].remove(p);
            let q = self.in_adj[v.index()].iter().position(|&x| x == u).unwrap();
            self.in_adj[v.index()].remove(q);
        }
    }

    /// Recomputes tight labels from the current graph. Returns `false`
    /// (leaving the sound wide labels in place) if updates have made
    /// the graph cyclic.
    pub fn rebuild(&mut self) -> bool {
        let n = self.out_adj.len();
        let mut b = DiGraphBuilder::with_capacity(n, self.out_adj.iter().map(Vec::len).sum());
        for (ui, outs) in self.out_adj.iter().enumerate() {
            for &v in outs {
                b.add_edge(VertexId::new(ui), v);
            }
        }
        match Dag::new(b.build()) {
            Ok(dag) => {
                let mut rng = SmallRng::seed_from_u64(self.seed);
                self.labelings = GrailFilter::build(&dag, self.k, &mut rng).into_labelings();
                true
            }
            Err(_) => false,
        }
    }

    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        for labeling in &self.labelings {
            let (ls, hs) = labeling[s.index()];
            let (lt, ht) = labeling[t.index()];
            if !(ls <= lt && ht <= hs) {
                return Certainty::Unreachable;
            }
        }
        Certainty::Unknown
    }

    /// Number of labelings.
    pub fn num_labelings(&self) -> usize {
        self.labelings.len()
    }
}

impl ReachIndex for DynamicGrail {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        if s == t {
            return true;
        }
        if self.certain(s, t) == Certainty::Unreachable {
            return false;
        }
        let scratch = &mut *self.scratch.checkout(|| Scratch {
            visit: VisitMap::new(self.out_adj.len()),
            stack: Vec::new(),
        });
        scratch.visit.reset();
        scratch.stack.clear();
        scratch.stack.push(s);
        scratch.visit.mark(s, Side::Forward);
        while let Some(x) = scratch.stack.pop() {
            for &y in &self.out_adj[x.index()] {
                if y == t {
                    return true;
                }
                if scratch.visit.mark(y, Side::Forward)
                    && self.certain(y, t) != Certainty::Unreachable
                {
                    scratch.stack.push(y);
                }
            }
        }
        false
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "DAGGER",
            citation: "[51]",
            framework: Framework::TreeCover,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::InsertDelete,
        }
    }

    fn size_bytes(&self) -> usize {
        self.labelings.iter().map(|l| 8 * l.len()).sum()
    }

    fn size_entries(&self) -> usize {
        self.labelings.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::Rng;
    use reach_graph::fixtures;
    use reach_graph::generators::random_dag;
    use reach_graph::DiGraph;

    fn check_exact(edges: &[(u32, u32)], n: usize, idx: &DynamicGrail) {
        let g = DiGraph::from_edges(n, edges);
        let tc = TransitiveClosure::build(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn static_queries_match_grail() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = DynamicGrail::build(&dag, 2, 5);
        let edges: Vec<(u32, u32)> = dag.graph().edges().map(|(a, b)| (a.0, b.0)).collect();
        check_exact(&edges, 9, &idx);
    }

    #[test]
    fn insertions_stay_exact() {
        let mut rng = SmallRng::seed_from_u64(191);
        let dag = random_dag(30, 50, &mut rng);
        let mut idx = DynamicGrail::build(&dag, 2, 7);
        let mut edges: Vec<(u32, u32)> = dag.graph().edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..25 {
            let u = rng.random_range(0..30u32);
            let mut v = rng.random_range(0..29u32);
            if v >= u {
                v += 1;
            }
            idx.insert_edge(VertexId(u), VertexId(v));
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
            check_exact(&edges, 30, &idx);
        }
    }

    #[test]
    fn deletions_stay_exact() {
        let mut rng = SmallRng::seed_from_u64(192);
        let dag = random_dag(30, 90, &mut rng);
        let mut idx = DynamicGrail::build(&dag, 3, 9);
        let mut edges: Vec<(u32, u32)> = dag.graph().edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..30 {
            if edges.is_empty() {
                break;
            }
            let i = rng.random_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            idx.delete_edge(VertexId(u), VertexId(v));
            check_exact(&edges, 30, &idx);
        }
    }

    #[test]
    fn cycle_creating_insert_stays_exact() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let dag = Dag::new(g).unwrap();
        let mut idx = DynamicGrail::build(&dag, 2, 3);
        idx.insert_edge(VertexId(3), VertexId(0));
        check_exact(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4, &idx);
        // rebuild must refuse (graph is cyclic) but stay correct
        assert!(!idx.rebuild());
        check_exact(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4, &idx);
    }

    #[test]
    fn rebuild_retightens_after_deletions() {
        let mut rng = SmallRng::seed_from_u64(193);
        let dag = random_dag(40, 120, &mut rng);
        let mut idx = DynamicGrail::build(&dag, 2, 11);
        let mut edges: Vec<(u32, u32)> = dag.graph().edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..40 {
            let i = rng.random_range(0..edges.len());
            let (u, v) = edges.swap_remove(i);
            idx.delete_edge(VertexId(u), VertexId(v));
        }
        assert!(idx.rebuild());
        check_exact(&edges, 40, &idx);
    }

    #[test]
    fn mixed_workload_stays_exact() {
        let mut rng = SmallRng::seed_from_u64(194);
        let dag = random_dag(20, 35, &mut rng);
        let mut idx = DynamicGrail::build(&dag, 2, 13);
        let mut edges: Vec<(u32, u32)> = dag.graph().edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..40 {
            if rng.random_bool(0.6) || edges.is_empty() {
                let u = rng.random_range(0..20u32);
                let mut v = rng.random_range(0..19u32);
                if v >= u {
                    v += 1;
                }
                idx.insert_edge(VertexId(u), VertexId(v));
                if !edges.contains(&(u, v)) {
                    edges.push((u, v));
                }
            } else {
                let i = rng.random_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                idx.delete_edge(VertexId(u), VertexId(v));
            }
            check_exact(&edges, 20, &idx);
        }
    }
}
