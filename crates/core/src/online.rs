//! Index-free online traversal, packaged as [`ReachIndex`] baselines
//! (§2.3: BFS, DFS, BiBFS).
//!
//! These are the comparators every index must beat; the `claims`
//! harness uses them to reproduce the survey's "an order of magnitude
//! faster than using only graph traversal" observation.

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use reach_graph::traverse::{self, VisitMap};
use reach_graph::{DiGraph, ScratchPool, VertexId};
use std::sync::Arc;

/// Which traversal strategy an [`OnlineSearch`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Breadth-first search from the source.
    Bfs,
    /// Depth-first search from the source.
    Dfs,
    /// Bidirectional BFS from both endpoints.
    BiBfs,
}

/// An online-traversal "index": no precomputation, every query is a
/// fresh traversal.
pub struct OnlineSearch {
    graph: Arc<DiGraph>,
    strategy: Strategy,
    visit: ScratchPool<VisitMap>,
}

impl OnlineSearch {
    /// Wraps `graph` with the chosen traversal strategy.
    pub fn new(graph: Arc<DiGraph>, strategy: Strategy) -> Self {
        OnlineSearch {
            graph,
            strategy,
            visit: ScratchPool::new(),
        }
    }

    /// The traversal strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

impl ReachIndex for OnlineSearch {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        let visit = &mut *self
            .visit
            .checkout(|| VisitMap::new(self.graph.num_vertices()));
        match self.strategy {
            Strategy::Bfs => traverse::bfs_reaches(&self.graph, s, t, visit),
            Strategy::Dfs => traverse::dfs_reaches(&self.graph, s, t, visit),
            Strategy::BiBfs => traverse::bibfs_reaches(&self.graph, s, t, visit),
        }
    }

    /// Batch evaluation via multi-source bit-parallel BFS: distinct
    /// sources are packed 64 per machine word and one traversal serves
    /// them all. The strategy only affects per-pair evaluation order,
    /// never the verdicts, so all three share the kernel.
    fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        traverse::batch_reaches(&self.graph, pairs)
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: match self.strategy {
                Strategy::Bfs => "online-BFS",
                Strategy::Dfs => "online-DFS",
                Strategy::BiBfs => "online-BiBFS",
            },
            citation: "[50]",
            framework: Framework::Other,
            completeness: Completeness::Partial,
            input: InputClass::General,
            dynamism: Dynamism::InsertDelete,
        }
    }

    fn size_bytes(&self) -> usize {
        0
    }

    fn size_entries(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Arc<DiGraph> {
        Arc::new(DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3)]))
    }

    #[test]
    fn all_strategies_agree() {
        let g = graph();
        let idxs = [
            OnlineSearch::new(g.clone(), Strategy::Bfs),
            OnlineSearch::new(g.clone(), Strategy::Dfs),
            OnlineSearch::new(g.clone(), Strategy::BiBfs),
        ];
        for s in g.vertices() {
            for t in g.vertices() {
                let answers: Vec<bool> = idxs.iter().map(|i| i.query(s, t)).collect();
                assert!(answers.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }

    #[test]
    fn zero_index_footprint() {
        let idx = OnlineSearch::new(graph(), Strategy::Bfs);
        assert_eq!(idx.size_bytes(), 0);
        assert_eq!(idx.size_entries(), 0);
    }

    #[test]
    fn metas_are_distinct() {
        let g = graph();
        let a = OnlineSearch::new(g.clone(), Strategy::Bfs).meta();
        let b = OnlineSearch::new(g, Strategy::BiBfs).meta();
        assert_ne!(a.name, b.name);
    }
}
