//! O'Reach \[18\]: k supportive vertices plus topological-order
//! observations.
//!
//! A partial index in the 2-hop family: `k ≤ 32` high-degree
//! *supportive* vertices store their full forward and backward reach
//! sets, giving every vertex two k-bit signatures. Four O(1)
//! observations answer most queries:
//!
//! 1. positive — `s` reaches a supporter that reaches `t`;
//! 2. negative — a supporter reaches `s` but not `t` (if `s → t` it
//!    would reach `t` too);
//! 3. negative — `t` reaches a supporter `s` does not reach;
//! 4. negative — `s` does not precede `t` in some topological order.
//!
//! Undecided queries fall to the guided DFS.

use crate::engine::GuidedSearch;
use crate::index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter,
};
use reach_graph::{Dag, DiGraph, VertexId};
use std::sync::Arc;

/// The supportive-vertex filter.
#[derive(Debug, Clone)]
pub struct OReachFilter {
    /// bit i set: supporter i reaches v
    from_supp: Vec<u32>,
    /// bit i set: v reaches supporter i
    to_supp: Vec<u32>,
    /// two independent topological ranks
    topo_a: Vec<u32>,
    topo_b: Vec<u32>,
    num_supports: usize,
}

impl OReachFilter {
    /// Builds the filter with `k ≤ 32` supportive vertices chosen by
    /// descending degree.
    pub fn build(dag: &Dag, k: usize) -> Self {
        let k = k.min(32).min(dag.num_vertices());
        let g = dag.graph();
        let n = g.num_vertices();
        let mut by_degree: Vec<VertexId> = g.vertices().collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        let supports: Vec<VertexId> = by_degree.into_iter().take(k).collect();

        let mut from_supp = vec![0u32; n];
        let mut to_supp = vec![0u32; n];
        let mut visit = reach_graph::traverse::VisitMap::new(n);
        let mut closure = Vec::new();
        for (i, &sp) in supports.iter().enumerate() {
            reach_graph::traverse::forward_closure_with(g, sp, &mut visit, &mut closure);
            for &v in &closure {
                from_supp[v.index()] |= 1 << i;
            }
            reach_graph::traverse::backward_closure_with(g, sp, &mut visit, &mut closure);
            for &v in &closure {
                to_supp[v.index()] |= 1 << i;
            }
        }
        // order A: the DAG's own topological order; order B: a second
        // order from the reversed-id Kahn run, to break different ties
        let mut topo_a = vec![0u32; n];
        for (i, &v) in dag.topo_order().iter().enumerate() {
            topo_a[v.index()] = i as u32;
        }
        let topo_b = second_topo_order(g);
        OReachFilter {
            from_supp,
            to_supp,
            topo_a,
            topo_b,
            num_supports: k,
        }
    }

    /// Number of supportive vertices in use.
    pub fn num_supports(&self) -> usize {
        self.num_supports
    }
}

/// A Kahn topological order preferring *high* vertex ids, so it
/// disagrees with the primary order wherever the DAG leaves freedom.
fn second_topo_order(g: &DiGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut in_deg: Vec<u32> = (0..n)
        .map(|v| g.in_degree(VertexId::new(v)) as u32)
        .collect();
    let mut heap: std::collections::BinaryHeap<VertexId> =
        g.vertices().filter(|&v| in_deg[v.index()] == 0).collect();
    let mut rank = vec![0u32; n];
    let mut next = 0u32;
    while let Some(u) = heap.pop() {
        rank[u.index()] = next;
        next += 1;
        for &v in g.out_neighbors(u) {
            in_deg[v.index()] -= 1;
            if in_deg[v.index()] == 0 {
                heap.push(v);
            }
        }
    }
    debug_assert_eq!(next as usize, n, "second_topo_order requires a DAG");
    rank
}

impl ReachFilter for OReachFilter {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        if s == t {
            return Certainty::Reachable;
        }
        // observation 4: topological orders
        if self.topo_a[s.index()] >= self.topo_a[t.index()]
            || self.topo_b[s.index()] >= self.topo_b[t.index()]
        {
            return Certainty::Unreachable;
        }
        // observation 1: s -> supporter -> t
        if self.to_supp[s.index()] & self.from_supp[t.index()] != 0 {
            return Certainty::Reachable;
        }
        // observation 2: a supporter reaches s but not t
        if self.from_supp[s.index()] & !self.from_supp[t.index()] != 0 {
            return Certainty::Unreachable;
        }
        // observation 3: t reaches a supporter s does not reach
        if self.to_supp[t.index()] & !self.to_supp[s.index()] != 0 {
            return Certainty::Unreachable;
        }
        Certainty::Unknown
    }

    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: true,
            definite_negative: true,
        }
    }

    fn size_bytes(&self) -> usize {
        self.from_supp.len() * (4 + 4 + 4 + 4)
    }

    fn size_entries(&self) -> usize {
        2 * self.from_supp.len()
    }
}

/// O'Reach as an exact oracle.
pub type OReach = GuidedSearch<OReachFilter>;

/// Builds O'Reach with `k` supportive vertices.
pub fn build_oreach(dag: &Dag, k: usize) -> OReach {
    build_oreach_shared(dag.shared_graph(), dag, k)
}

/// Builds O'Reach over an explicitly shared graph.
pub fn build_oreach_shared(graph: Arc<DiGraph>, dag: &Dag, k: usize) -> OReach {
    let filter = OReachFilter::build(dag, k);
    GuidedSearch::new(
        graph,
        filter,
        IndexMeta {
            name: "O'Reach",
            citation: "[18]",
            framework: Framework::TwoHop,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ReachIndex;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{power_law_dag, random_dag};

    #[test]
    fn filter_verdicts_are_sound() {
        let mut rng = SmallRng::seed_from_u64(131);
        let dag = random_dag(90, 250, &mut rng);
        let f = OReachFilter::build(&dag, 16);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                match f.certain(s, t) {
                    Certainty::Reachable => assert!(tc.reaches(s, t)),
                    Certainty::Unreachable => assert!(!tc.reaches(s, t)),
                    Certainty::Unknown => {}
                }
            }
        }
    }

    #[test]
    fn oracle_is_exact() {
        let mut rng = SmallRng::seed_from_u64(132);
        for k in [0, 4, 32] {
            let dag = random_dag(70, 180, &mut rng);
            let idx = build_oreach(&dag, k);
            let tc = TransitiveClosure::build_dag(&dag);
            for s in dag.vertices() {
                for t in dag.vertices() {
                    assert_eq!(idx.query(s, t), tc.reaches(s, t), "k={k} at {s:?}->{t:?}");
                }
            }
        }
    }

    #[test]
    fn figure1_queries() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = build_oreach(&dag, 4);
        assert!(idx.query(fixtures::A, fixtures::G));
        assert!(!idx.query(fixtures::B, fixtures::A));
    }

    #[test]
    fn hub_supporters_decide_most_pairs() {
        let mut rng = SmallRng::seed_from_u64(133);
        let dag = power_law_dag(300, 3, &mut rng);
        let f = OReachFilter::build(&dag, 32);
        let mut undecided = 0usize;
        let mut total = 0usize;
        for s in dag.vertices().step_by(7) {
            for t in dag.vertices().step_by(5) {
                total += 1;
                if f.certain(s, t) == Certainty::Unknown {
                    undecided += 1;
                }
            }
        }
        assert!(
            (undecided as f64) < 0.25 * total as f64,
            "expected most pairs decided, {undecided}/{total} unknown"
        );
    }

    #[test]
    fn k_is_capped_at_32_and_n() {
        let mut rng = SmallRng::seed_from_u64(134);
        let dag = random_dag(10, 20, &mut rng);
        assert_eq!(OReachFilter::build(&dag, 100).num_supports(), 10);
        let dag = random_dag(100, 300, &mut rng);
        assert_eq!(OReachFilter::build(&dag, 100).num_supports(), 32);
    }
}
