//! IP \[46, 47\]: independent-permutation labeling — the first
//! approximate-transitive-closure index (§3.3).
//!
//! Each vertex keeps the `k` smallest values of a random permutation
//! hash over its forward closure (and dually its backward closure).
//! Because the hash is a permutation, the label preserves the
//! contra-positive condition exactly: any hash in `AP(Out(t))` below
//! `max(AP(Out(s)))` that is missing from `AP(Out(s))` proves
//! `Out(t) ⊄ Out(s)`, hence non-reachability — no false negatives.
//! As a bonus the permutation is injective, so finding `h(t)` inside
//! `AP(Out(s))` is a definite *positive*.

use crate::engine::GuidedSearch;
use crate::index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_graph::topo::topological_levels;
use reach_graph::{Dag, DiGraph, VertexId};
use std::sync::Arc;

/// One k-min-wise label: the `k` smallest permutation hashes of a
/// closure, sorted ascending. `exact` means the closure had fewer than
/// `k` distinct hashes, so the label *is* the closure's hash set.
#[derive(Debug, Clone, Default)]
struct KMin {
    values: Vec<u32>,
    exact: bool,
}

/// The IP filter.
#[derive(Debug, Clone)]
pub struct IpFilter {
    hash: Vec<u32>,
    out_label: Vec<KMin>,
    in_label: Vec<KMin>,
    level_fwd: Vec<u32>,
    level_bwd: Vec<u32>,
    k: usize,
}

/// Merges `own` and the already-k-min lists of `others` into a k-min list.
fn kmin_merge(own: u32, others: &[&KMin], k: usize) -> KMin {
    let mut vals: Vec<u32> = Vec::with_capacity(k + 1);
    vals.push(own);
    let mut all_exact = true;
    for o in others {
        vals.extend_from_slice(&o.values);
        all_exact &= o.exact;
    }
    vals.sort_unstable();
    vals.dedup();
    if vals.len() > k {
        vals.truncate(k);
        KMin {
            values: vals,
            exact: false,
        }
    } else {
        // exact only if every input was exact (a truncated input hides
        // hashes that may exceed our max)
        let exact = all_exact && vals.len() < k;
        KMin {
            values: vals,
            exact,
        }
    }
}

/// The subset test: can `sub`'s closure be contained in `sup`'s?
/// Returns `false` only when containment is *provably* violated.
fn maybe_subset(sub: &KMin, sup: &KMin) -> bool {
    let bound = if sup.exact {
        u32::MAX
    } else {
        *sup.values.last().unwrap_or(&0)
    };
    for &e in &sub.values {
        if e > bound {
            break; // values are sorted; the rest are unobservable
        }
        if sup.values.binary_search(&e).is_err() {
            return false;
        }
    }
    true
}

impl IpFilter {
    /// Builds the filter with `k`-min-wise labels.
    pub fn build(dag: &Dag, k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        let g = dag.graph();
        let n = g.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut hash: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            hash.swap(i, rng.random_range(0..=i));
        }
        let mut out_label: Vec<KMin> = vec![KMin::default(); n];
        for &u in dag.topo_order().iter().rev() {
            let others: Vec<&KMin> = g
                .out_neighbors(u)
                .iter()
                .map(|v| &out_label[v.index()])
                .collect();
            let merged = kmin_merge(hash[u.index()], &others, k);
            out_label[u.index()] = merged;
        }
        let mut in_label: Vec<KMin> = vec![KMin::default(); n];
        for &u in dag.topo_order() {
            let others: Vec<&KMin> = g
                .in_neighbors(u)
                .iter()
                .map(|v| &in_label[v.index()])
                .collect();
            let merged = kmin_merge(hash[u.index()], &others, k);
            in_label[u.index()] = merged;
        }
        let level_fwd = topological_levels(g).expect("DAG input");
        let level_bwd = topological_levels(&g.reverse()).expect("DAG input");
        IpFilter {
            hash,
            out_label,
            in_label,
            level_fwd,
            level_bwd,
            k,
        }
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ReachFilter for IpFilter {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        if s == t {
            return Certainty::Reachable;
        }
        // level filters: a path strictly increases the forward level
        // and strictly decreases the backward one
        if self.level_fwd[s.index()] >= self.level_fwd[t.index()]
            || self.level_bwd[s.index()] <= self.level_bwd[t.index()]
        {
            return Certainty::Unreachable;
        }
        let (s_out, t_out) = (&self.out_label[s.index()], &self.out_label[t.index()]);
        // permutation injectivity: h(t) visible in s's out label is a proof
        if s_out.values.binary_search(&self.hash[t.index()]).is_ok() {
            return Certainty::Reachable;
        }
        if !maybe_subset(t_out, s_out) {
            return Certainty::Unreachable;
        }
        let (s_in, t_in) = (&self.in_label[s.index()], &self.in_label[t.index()]);
        if t_in.values.binary_search(&self.hash[s.index()]).is_ok() {
            return Certainty::Reachable;
        }
        if !maybe_subset(s_in, t_in) {
            return Certainty::Unreachable;
        }
        Certainty::Unknown
    }

    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: true,
            definite_negative: true,
        }
    }

    fn size_bytes(&self) -> usize {
        let labels: usize = self
            .out_label
            .iter()
            .chain(self.in_label.iter())
            .map(|l| 4 * l.values.len())
            .sum();
        labels + 12 * self.hash.len()
    }

    fn size_entries(&self) -> usize {
        self.out_label
            .iter()
            .chain(self.in_label.iter())
            .map(|l| l.values.len())
            .sum()
    }
}

/// IP as an exact oracle.
pub type Ip = GuidedSearch<IpFilter>;

/// Builds IP with `k`-min-wise labels.
pub fn build_ip(dag: &Dag, k: usize, seed: u64) -> Ip {
    build_ip_shared(dag.shared_graph(), dag, k, seed)
}

/// Builds IP over an explicitly shared graph.
pub fn build_ip_shared(graph: Arc<DiGraph>, dag: &Dag, k: usize, seed: u64) -> Ip {
    let filter = IpFilter::build(dag, k, seed);
    GuidedSearch::new(
        graph,
        filter,
        IndexMeta {
            name: "IP",
            citation: "[46,47]",
            framework: Framework::ApproximateTc,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            // the paper's Table 1 lists IP as dynamic via DAGGER-based
            // relabeling; this implementation is static (see DESIGN.md)
            dynamism: Dynamism::Static,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ReachIndex;
    use crate::tc::TransitiveClosure;
    use reach_graph::fixtures;
    use reach_graph::generators::{layered_dag, random_dag};

    #[test]
    fn filter_verdicts_are_sound() {
        let mut rng = SmallRng::seed_from_u64(141);
        for k in [2, 5, 16] {
            let dag = random_dag(80, 220, &mut rng);
            let f = IpFilter::build(&dag, k, 7);
            let tc = TransitiveClosure::build_dag(&dag);
            for s in dag.vertices() {
                for t in dag.vertices() {
                    match f.certain(s, t) {
                        Certainty::Reachable => {
                            assert!(tc.reaches(s, t), "k={k} FP at {s:?}->{t:?}")
                        }
                        Certainty::Unreachable => {
                            assert!(!tc.reaches(s, t), "k={k} FN at {s:?}->{t:?}")
                        }
                        Certainty::Unknown => {}
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_is_exact() {
        let mut rng = SmallRng::seed_from_u64(142);
        let dag = random_dag(70, 190, &mut rng);
        let idx = build_ip(&dag, 4, 3);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t));
            }
        }
    }

    #[test]
    fn figure1_queries() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = build_ip(&dag, 3, 1);
        assert!(idx.query(fixtures::A, fixtures::G));
        assert!(!idx.query(fixtures::K, fixtures::D));
    }

    #[test]
    fn small_closures_have_exact_labels() {
        // sinks have singleton closures: exact for any k >= 2
        let mut rng = SmallRng::seed_from_u64(143);
        let dag = layered_dag(4, 6, 2, &mut rng);
        let f = IpFilter::build(&dag, 8, 5);
        for v in dag.vertices() {
            if dag.out_degree(v) == 0 {
                assert!(f.out_label[v.index()].exact);
                assert_eq!(f.out_label[v.index()].values, vec![f.hash[v.index()]]);
            }
        }
    }

    #[test]
    fn larger_k_decides_more() {
        let mut rng = SmallRng::seed_from_u64(144);
        let dag = random_dag(120, 330, &mut rng);
        let count_unknown = |k: usize| {
            let f = IpFilter::build(&dag, k, 11);
            let mut unknown = 0;
            for s in dag.vertices() {
                for t in dag.vertices() {
                    if f.certain(s, t) == Certainty::Unknown {
                        unknown += 1;
                    }
                }
            }
            unknown
        };
        assert!(count_unknown(16) <= count_unknown(2));
    }

    #[test]
    fn kmin_merge_unit() {
        let a = KMin {
            values: vec![1, 4, 9],
            exact: false,
        };
        let b = KMin {
            values: vec![2, 4],
            exact: true,
        };
        let m = kmin_merge(0, &[&a, &b], 3);
        assert_eq!(m.values, vec![0, 1, 2]);
        assert!(!m.exact);
        let m = kmin_merge(7, &[&b], 8);
        assert_eq!(m.values, vec![2, 4, 7]);
        assert!(m.exact);
        let m = kmin_merge(7, &[&a], 8);
        assert!(!m.exact, "inexact input keeps the merge inexact");
    }

    #[test]
    fn maybe_subset_unit() {
        let sup = KMin {
            values: vec![1, 3, 5],
            exact: false,
        };
        // 2 < 5 and missing: provably not a subset
        assert!(!maybe_subset(
            &KMin {
                values: vec![2],
                exact: true
            },
            &sup
        ));
        // 9 > max(sup) and sup inexact: unobservable
        assert!(maybe_subset(
            &KMin {
                values: vec![9],
                exact: true
            },
            &sup
        ));
        let sup_exact = KMin {
            values: vec![1, 3, 5],
            exact: true,
        };
        assert!(!maybe_subset(
            &KMin {
                values: vec![9],
                exact: true
            },
            &sup_exact
        ));
        assert!(maybe_subset(
            &KMin {
                values: vec![1, 5],
                exact: true
            },
            &sup_exact
        ));
    }
}
