//! The original tree-cover index of Agrawal, Borgida & Jagadish \[2\].
//!
//! Interval labeling over a spanning forest, plus *interval
//! inheritance*: processing vertices in reverse topological order,
//! every vertex absorbs the interval lists of its out-neighbors, so
//! paths through non-tree edges are captured. Adjacent or overlapping
//! intervals are merged for compact storage (§3.1).

use crate::audit::Violation;
use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use crate::interval::SpanningForest;
use reach_graph::{Dag, DiGraph, VertexId};

/// The complete tree-cover index: per-vertex merged interval lists
/// over spanning-forest post-order numbers.
///
/// ```
/// use reach_core::tree_cover::TreeCover;
/// use reach_core::ReachIndex;
/// use reach_graph::{Dag, DiGraph, VertexId};
///
/// let dag = Dag::new(DiGraph::from_edges(4, &[(0, 1), (1, 3), (0, 2)])).unwrap();
/// let idx = TreeCover::build(&dag);
/// assert!(idx.query(VertexId(0), VertexId(3)));
/// assert!(!idx.query(VertexId(2), VertexId(3)));
/// ```
#[derive(Debug, Clone)]
pub struct TreeCover {
    /// b_v of each vertex (the value interval membership is tested on).
    post: Vec<u32>,
    /// Per-vertex sorted, disjoint, non-adjacent `[start, end]` intervals.
    intervals: Vec<Vec<(u32, u32)>>,
}

/// Merges a sorted-by-start interval list in place: overlapping or
/// adjacent intervals collapse (the paper’s `[1,6] + [7,8] → [1,8]`).
pub(crate) fn merge_sorted_intervals(list: &mut Vec<(u32, u32)>) {
    let mut w = 0;
    for i in 0..list.len() {
        if w == 0 || list[i].0 > list[w - 1].1 + 1 {
            list[w] = list[i];
            w += 1;
        } else if list[i].1 > list[w - 1].1 {
            list[w - 1].1 = list[i].1;
        }
    }
    list.truncate(w);
}

impl TreeCover {
    /// Builds the index for a DAG: spanning forest intervals plus one
    /// reverse-topological inheritance sweep.
    pub fn build(dag: &Dag) -> Self {
        let forest = SpanningForest::build(dag.graph());
        let n = dag.num_vertices();
        let post: Vec<u32> = (0..n).map(|i| forest.end(VertexId::new(i))).collect();
        let mut intervals: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];

        for &u in dag.topo_order().iter().rev() {
            let mut list: Vec<(u32, u32)> = vec![(forest.start(u), forest.end(u))];
            for &v in dag.out_neighbors(u) {
                list.extend_from_slice(&intervals[v.index()]);
            }
            list.sort_unstable();
            merge_sorted_intervals(&mut list);
            intervals[u.index()] = list;
        }
        TreeCover { post, intervals }
    }

    /// The interval list of `v` (sorted, disjoint).
    pub fn intervals_of(&self, v: VertexId) -> &[(u32, u32)] {
        &self.intervals[v.index()]
    }
}

impl ReachIndex for TreeCover {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        let b = self.post[t.index()];
        // intervals are sorted and disjoint: binary search by start
        let list = &self.intervals[s.index()];
        match list.binary_search_by(|&(start, _)| start.cmp(&b)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => list[i - 1].1 >= b,
        }
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "Tree cover",
            citation: "[2]",
            framework: Framework::TreeCover,
            completeness: Completeness::Complete,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        4 * self.post.len() + 8 * self.size_entries() + 24 * self.intervals.len()
    }

    fn size_entries(&self) -> usize {
        self.intervals.iter().map(Vec::len).sum()
    }

    /// Tree-cover structural invariants: per-vertex interval lists are
    /// sorted, disjoint, and non-adjacent; every vertex's own
    /// post-order number is covered; and intervals *nest* along edges
    /// — inheritance makes each out-neighbor's coverage a subset of
    /// its predecessor's.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let name = "Tree cover";
        let mut out = Vec::new();
        if graph.num_vertices() != self.post.len() {
            out.push(Violation {
                index: name,
                rule: "graph-mismatch",
                detail: format!(
                    "index covers {} vertices, graph has {}",
                    self.post.len(),
                    graph.num_vertices()
                ),
            });
            return out;
        }
        for v in graph.vertices() {
            let list = &self.intervals[v.index()];
            if list.iter().any(|&(s, e)| s > e) || list.windows(2).any(|w| w[1].0 <= w[0].1 + 1) {
                out.push(Violation {
                    index: name,
                    rule: "interval-order",
                    detail: format!("intervals of {v:?} not sorted/disjoint/merged: {list:?}"),
                });
            }
            if !covers(list, self.post[v.index()]) {
                out.push(Violation {
                    index: name,
                    rule: "interval-self",
                    detail: format!("{v:?}'s own post number {} uncovered", self.post[v.index()]),
                });
            }
        }
        for u in graph.vertices() {
            for &v in graph.out_neighbors(u) {
                for &(s, e) in &self.intervals[v.index()] {
                    if !contains_interval(&self.intervals[u.index()], s, e) {
                        out.push(Violation {
                            index: name,
                            rule: "interval-nesting",
                            detail: format!(
                                "edge {u:?}->{v:?}: child interval [{s}, {e}] not nested in \
                                 parent coverage"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Whether `b` lies in some interval of a sorted disjoint list.
fn covers(list: &[(u32, u32)], b: u32) -> bool {
    match list.binary_search_by(|&(start, _)| start.cmp(&b)) {
        Ok(_) => true,
        Err(0) => false,
        Err(i) => list[i - 1].1 >= b,
    }
}

/// Whether `[s, e]` lies inside a single interval of the list.
/// Sufficient for nesting because merged lists have gaps ≥ 2, so a
/// contiguous child interval cannot straddle two parent intervals.
fn contains_interval(list: &[(u32, u32)], s: u32, e: u32) -> bool {
    match list.binary_search_by(|&(start, _)| start.cmp(&s)) {
        Ok(i) => list[i].1 >= e,
        Err(0) => false,
        Err(i) => list[i - 1].1 >= e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::generators::{random_dag, random_tree_plus_edges};
    use reach_graph::{fixtures, DiGraph};

    fn check_against_tc(dag: &Dag) {
        let idx = TreeCover::build(dag);
        let tc = TransitiveClosure::build_dag(dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(
                    idx.query(s, t),
                    tc.reaches(s, t),
                    "mismatch at {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn merge_collapses_adjacent() {
        let mut v = vec![(1, 6), (7, 8)];
        merge_sorted_intervals(&mut v);
        assert_eq!(v, vec![(1, 8)]);
        let mut v = vec![(1, 3), (2, 5), (8, 9)];
        merge_sorted_intervals(&mut v);
        assert_eq!(v, vec![(1, 5), (8, 9)]);
        let mut v: Vec<(u32, u32)> = vec![];
        merge_sorted_intervals(&mut v);
        assert!(v.is_empty());
        let mut v = vec![(1, 10), (2, 3)];
        merge_sorted_intervals(&mut v);
        assert_eq!(v, vec![(1, 10)], "contained interval absorbed");
    }

    #[test]
    fn exact_on_figure1() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        check_against_tc(&dag);
        let idx = TreeCover::build(&dag);
        assert!(
            idx.query(fixtures::A, fixtures::G),
            "the paper's Qr(A,G)=true"
        );
        assert!(!idx.query(fixtures::G, fixtures::A));
    }

    #[test]
    fn exact_on_random_dags() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..5 {
            check_against_tc(&random_dag(70, 180, &mut rng));
        }
    }

    #[test]
    fn exact_on_tree_heavy_dags() {
        let mut rng = SmallRng::seed_from_u64(22);
        check_against_tc(&random_tree_plus_edges(120, 15, &mut rng));
    }

    #[test]
    fn pure_tree_needs_one_interval_per_vertex() {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        let idx = TreeCover::build(&Dag::new(g).unwrap());
        assert_eq!(idx.size_entries(), 5);
    }

    #[test]
    fn non_tree_edges_grow_the_index() {
        // a dense-ish DAG needs inherited intervals
        let mut rng = SmallRng::seed_from_u64(23);
        let dag = random_dag(60, 250, &mut rng);
        let idx = TreeCover::build(&dag);
        assert!(idx.size_entries() >= dag.num_vertices());
    }
}
