//! PLL \[49\]: pruned landmark labeling for reachability.
//!
//! Processes vertices in degree-descending priority order; from each
//! hop `v` a forward and a backward BFS label the visited vertices —
//! but a visit is *pruned* whenever the labels built so far already
//! answer `Qr(v, u)` (resp. `Qr(u, v)`), which is the survey's
//! *"search space … pruned according to the total order"*. Pruning
//! makes the labels dramatically smaller than the canonical TOL label
//! sets while remaining a complete 2-hop cover. Works directly on
//! general graphs.

use crate::audit::{self, Violation};
use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use crate::tol::sorted_intersects;
use reach_graph::{DiGraph, VertexId};

/// The pruned-landmark-labeling index.
///
/// ```
/// use reach_core::pll::Pll;
/// use reach_core::ReachIndex;
/// use reach_graph::{DiGraph, VertexId};
///
/// // works directly on cyclic graphs
/// let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]);
/// let pll = Pll::build(&g);
/// assert!(pll.query(VertexId(0), VertexId(3)));
/// assert!(pll.query(VertexId(1), VertexId(0)));
/// assert!(!pll.query(VertexId(3), VertexId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct Pll {
    rank_of: Vec<u32>,
    vertex_at: Vec<VertexId>,
    lin: Vec<Vec<u32>>,
    lout: Vec<Vec<u32>>,
}

impl Pll {
    /// Builds the index with the degree-descending order.
    pub fn build(g: &DiGraph) -> Self {
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        Self::build_with_order(g, &order)
    }

    /// Builds the index with an explicit priority order.
    pub fn build_with_order(g: &DiGraph, order: &[VertexId]) -> Self {
        assert_eq!(order.len(), g.num_vertices());
        let n = g.num_vertices();
        let mut rank_of = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank_of[v.index()] = r as u32;
        }
        let mut pll = Pll {
            rank_of,
            vertex_at: order.to_vec(),
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
        };
        let mut queue: Vec<VertexId> = Vec::new();
        let mut seen = vec![false; n];
        for r in 0..n as u32 {
            pll.pruned_bfs(g, r, true, &mut queue, &mut seen);
            pll.pruned_bfs(g, r, false, &mut queue, &mut seen);
        }
        pll
    }

    fn pruned_bfs(
        &mut self,
        g: &DiGraph,
        r: u32,
        forward: bool,
        queue: &mut Vec<VertexId>,
        seen: &mut [bool],
    ) {
        let w = self.vertex_at[r as usize];
        queue.clear();
        queue.push(w);
        seen[w.index()] = true;
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            // prune: the pair (w, x) is already covered by a
            // higher-priority hop
            let covered = if forward {
                sorted_intersects(&self.lout[w.index()], &self.lin[x.index()])
            } else {
                sorted_intersects(&self.lout[x.index()], &self.lin[w.index()])
            };
            if covered {
                continue;
            }
            if forward {
                self.lin[x.index()].push(r); // ranks ascend across hops
            } else {
                self.lout[x.index()].push(r);
            }
            let adj = if forward {
                g.out_neighbors(x)
            } else {
                g.in_neighbors(x)
            };
            for &y in adj {
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    queue.push(y);
                }
            }
        }
        for &x in queue.iter() {
            seen[x.index()] = false;
        }
    }

    /// The in-label of `x` (hop ranks, sorted ascending).
    pub fn lin(&self, x: VertexId) -> &[u32] {
        &self.lin[x.index()]
    }

    /// The out-label of `x` (hop ranks, sorted ascending).
    pub fn lout(&self, x: VertexId) -> &[u32] {
        &self.lout[x.index()]
    }

    /// The rank of `v` in the priority order.
    pub fn rank_of(&self, v: VertexId) -> u32 {
        self.rank_of[v.index()]
    }

    /// The vertex holding rank `r`.
    pub fn vertex_at(&self, r: u32) -> VertexId {
        self.vertex_at[r as usize]
    }
}

impl ReachIndex for Pll {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        s == t || sorted_intersects(&self.lout[s.index()], &self.lin[t.index()])
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "PLL",
            citation: "[49]",
            framework: Framework::TwoHop,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        4 * self.size_entries() + 48 * self.lin.len()
    }

    fn size_entries(&self) -> usize {
        self.lin.iter().map(Vec::len).sum::<usize>() + self.lout.iter().map(Vec::len).sum::<usize>()
    }

    /// Pruning must leave a *complete and sound* 2-hop cover: the
    /// shared validator checks label order, hub soundness against
    /// true closures, and witness coverage for reachable pairs.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let mut out = Vec::new();
        if graph.num_vertices() != self.lin.len() {
            out.push(Violation {
                index: "PLL",
                rule: "graph-mismatch",
                detail: format!(
                    "index covers {} vertices, graph has {}",
                    self.lin.len(),
                    graph.num_vertices()
                ),
            });
            return out;
        }
        audit::check_two_hop_cover(
            "PLL",
            graph,
            |x| self.lout(x),
            |x| self.lin(x),
            |r| self.vertex_at(r),
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{power_law_dag, random_digraph};

    fn check_exact(g: &DiGraph) {
        let pll = Pll::build(g);
        let tc = TransitiveClosure::build(g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(pll.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check_exact(&fixtures::figure1a());
        let pll = Pll::build(&fixtures::figure1a());
        assert!(pll.query(fixtures::A, fixtures::G));
        assert!(!pll.query(fixtures::G, fixtures::A));
    }

    #[test]
    fn exact_on_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(101);
        for _ in 0..5 {
            check_exact(&random_digraph(45, 130, &mut rng));
        }
    }

    #[test]
    fn exact_on_power_law_dags() {
        let mut rng = SmallRng::seed_from_u64(102);
        check_exact(power_law_dag(150, 2, &mut rng).graph());
    }

    #[test]
    fn labels_are_sound() {
        let mut rng = SmallRng::seed_from_u64(103);
        let g = random_digraph(40, 110, &mut rng);
        let pll = Pll::build(&g);
        let tc = TransitiveClosure::build(&g);
        for x in g.vertices() {
            for &r in pll.lin(x) {
                assert!(tc.reaches(pll.vertex_at(r), x));
            }
            for &r in pll.lout(x) {
                assert!(tc.reaches(x, pll.vertex_at(r)));
            }
        }
    }

    #[test]
    fn labels_are_sorted() {
        let mut rng = SmallRng::seed_from_u64(104);
        let g = random_digraph(40, 110, &mut rng);
        let pll = Pll::build(&g);
        for x in g.vertices() {
            assert!(pll.lin(x).windows(2).all(|w| w[0] < w[1]));
            assert!(pll.lout(x).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn pruning_beats_canonical_tol_on_hub_graphs() {
        // PLL's coverage-based pruning must produce labels no larger
        // than the canonical restricted-closure labels of DL (same order).
        let mut rng = SmallRng::seed_from_u64(105);
        let g = power_law_dag(300, 3, &mut rng).into_graph();
        let pll = Pll::build(&g);
        let dl = crate::tol::build_dl(&g);
        assert!(
            pll.size_entries() <= dl.size_entries(),
            "pll {} > dl {}",
            pll.size_entries(),
            dl.size_entries()
        );
    }
}
