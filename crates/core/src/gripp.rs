//! GRIPP \[43\]: pre/post-order indexing with hop traversal, directly on
//! general graphs.
//!
//! GRIPP stores the DFS (pre, post) instance table of a spanning
//! forest and answers queries by *forward* hop traversal: starting
//! from `s`, if the target lies in the current vertex's subtree the
//! answer is true; otherwise every non-tree edge whose tail lies in
//! the current subtree offers a hop to a new subtree. Unlike GRAIL or
//! Ferrari, the index lookup is a *positive* filter (no false
//! positives): when it answers `false`, traversal must continue — the
//! weakness §3.1 of the survey calls out in comparing it to the
//! no-false-negative designs.

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use crate::interval::SpanningForest;
use reach_graph::traverse::{Side, VisitMap};
use reach_graph::{DiGraph, ScratchPool, VertexId};

/// The GRIPP index (simplified: the order-instance table is realized
/// as the spanning forest's interval labels plus the non-tree edge
/// list).
pub struct Gripp {
    forest: SpanningForest,
    /// Non-tree edges sorted by the tail's post-order number, so the
    /// hops available inside a subtree form a contiguous range.
    hops: Vec<(u32, VertexId)>,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    visit: VisitMap,
    stack: Vec<VertexId>,
}

impl Gripp {
    /// Builds the index for an arbitrary digraph.
    pub fn build(g: &DiGraph) -> Self {
        let forest = SpanningForest::build(g);
        let mut hops: Vec<(u32, VertexId)> = forest
            .non_tree_edges()
            .iter()
            .map(|&(u, v)| (forest.end(u), v))
            .collect();
        hops.sort_unstable_by_key(|&(post, _)| post);
        Gripp {
            forest,
            hops,
            scratch: ScratchPool::new(),
        }
    }

    /// The spanning forest the index is built on.
    pub fn forest(&self) -> &SpanningForest {
        &self.forest
    }

    /// Non-tree hops with tails inside `w`'s subtree: a binary-searched
    /// contiguous slice of the sorted hop table.
    fn hops_in_subtree(&self, w: VertexId) -> &[(u32, VertexId)] {
        let lo = self.forest.start(w);
        let hi = self.forest.end(w);
        let a = self.hops.partition_point(|&(post, _)| post < lo);
        let b = self.hops.partition_point(|&(post, _)| post <= hi);
        &self.hops[a..b]
    }
}

impl ReachIndex for Gripp {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        if self.forest.contains(s, t) {
            return true;
        }
        let scratch = &mut *self.scratch.checkout(|| Scratch {
            visit: VisitMap::new(self.forest.num_vertices()),
            stack: Vec::new(),
        });
        scratch.visit.reset();
        scratch.stack.clear();
        scratch.stack.push(s);
        scratch.visit.mark(s, Side::Forward);
        while let Some(w) = scratch.stack.pop() {
            if self.forest.contains(w, t) {
                return true;
            }
            for &(_, v) in self.hops_in_subtree(w) {
                if scratch.visit.mark(v, Side::Forward) {
                    scratch.stack.push(v);
                }
            }
        }
        false
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "GRIPP",
            citation: "[43]",
            framework: Framework::TreeCover,
            completeness: Completeness::Partial,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.forest.num_vertices() + 8 * self.hops.len()
    }

    fn size_entries(&self) -> usize {
        self.forest.num_vertices() + self.hops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_digraph, random_tree_plus_edges};

    fn check(g: &DiGraph) {
        let idx = Gripp::build(g);
        let tc = TransitiveClosure::build(g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check(&fixtures::figure1a());
    }

    #[test]
    fn exact_on_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(61);
        for _ in 0..4 {
            check(&random_digraph(50, 140, &mut rng));
        }
    }

    #[test]
    fn exact_on_tree_heavy_dags() {
        let mut rng = SmallRng::seed_from_u64(62);
        check(random_tree_plus_edges(90, 10, &mut rng).graph());
    }

    #[test]
    fn subtree_hop_slice_is_correct() {
        let g = fixtures::figure1a();
        let idx = Gripp::build(&g);
        for w in g.vertices() {
            let slice = idx.hops_in_subtree(w);
            // every hop in the slice has its tail inside w's subtree
            for &(post, _) in slice {
                assert!(idx.forest.start(w) <= post && post <= idx.forest.end(w));
            }
            // and the count matches a linear scan
            let expect = idx
                .forest
                .non_tree_edges()
                .iter()
                .filter(|&&(u, _)| idx.forest.contains(w, u))
                .count();
            assert_eq!(slice.len(), expect);
        }
    }

    #[test]
    fn strongly_connected_graph() {
        // a single big cycle: everything reaches everything
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        check(&g);
    }
}
