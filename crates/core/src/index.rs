//! The common interface of plain reachability indexes, and the
//! classification metadata of the survey's Table 1.

use crate::audit::Violation;
use reach_graph::{DiGraph, VertexId};

/// The indexing framework a technique belongs to (Table 1, column
/// "Framework").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// Materialized transitive closure (the naive baseline of §2.3).
    TransitiveClosure,
    /// Interval labeling over spanning trees with inheritance (§3.1).
    TreeCover,
    /// 2-hop labeling and its descendants (§3.2).
    TwoHop,
    /// Approximate transitive closure via order-preserving sketches (§3.3).
    ApproximateTc,
    /// Techniques outside the three main frameworks (§3.4).
    Other,
}

/// Whether queries are answered by index lookups alone (Table 1,
/// column "Index Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Completeness {
    /// Lookup-only: the index alone decides every query.
    Complete,
    /// The index is a filter; undecided queries fall back to guided
    /// graph traversal.
    Partial,
}

/// The input class an index assumes (Table 1, column "Input").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputClass {
    /// Directed acyclic graphs; general graphs go through SCC
    /// condensation first (see [`crate::general::Condensed`]).
    Dag,
    /// Arbitrary directed graphs.
    General,
}

/// Update support (Table 1, column "Dynamic").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dynamism {
    /// Rebuilt from scratch on change.
    Static,
    /// Supports edge insertions only (e.g. DBL).
    InsertOnly,
    /// Supports edge insertions and deletions (e.g. TOL, DAGGER).
    InsertDelete,
}

/// Static classification of an index — one row of the survey's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexMeta {
    /// Short technique name as used in the survey.
    pub name: &'static str,
    /// Citation tag in the survey's bibliography.
    pub citation: &'static str,
    /// Framework column.
    pub framework: Framework,
    /// Index-type column.
    pub completeness: Completeness,
    /// Input column.
    pub input: InputClass,
    /// Dynamic column.
    pub dynamism: Dynamism,
}

/// A plain reachability index: answers `Qr(s, t)` — "does a directed
/// path from `s` to `t` exist?" — exactly.
///
/// Partial indexes (in the survey's sense) still implement this trait:
/// their `query` combines index lookups with guided traversal via
/// [`crate::engine::GuidedSearch`], so every implementation is an
/// exact oracle. The partial/complete distinction is visible through
/// [`IndexMeta::completeness`] and through the [`ReachFilter`] trait.
///
/// Every index is `Send + Sync` (enforced here as supertraits): one
/// `Arc<dyn ReachIndex>` serves any number of request threads, which
/// is what the [`crate::query_engine::QueryEngine`] executor relies
/// on. Per-query scratch therefore lives in a lock-free
/// [`reach_graph::ScratchPool`], never a `RefCell`.
pub trait ReachIndex: Send + Sync {
    /// Whether `t` is reachable from `s` (every vertex reaches itself).
    fn query(&self, s: VertexId, t: VertexId) -> bool;

    /// Answers a batch of pairs, in order.
    ///
    /// The default is the per-pair loop; traversal-backed indexes
    /// override it with batch-aware evaluation (multi-source
    /// bit-parallel BFS for the online baselines, same-source grouping
    /// for guided search). Overrides must return exactly what the
    /// per-pair loop would.
    fn query_batch(&self, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        pairs.iter().map(|&(s, t)| self.query(s, t)).collect()
    }

    /// This technique's Table-1 classification.
    fn meta(&self) -> IndexMeta;

    /// Approximate heap footprint of the index structures in bytes,
    /// excluding the graph itself.
    fn size_bytes(&self) -> usize;

    /// Number of label entries / intervals / bitset words — the
    /// abstract "index size" measure the survey compares (e.g. total
    /// interval count for tree cover, Σ|Lin|+|Lout| for 2-hop).
    fn size_entries(&self) -> usize;

    /// Validates this index's structural invariants against the graph
    /// it was built on (interval nesting, 2-hop cover soundness and
    /// completeness, filter guarantees, ...), returning every
    /// violation found.
    ///
    /// `graph` must be the graph the index answers queries about
    /// (for [`crate::general::Condensed`] the *original* graph; the
    /// adapter hands its inner index the condensation DAG).  The
    /// default reports nothing; families with checkable structure
    /// override it.  Expensive checks are sampled, so a clean result
    /// is strong evidence, not proof — `reach verify` combines this
    /// with a differential pass for that reason.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let _ = graph;
        Vec::new()
    }
}

/// The answer of one index-lookup on a partial index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// The lookup proves a path exists.
    Reachable,
    /// The lookup proves no path exists.
    Unreachable,
    /// The lookup is inconclusive; traversal must continue.
    Unknown,
}

/// What a partial index's lookups can guarantee — the distinction §5
/// of the survey builds its argument on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterGuarantees {
    /// The filter sometimes returns [`Certainty::Reachable`], and such
    /// answers are always correct (no false positives on the positive
    /// side).
    pub definite_positive: bool,
    /// The filter sometimes returns [`Certainty::Unreachable`], and
    /// such answers are always correct (no false negatives: if a pair
    /// is reachable the filter never says `Unreachable`).
    pub definite_negative: bool,
}

/// A partial index viewed as a pruning filter, in the sense of §3.3
/// and §5: a cheap per-pair lookup that is allowed to answer `Unknown`.
///
/// [`crate::engine::GuidedSearch`] lifts any filter into an exact
/// [`ReachIndex`] by running a DFS that (a) terminates immediately on a
/// `Reachable` verdict and (b) skips subtrees with an `Unreachable`
/// verdict — exactly the guided traversal the survey describes.
///
/// `Send + Sync` for the same reason as [`ReachIndex`]: lookups are
/// reads over frozen label tables, and the lifted oracle must be
/// shareable across query threads.
pub trait ReachFilter: Send + Sync {
    /// One index lookup for the pair `(s, t)`.
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty;

    /// Which verdicts this filter can produce.
    fn guarantees(&self) -> FilterGuarantees;

    /// Approximate heap footprint of the filter in bytes.
    fn size_bytes(&self) -> usize;

    /// Abstract entry count (see [`ReachIndex::size_entries`]).
    fn size_entries(&self) -> usize;

    /// Validates the filter's label structure against the graph it
    /// was built on (see [`ReachIndex::check_invariants`]); the
    /// verdict-level guarantees are additionally probed by
    /// [`crate::engine::GuidedSearch`]'s own hook.
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let _ = graph;
        Vec::new()
    }
}

impl<F: ReachFilter + ?Sized> ReachFilter for Box<F> {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        (**self).certain(s, t)
    }
    fn guarantees(&self) -> FilterGuarantees {
        (**self).guarantees()
    }
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
    fn size_entries(&self) -> usize {
        (**self).size_entries()
    }
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        (**self).check_invariants(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_is_plain_data() {
        let m = IndexMeta {
            name: "X",
            citation: "[0]",
            framework: Framework::TwoHop,
            completeness: Completeness::Complete,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        };
        let copy = m;
        assert_eq!(copy, m);
        assert_eq!(copy.framework, Framework::TwoHop);
    }

    #[test]
    fn certainty_equality() {
        assert_ne!(Certainty::Reachable, Certainty::Unknown);
        assert_eq!(Certainty::Unreachable, Certainty::Unreachable);
    }
}
