//! Ferrari \[40\]: tree-cover with a per-vertex interval budget.
//!
//! Like the tree cover, every vertex inherits intervals from its
//! out-neighbors — but at most `k` intervals are kept. When the list
//! exceeds the budget, the two intervals with the smallest gap are
//! merged into one *approximate* interval that may cover unreachable
//! post-order numbers. Exact intervals answer `Reachable`
//! definitively; approximate ones answer `Unknown`; a miss on all
//! intervals answers `Unreachable` definitively (merging only ever
//! grows coverage, so there are no false negatives). Ferrari is thus
//! the rare filter with *both* guarantees of §5.

use crate::audit::{self, Violation};
use crate::engine::GuidedSearch;
use crate::index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter,
};
use crate::interval::SpanningForest;
use reach_graph::traverse::VisitMap;
use reach_graph::{Dag, DiGraph, VertexId};
use std::sync::Arc;

/// One Ferrari interval: `[start, end]` plus whether it is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FerrariInterval {
    /// Inclusive lower bound on covered post-order numbers.
    pub start: u32,
    /// Inclusive upper bound.
    pub end: u32,
    /// `true` if every covered number is genuinely reachable.
    pub exact: bool,
}

/// The budgeted-interval filter.
#[derive(Debug, Clone)]
pub struct FerrariFilter {
    post: Vec<u32>,
    intervals: Vec<Vec<FerrariInterval>>,
    budget: usize,
}

/// Merges a sorted interval list, preserving exactness where the merge
/// is lossless (overlapping or adjacent), then enforces the budget by
/// closing smallest gaps first (lossy merges become approximate).
fn merge_with_budget(list: &mut Vec<FerrariInterval>, budget: usize) {
    list.sort_unstable_by_key(|iv| (iv.start, iv.end));
    // lossless pass
    let mut w = 0usize;
    for i in 0..list.len() {
        if w == 0 || list[i].start > list[w - 1].end + 1 {
            list[w] = list[i];
            w += 1;
        } else {
            // overlapping/adjacent: union is exact only if both are
            // exact (an approximate part stays approximate)
            let cur = list[i];
            let prev = &mut list[w - 1];
            prev.exact = prev.exact && cur.exact;
            prev.end = prev.end.max(cur.end);
        }
    }
    list.truncate(w);
    // lossy pass: close the smallest gap until within budget
    while list.len() > budget {
        let mut best = 1usize;
        let mut best_gap = u32::MAX;
        for i in 1..list.len() {
            let gap = list[i].start - list[i - 1].end;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        list[best - 1].end = list[best].end;
        list[best - 1].exact = false;
        list.remove(best);
    }
}

impl FerrariFilter {
    /// Builds the filter with at most `budget` intervals per vertex.
    pub fn build(dag: &Dag, budget: usize) -> Self {
        assert!(
            budget >= 1,
            "Ferrari needs a budget of at least one interval"
        );
        let forest = SpanningForest::build(dag.graph());
        let n = dag.num_vertices();
        let post: Vec<u32> = (0..n).map(|i| forest.end(VertexId::new(i))).collect();
        let mut intervals: Vec<Vec<FerrariInterval>> = vec![Vec::new(); n];
        for &u in dag.topo_order().iter().rev() {
            let mut list = vec![FerrariInterval {
                start: forest.start(u),
                end: forest.end(u),
                exact: true,
            }];
            for &v in dag.out_neighbors(u) {
                list.extend_from_slice(&intervals[v.index()]);
            }
            merge_with_budget(&mut list, budget);
            intervals[u.index()] = list;
        }
        FerrariFilter {
            post,
            intervals,
            budget,
        }
    }

    /// The per-vertex interval budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The interval list of `v`.
    pub fn intervals_of(&self, v: VertexId) -> &[FerrariInterval] {
        &self.intervals[v.index()]
    }
}

impl ReachFilter for FerrariFilter {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        let b = self.post[t.index()];
        for iv in &self.intervals[s.index()] {
            if iv.start > b {
                break; // sorted: no later interval can contain b
            }
            if b <= iv.end {
                return if iv.exact {
                    Certainty::Reachable
                } else {
                    Certainty::Unknown
                };
            }
        }
        Certainty::Unreachable
    }

    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: true,
            definite_negative: true,
        }
    }

    fn size_bytes(&self) -> usize {
        4 * self.post.len() + 12 * self.size_entries() + 24 * self.intervals.len()
    }

    fn size_entries(&self) -> usize {
        self.intervals.iter().map(Vec::len).sum()
    }

    /// Ferrari structural invariants: interval lists are sorted,
    /// disjoint, non-adjacent, and within budget; every vertex covers
    /// its own post number; coverage nests along edges (the
    /// no-false-negative side); and on sampled vertices every *exact*
    /// interval covers only genuinely reachable post numbers (the
    /// no-false-positive side, against a BFS ground truth).
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let name = "Ferrari";
        let mut out = Vec::new();
        let n = graph.num_vertices();
        if n != self.post.len() {
            out.push(Violation {
                index: name,
                rule: "graph-mismatch",
                detail: format!("index covers {} vertices, graph has {n}", self.post.len()),
            });
            return out;
        }
        for v in graph.vertices() {
            let list = &self.intervals[v.index()];
            if list.len() > self.budget {
                out.push(Violation {
                    index: name,
                    rule: "ferrari-budget",
                    detail: format!(
                        "{v:?} keeps {} intervals, budget is {}",
                        list.len(),
                        self.budget
                    ),
                });
            }
            if list.iter().any(|iv| iv.start > iv.end)
                || list.windows(2).any(|w| w[1].start <= w[0].end + 1)
            {
                out.push(Violation {
                    index: name,
                    rule: "ferrari-interval-order",
                    detail: format!("intervals of {v:?} not sorted/disjoint/merged: {list:?}"),
                });
            }
            let own = self.post[v.index()];
            if !list.iter().any(|iv| iv.start <= own && own <= iv.end) {
                out.push(Violation {
                    index: name,
                    rule: "ferrari-self",
                    detail: format!("{v:?}'s own post number {own} uncovered"),
                });
            }
        }
        // Nesting: a child's coverage must survive into the parent
        // (merging only grows coverage). Gaps are ≥ 2 after merging,
        // so a child interval fits inside a single parent interval.
        for u in graph.vertices() {
            for &v in graph.out_neighbors(u) {
                for child in &self.intervals[v.index()] {
                    let parent = &self.intervals[u.index()];
                    let nested = parent
                        .iter()
                        .any(|iv| iv.start <= child.start && child.end <= iv.end);
                    if !nested {
                        out.push(Violation {
                            index: name,
                            rule: "ferrari-nesting",
                            detail: format!(
                                "edge {u:?}->{v:?}: child interval [{}, {}] not covered by parent",
                                child.start, child.end
                            ),
                        });
                    }
                }
            }
        }
        // Exactness: exact intervals may only cover reachable posts.
        // Post-order numbers are 1-based (slot 0 stays unused).
        let mut vertex_of_post = vec![VertexId(0); n + 1];
        for v in graph.vertices() {
            vertex_of_post[self.post[v.index()] as usize] = v;
        }
        let mut visit = VisitMap::new(n);
        let mut buf = Vec::new();
        for u in audit::sample_vertices(n, 64) {
            let row = audit::closure_row(graph, u, &mut visit, &mut buf);
            for iv in self.intervals[u.index()].iter().filter(|iv| iv.exact) {
                for p in iv.start..=iv.end {
                    let covered = vertex_of_post[p as usize];
                    if !row[covered.index()] {
                        out.push(Violation {
                            index: name,
                            rule: "ferrari-exactness",
                            detail: format!(
                                "exact interval [{}, {}] of {u:?} covers unreachable {covered:?}",
                                iv.start, iv.end
                            ),
                        });
                        break;
                    }
                }
            }
        }
        out
    }
}

/// Ferrari as an exact oracle.
pub type Ferrari = GuidedSearch<FerrariFilter>;

/// Builds Ferrari with at most `budget` intervals per vertex.
pub fn build_ferrari(dag: &Dag, budget: usize) -> Ferrari {
    build_ferrari_shared(dag.shared_graph(), dag, budget)
}

/// Builds Ferrari over an explicitly shared graph.
pub fn build_ferrari_shared(graph: Arc<DiGraph>, dag: &Dag, budget: usize) -> Ferrari {
    let filter = FerrariFilter::build(dag, budget);
    GuidedSearch::new(
        graph,
        filter,
        IndexMeta {
            name: "Ferrari",
            citation: "[40]",
            framework: Framework::TreeCover,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ReachIndex;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::random_dag;

    #[test]
    fn budget_is_respected() {
        let mut rng = SmallRng::seed_from_u64(41);
        let dag = random_dag(120, 400, &mut rng);
        for budget in [1, 2, 4] {
            let f = FerrariFilter::build(&dag, budget);
            for v in dag.vertices() {
                assert!(f.intervals_of(v).len() <= budget);
            }
        }
    }

    #[test]
    fn filter_verdicts_are_sound() {
        let mut rng = SmallRng::seed_from_u64(42);
        let dag = random_dag(90, 240, &mut rng);
        let f = FerrariFilter::build(&dag, 2);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                match f.certain(s, t) {
                    Certainty::Reachable => {
                        assert!(tc.reaches(s, t), "false positive at {s:?}->{t:?}")
                    }
                    Certainty::Unreachable => {
                        assert!(!tc.reaches(s, t), "false negative at {s:?}->{t:?}")
                    }
                    Certainty::Unknown => {}
                }
            }
        }
    }

    #[test]
    fn oracle_is_exact_across_budgets() {
        let mut rng = SmallRng::seed_from_u64(43);
        let dag = random_dag(80, 220, &mut rng);
        let tc = TransitiveClosure::build_dag(&dag);
        for budget in [1, 3, 8] {
            let idx = build_ferrari(&dag, budget);
            for s in dag.vertices() {
                for t in dag.vertices() {
                    assert_eq!(idx.query(s, t), tc.reaches(s, t));
                }
            }
        }
    }

    #[test]
    fn generous_budget_keeps_everything_exact() {
        // with a huge budget Ferrari degenerates to the full tree
        // cover: every interval stays exact
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let f = FerrariFilter::build(&dag, 64);
        for v in dag.vertices() {
            for iv in f.intervals_of(v) {
                assert!(iv.exact);
            }
        }
        // and then the filter alone is already a complete oracle
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                if s == t {
                    continue;
                }
                let expect = if tc.reaches(s, t) {
                    Certainty::Reachable
                } else {
                    Certainty::Unreachable
                };
                assert_eq!(f.certain(s, t), expect);
            }
        }
    }

    #[test]
    fn tight_budget_produces_approximate_intervals() {
        let mut rng = SmallRng::seed_from_u64(44);
        let dag = random_dag(150, 500, &mut rng);
        let f = FerrariFilter::build(&dag, 1);
        let any_approx = dag
            .vertices()
            .any(|v| f.intervals_of(v).iter().any(|iv| !iv.exact));
        assert!(
            any_approx,
            "budget 1 on a dense DAG must force lossy merges"
        );
    }

    #[test]
    fn merge_with_budget_unit() {
        let mut list = vec![
            FerrariInterval {
                start: 1,
                end: 2,
                exact: true,
            },
            FerrariInterval {
                start: 4,
                end: 5,
                exact: true,
            },
            FerrariInterval {
                start: 9,
                end: 9,
                exact: true,
            },
        ];
        merge_with_budget(&mut list, 2);
        // gap 4-2=2 < 9-5=4: first two merge, approximately
        assert_eq!(list.len(), 2);
        assert_eq!((list[0].start, list[0].end, list[0].exact), (1, 5, false));
        assert_eq!((list[1].start, list[1].end, list[1].exact), (9, 9, true));
    }
}
