//! # reach-core
//!
//! Plain reachability indexes — a from-scratch implementation of every
//! technique family in Table 1 of *An Overview of Reachability Indexes
//! on Graphs* (Zhang, Bonifati, Özsu; SIGMOD-Companion 2023):
//!
//! * **tree-cover framework** (§3.1): [`tree_cover`], [`sspi`],
//!   [`dual_labeling`], [`gripp`], [`chain_cover`], [`grail`],
//!   [`ferrari`], [`dagger`];
//! * **2-hop framework** (§3.2): [`hop2`], [`pll`], [`tol`] (with the
//!   TFL and DL instantiations), [`dbl`], [`oreach`];
//! * **approximate transitive closure** (§3.3): [`ip`], [`bfl`];
//! * **other techniques** (§3.4): [`hl`], [`feline`], [`preach`];
//! * baselines (§2.3): [`online`] traversal and the materialized
//!   [`tc`] transitive closure.
//!
//! All indexes implement [`ReachIndex`]; partial indexes additionally
//! expose their lookup as a [`ReachFilter`] lifted to an exact oracle
//! by [`engine::GuidedSearch`]. DAG-only indexes compose with
//! [`general::Condensed`] for general graphs.

#![forbid(unsafe_code)]

pub mod audit;
pub mod bfl;
pub mod chain_cover;
pub mod dagger;
pub mod dbl;
pub mod dual_labeling;
pub mod engine;
pub mod feline;
pub mod ferrari;
pub mod general;
pub mod grail;
pub mod gripp;
pub mod hl;
pub mod hop2;
pub mod index;
pub mod interval;
pub mod ip;
pub mod online;
pub mod oreach;
pub mod parallel;
pub mod pipeline;
pub mod pll;
pub mod preach;
pub mod query_engine;
pub mod service;
pub mod sspi;
pub mod tc;
pub mod tol;
pub mod tree_cover;

pub use audit::{audit_index, audit_plain, AuditConfig, AuditOutcome, Violation};
pub use engine::GuidedSearch;
pub use general::Condensed;
pub use index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter, ReachIndex,
};
pub use pipeline::{BuildOpts, BuildReport, BuilderSpec, PlainSpec};
pub use query_engine::QueryEngine;
pub use service::{IndexService, UnknownIndex};
pub use tc::TransitiveClosure;
