//! Feline \[45\]: dominance-drawing coordinates (§3.4).
//!
//! Every vertex gets a 2-D coordinate `(x, y)` from two topological
//! orders chosen to disagree wherever the DAG leaves freedom. If `s`
//! reaches `t` then `s` strictly dominates `t` in both coordinates, so
//! a failed dominance test is a proof of non-reachability — Feline is
//! a pure negative filter with a tiny (two u32 per vertex) footprint,
//! refined online by the guided search.

use crate::engine::GuidedSearch;
use crate::index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter,
};
use reach_graph::{Dag, DiGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The two-coordinate dominance filter.
#[derive(Debug, Clone)]
pub struct FelineFilter {
    x: Vec<u32>,
    y: Vec<u32>,
}

/// Kahn topological order with a caller-chosen tie-break.
fn kahn_order(g: &DiGraph, prefer_small_ids: bool) -> Vec<u32> {
    let n = g.num_vertices();
    let mut in_deg: Vec<u32> = (0..n)
        .map(|v| g.in_degree(VertexId::new(v)) as u32)
        .collect();
    let mut rank = vec![0u32; n];
    let mut next = 0u32;
    if prefer_small_ids {
        let mut heap: BinaryHeap<Reverse<VertexId>> = g
            .vertices()
            .filter(|&v| in_deg[v.index()] == 0)
            .map(Reverse)
            .collect();
        while let Some(Reverse(u)) = heap.pop() {
            rank[u.index()] = next;
            next += 1;
            for &v in g.out_neighbors(u) {
                in_deg[v.index()] -= 1;
                if in_deg[v.index()] == 0 {
                    heap.push(Reverse(v));
                }
            }
        }
    } else {
        let mut heap: BinaryHeap<VertexId> =
            g.vertices().filter(|&v| in_deg[v.index()] == 0).collect();
        while let Some(u) = heap.pop() {
            rank[u.index()] = next;
            next += 1;
            for &v in g.out_neighbors(u) {
                in_deg[v.index()] -= 1;
                if in_deg[v.index()] == 0 {
                    heap.push(v);
                }
            }
        }
    }
    debug_assert_eq!(next as usize, n, "kahn_order requires a DAG");
    rank
}

impl FelineFilter {
    /// Builds the coordinates from two tie-break-opposed Kahn orders.
    pub fn build(dag: &Dag) -> Self {
        FelineFilter {
            x: kahn_order(dag.graph(), true),
            y: kahn_order(dag.graph(), false),
        }
    }

    /// The coordinate pair of `v`.
    pub fn coordinates(&self, v: VertexId) -> (u32, u32) {
        (self.x[v.index()], self.y[v.index()])
    }
}

impl ReachFilter for FelineFilter {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        if s == t {
            return Certainty::Reachable;
        }
        if self.x[s.index()] >= self.x[t.index()] || self.y[s.index()] >= self.y[t.index()] {
            Certainty::Unreachable
        } else {
            Certainty::Unknown
        }
    }

    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: false,
            definite_negative: true,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * self.x.len()
    }

    fn size_entries(&self) -> usize {
        self.x.len()
    }
}

/// Feline as an exact oracle.
pub type Feline = GuidedSearch<FelineFilter>;

/// Builds Feline over a DAG.
pub fn build_feline(dag: &Dag) -> Feline {
    build_feline_shared(dag.shared_graph(), dag)
}

/// Builds Feline over an explicitly shared graph.
pub fn build_feline_shared(graph: Arc<DiGraph>, dag: &Dag) -> Feline {
    let filter = FelineFilter::build(dag);
    GuidedSearch::new(
        graph,
        filter,
        IndexMeta {
            name: "Feline",
            citation: "[45]",
            framework: Framework::Other,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ReachIndex;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::random_dag;

    #[test]
    fn filter_has_no_false_negatives() {
        let mut rng = SmallRng::seed_from_u64(161);
        let dag = random_dag(100, 260, &mut rng);
        let f = FelineFilter::build(&dag);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                if tc.reaches(s, t) {
                    assert_ne!(f.certain(s, t), Certainty::Unreachable);
                }
            }
        }
    }

    #[test]
    fn oracle_is_exact() {
        let mut rng = SmallRng::seed_from_u64(162);
        let dag = random_dag(80, 210, &mut rng);
        let idx = build_feline(&dag);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t));
            }
        }
    }

    #[test]
    fn figure1_queries() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = build_feline(&dag);
        assert!(idx.query(fixtures::A, fixtures::G));
        assert!(!idx.query(fixtures::H, fixtures::C));
    }

    #[test]
    fn coordinates_disagree_on_incomparable_vertices() {
        // two parallel chains: the orders should rank them differently
        // somewhere, giving the filter pruning power
        let g = reach_graph::DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let dag = Dag::new(g).unwrap();
        let f = FelineFilter::build(&dag);
        let pruned = dag
            .vertices()
            .flat_map(|s| dag.vertices().map(move |t| (s, t)))
            .filter(|&(s, t)| s != t && f.certain(s, t) == Certainty::Unreachable)
            .count();
        assert!(pruned > 0);
    }

    #[test]
    fn both_coordinates_are_topological() {
        let mut rng = SmallRng::seed_from_u64(163);
        let dag = random_dag(60, 150, &mut rng);
        let f = FelineFilter::build(&dag);
        for (u, v) in dag.graph().edges() {
            let (xu, yu) = f.coordinates(u);
            let (xv, yv) = f.coordinates(v);
            assert!(xu < xv && yu < yv);
        }
    }
}
