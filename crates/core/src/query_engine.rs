//! Concurrent batch-query execution over any [`ReachIndex`].
//!
//! The survey's experiments measure per-query latency; real deployments
//! care about *throughput* — answering a large batch of `(s, t)` pairs
//! as fast as possible. [`QueryEngine`] shards a pair list into
//! contiguous chunks (via [`crate::parallel::chunks`], the same
//! splitter the parallel builders use), evaluates each chunk with
//! [`ReachIndex::query_batch`] on its own scoped thread, and writes
//! answers into disjoint slices of the output — so results are in
//! input order and bit-identical for every thread count.
//!
//! This is what the `ReachIndex: Send + Sync` bound buys: one shared
//! `&dyn ReachIndex` serves all workers with no cloning and no locks
//! (per-query scratch comes from each index's lock-free
//! [`reach_graph::ScratchPool`]).

use crate::index::ReachIndex;
use crate::parallel::chunks;
use reach_graph::VertexId;

/// A batch-query executor with a fixed worker-thread count.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine {
    threads: usize,
}

impl QueryEngine {
    /// An engine running batches on `threads` worker threads
    /// (`threads <= 1` evaluates on the calling thread).
    pub fn new(threads: usize) -> Self {
        QueryEngine {
            threads: threads.max(1),
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Answers every pair, in input order.
    ///
    /// Output is identical to `index.query_batch(pairs)` — and
    /// therefore to the per-pair `index.query` loop — regardless of the
    /// thread count; only wall-clock time changes.
    ///
    /// Sharding is *locality-aware*: pair indices are sorted by source
    /// before being chunked, so all pairs sharing a source land in the
    /// same shard and the batch overrides keep their amortization
    /// (64-sources-per-word packing in the multi-source BFS,
    /// one-traversal-per-source-group in guided search) instead of
    /// re-traversing the same source in every shard. Answers are
    /// scattered back to input positions, so the sort never shows in
    /// the output.
    pub fn run(&self, index: &dyn ReachIndex, pairs: &[(VertexId, VertexId)]) -> Vec<bool> {
        if self.threads <= 1 || pairs.len() < 2 {
            return index.query_batch(pairs);
        }
        let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
        order.sort_by_key(|&i| pairs[i as usize].0 .0);
        let ranges = chunks(pairs.len(), self.threads);
        let mut out = vec![false; pairs.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let idxs = &order[range.clone()];
                    scope.spawn(move || {
                        let shard: Vec<(VertexId, VertexId)> =
                            idxs.iter().map(|&i| pairs[i as usize]).collect();
                        index.query_batch(&shard)
                    })
                })
                .collect();
            for (range, handle) in ranges.iter().zip(handles) {
                let answers = handle.join().expect("query worker panicked");
                for (&i, a) in order[range.clone()].iter().zip(answers) {
                    out[i as usize] = a;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{OnlineSearch, Strategy};
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use reach_graph::generators::random_digraph;
    use std::sync::Arc;

    fn workload(n: u32, q: usize, rng: &mut SmallRng) -> Vec<(VertexId, VertexId)> {
        (0..q)
            .map(|_| {
                (
                    VertexId(rng.random_range(0..n)),
                    VertexId(rng.random_range(0..n)),
                )
            })
            .collect()
    }

    #[test]
    fn engine_matches_per_pair_queries() {
        let mut rng = SmallRng::seed_from_u64(401);
        let g = Arc::new(random_digraph(120, 360, &mut rng));
        let pairs = workload(120, 500, &mut rng);
        let idx = OnlineSearch::new(g.clone(), Strategy::Bfs);
        let tc = TransitiveClosure::build(&g);
        let got = QueryEngine::new(4).run(&idx, &pairs);
        for (i, &(s, t)) in pairs.iter().enumerate() {
            assert_eq!(got[i], tc.reaches(s, t), "pair {i}: {s:?}->{t:?}");
        }
    }

    #[test]
    fn output_is_identical_for_every_thread_count() {
        let mut rng = SmallRng::seed_from_u64(402);
        let g = Arc::new(random_digraph(90, 250, &mut rng));
        let pairs = workload(90, 333, &mut rng);
        let idx = OnlineSearch::new(g, Strategy::BiBfs);
        let reference = QueryEngine::new(1).run(&idx, &pairs);
        for threads in [2, 3, 4, 8, 16] {
            assert_eq!(
                QueryEngine::new(threads).run(&idx, &pairs),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn degenerate_batches() {
        let g = Arc::new(random_digraph(10, 20, &mut SmallRng::seed_from_u64(403)));
        let idx = OnlineSearch::new(g, Strategy::Dfs);
        let engine = QueryEngine::new(8);
        assert!(engine.run(&idx, &[]).is_empty());
        let one = [(VertexId(0), VertexId(0))];
        assert_eq!(engine.run(&idx, &one), vec![true]);
    }

    #[test]
    fn threads_zero_clamps_to_one() {
        assert_eq!(QueryEngine::new(0).threads(), 1);
    }
}
