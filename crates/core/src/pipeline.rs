//! The unified build pipeline: a first-class builder registry over
//! shared [`PreparedGraph`] artifacts.
//!
//! §5 of the survey compares the whole taxonomy on construction cost.
//! To make that comparison honest (and cheap), every technique here is
//! registered as a [`BuilderSpec`] — name, native Table-1 metadata, a
//! feasibility gate, and a build function that consumes the shared
//! [`PreparedGraph`] — so a full sweep runs SCC condensation exactly
//! once per input graph, and the bench harness and CLI dispatch off
//! one table instead of two copies of a string match.
//!
//! Each build returns alongside the index a [`BuildReport`] with the
//! per-phase wall time (condense / order / label) and the index's
//! size, which the CLI `build` path and the bench report layer print.

use crate::bfl::build_bfl_shared;
use crate::chain_cover::ChainCover;
use crate::dagger::DynamicGrail;
use crate::dbl::Dbl;
use crate::dual_labeling::DualLabeling;
use crate::feline::build_feline_shared;
use crate::ferrari::build_ferrari_shared;
use crate::general::Condensed;
use crate::grail::build_grail_shared;
use crate::gripp::Gripp;
use crate::hl::Hl;
use crate::hop2::Hop2;
use crate::index::{IndexMeta, ReachIndex};
use crate::ip::build_ip_shared;
use crate::online::{OnlineSearch, Strategy};
use crate::oreach::build_oreach_shared;
use crate::pll::Pll;
use crate::preach::Preach;
use crate::sspi::TreeSspi;
use crate::tc::TransitiveClosure;
use crate::tol::{build_dl, build_tfl, OrderStrategy, Tol};
use crate::tree_cover::TreeCover;
use reach_graph::condense::CondenseTiming;
use reach_graph::{fixtures, Dag, PreparedGraph};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default parameters used when a technique needs one (GRAIL trees,
/// Ferrari budget, IP permutations, BFL bits, landmark counts).
/// The ablation benches sweep these; the tables use the defaults.
pub mod defaults {
    /// GRAIL / DAGGER labelings.
    pub const GRAIL_K: usize = 3;
    /// Ferrari per-vertex interval budget.
    pub const FERRARI_BUDGET: usize = 4;
    /// IP k-min-wise label size.
    pub const IP_K: usize = 8;
    /// BFL Bloom buckets.
    pub const BFL_BITS: usize = 256;
    /// O'Reach supportive vertices.
    pub const OREACH_K: usize = 16;
    /// HL / landmark-index landmarks.
    pub const LANDMARKS: usize = 16;
    /// Deterministic seed for randomized index construction.
    pub const SEED: u64 = 0xC0FFEE;
}

/// Tunable parameters threaded to every builder. The registry entries
/// read only the knobs they care about; [`BuildOpts::default`] is the
/// configuration every table in the harness uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildOpts {
    /// GRAIL / DAGGER labelings.
    pub grail_k: usize,
    /// Ferrari per-vertex interval budget.
    pub ferrari_budget: usize,
    /// IP k-min-wise label size.
    pub ip_k: usize,
    /// BFL Bloom buckets.
    pub bfl_bits: usize,
    /// O'Reach supportive vertices.
    pub oreach_k: usize,
    /// HL / landmark-index landmarks.
    pub landmarks: usize,
    /// Seed for randomized construction.
    pub seed: u64,
}

impl Default for BuildOpts {
    fn default() -> Self {
        BuildOpts {
            grail_k: defaults::GRAIL_K,
            ferrari_budget: defaults::FERRARI_BUDGET,
            ip_k: defaults::IP_K,
            bfl_bits: defaults::BFL_BITS,
            oreach_k: defaults::OREACH_K,
            landmarks: defaults::LANDMARKS,
            seed: defaults::SEED,
        }
    }
}

/// Per-build observability: phase wall times plus index size.
///
/// `condense` and `order` are charged only to the build that actually
/// forced the shared condensation; every later build on the same
/// [`PreparedGraph`] reports zero there, making the artifact sharing
/// visible in the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// Technique name (registry entry).
    pub name: &'static str,
    /// Tarjan SCC time charged to this build.
    pub condense: Duration,
    /// Condensed-DAG assembly + topological ordering time charged to
    /// this build.
    pub order: Duration,
    /// The technique's own labeling/indexing time.
    pub label: Duration,
    /// End-to-end build wall time.
    pub total: Duration,
    /// Approximate index heap footprint.
    pub size_bytes: usize,
    /// Number of label entries (technique-specific unit).
    pub size_entries: usize,
}

impl BuildReport {
    /// Whether this build reused a condensation computed by an earlier
    /// build on the same prepared graph.
    pub fn reused_condensation(&self) -> bool {
        self.condense.is_zero() && self.order.is_zero()
    }
}

/// One registry entry: everything the harness needs to list, gate, and
/// build a technique.
///
/// The type is generic so the same shape covers plain indexes
/// (`BuilderSpec<PreparedGraph, dyn ReachIndex>`, this crate) and the
/// labeled/LCR side (`reach-labeled` instantiates it with
/// `LabeledGraph` input and its own metadata type).
pub struct BuilderSpec<G: ?Sized, I: ?Sized, M = IndexMeta> {
    /// Technique name, unique within a registry, as used in the survey.
    pub name: &'static str,
    /// The technique's *native* Table-1/Table-2 classification — what
    /// the technique itself assumes, not what the adapted artifact
    /// accepts (e.g. GRAIL is natively DAG-input even though the
    /// registry lifts it to general graphs).
    pub meta: fn() -> M,
    /// Whether building on `n` vertices / `m` edges is practical. The
    /// quadratic/greedy baselines bow out on large inputs, which is
    /// itself one of the survey's observations.
    pub feasible: fn(n: usize, m: usize) -> bool,
    /// Builds the index from the shared artifacts.
    pub build: fn(&G, &BuildOpts) -> Box<I>,
}

/// The plain-index instantiation used by this crate's registry.
pub type PlainSpec = BuilderSpec<PreparedGraph, dyn ReachIndex>;

fn fig_dag() -> Dag {
    Dag::new(fixtures::figure1a()).expect("figure 1 is acyclic")
}

/// Every plain technique, in Table-1 order. DAG-only techniques are
/// lifted to general graphs with [`Condensed`] over the prepared
/// graph's shared condensation, exactly as §3.1 prescribes.
pub static PLAIN_REGISTRY: &[PlainSpec] = &[
    BuilderSpec {
        name: "Tree cover",
        meta: || TreeCover::build(&fig_dag()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Condensed::from_prepared(p, TreeCover::build)),
    },
    BuilderSpec {
        name: "Tree+SSPI",
        meta: || TreeSspi::build(&fig_dag()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Condensed::from_prepared(p, TreeSspi::build)),
    },
    BuilderSpec {
        name: "Dual labeling",
        meta: || DualLabeling::build(&fig_dag()).meta(),
        // the link table is quadratic in the non-tree edge count; the
        // technique targets almost-tree data (§3.1)
        feasible: |n, m| m.saturating_sub(n) <= 4_000,
        build: |p, _| Box::new(Condensed::from_prepared(p, DualLabeling::build)),
    },
    BuilderSpec {
        name: "GRIPP",
        meta: || Gripp::build(&fixtures::figure1a()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Gripp::build(p.graph())),
    },
    BuilderSpec {
        name: "Chain cover",
        meta: || ChainCover::build(&fig_dag()).meta(),
        feasible: |n, _| n <= 20_000,
        build: |p, _| Box::new(Condensed::from_prepared(p, ChainCover::build)),
    },
    BuilderSpec {
        name: "GRAIL",
        meta: || {
            let dag = fig_dag();
            build_grail_shared(dag.shared_graph(), &dag, defaults::GRAIL_K, defaults::SEED).meta()
        },
        feasible: |_, _| true,
        build: |p, o| {
            Box::new(Condensed::from_prepared(p, |dag| {
                build_grail_shared(dag.shared_graph(), dag, o.grail_k, o.seed)
            }))
        },
    },
    BuilderSpec {
        name: "Ferrari",
        meta: || {
            let dag = fig_dag();
            build_ferrari_shared(dag.shared_graph(), &dag, defaults::FERRARI_BUDGET).meta()
        },
        feasible: |_, _| true,
        build: |p, o| {
            Box::new(Condensed::from_prepared(p, |dag| {
                build_ferrari_shared(dag.shared_graph(), dag, o.ferrari_budget)
            }))
        },
    },
    BuilderSpec {
        name: "DAGGER",
        meta: || DynamicGrail::build(&fig_dag(), defaults::GRAIL_K, defaults::SEED).meta(),
        feasible: |_, _| true,
        build: |p, o| {
            Box::new(Condensed::from_prepared(p, |dag| {
                DynamicGrail::build(dag, o.grail_k, o.seed)
            }))
        },
    },
    BuilderSpec {
        name: "2-Hop",
        meta: || Hop2::build(&fixtures::figure1a()).meta(),
        feasible: |n, _| n <= 400,
        build: |p, _| Box::new(Hop2::build(p.graph())),
    },
    BuilderSpec {
        name: "PLL",
        meta: || Pll::build(&fixtures::figure1a()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Pll::build(p.graph())),
    },
    BuilderSpec {
        name: "TFL",
        meta: || build_tfl(&fig_dag()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Condensed::from_prepared(p, build_tfl)),
    },
    BuilderSpec {
        name: "DL",
        meta: || build_dl(&fixtures::figure1a()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(build_dl(p.graph())),
    },
    BuilderSpec {
        name: "TOL",
        meta: || Tol::build(&fixtures::figure1a(), OrderStrategy::DegreeDescending).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Tol::build(p.graph(), OrderStrategy::DegreeDescending)),
    },
    BuilderSpec {
        name: "DBL",
        meta: || Dbl::build(&fixtures::figure1a()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Dbl::build(p.graph())),
    },
    BuilderSpec {
        name: "O'Reach",
        meta: || {
            let dag = fig_dag();
            build_oreach_shared(dag.shared_graph(), &dag, defaults::OREACH_K).meta()
        },
        feasible: |_, _| true,
        build: |p, o| {
            Box::new(Condensed::from_prepared(p, |dag| {
                build_oreach_shared(dag.shared_graph(), dag, o.oreach_k)
            }))
        },
    },
    BuilderSpec {
        name: "IP",
        meta: || {
            let dag = fig_dag();
            build_ip_shared(dag.shared_graph(), &dag, defaults::IP_K, defaults::SEED).meta()
        },
        feasible: |_, _| true,
        build: |p, o| {
            Box::new(Condensed::from_prepared(p, |dag| {
                build_ip_shared(dag.shared_graph(), dag, o.ip_k, o.seed)
            }))
        },
    },
    BuilderSpec {
        name: "BFL",
        meta: || {
            let dag = fig_dag();
            build_bfl_shared(dag.shared_graph(), &dag, defaults::BFL_BITS, defaults::SEED).meta()
        },
        feasible: |_, _| true,
        build: |p, o| {
            Box::new(Condensed::from_prepared(p, |dag| {
                build_bfl_shared(dag.shared_graph(), dag, o.bfl_bits, o.seed)
            }))
        },
    },
    BuilderSpec {
        name: "HL",
        meta: || Hl::build(&fig_dag(), defaults::LANDMARKS).meta(),
        feasible: |_, _| true,
        build: |p, o| {
            Box::new(Condensed::from_prepared(p, |dag| {
                Hl::build(dag, o.landmarks)
            }))
        },
    },
    BuilderSpec {
        name: "Feline",
        meta: || {
            let dag = fig_dag();
            build_feline_shared(dag.shared_graph(), &dag).meta()
        },
        feasible: |_, _| true,
        build: |p, _| {
            Box::new(Condensed::from_prepared(p, |dag| {
                build_feline_shared(dag.shared_graph(), dag)
            }))
        },
    },
    BuilderSpec {
        name: "PReaCH",
        meta: || Preach::build(&fig_dag()).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(Condensed::from_prepared(p, Preach::build)),
    },
    BuilderSpec {
        name: "TC",
        meta: || TransitiveClosure::build(&fixtures::figure1a()).meta(),
        feasible: |n, _| n <= 20_000,
        build: |p, _| Box::new(TransitiveClosure::build(p.graph())),
    },
    BuilderSpec {
        name: "online-BFS",
        meta: || OnlineSearch::new(Arc::new(fixtures::figure1a()), Strategy::Bfs).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(OnlineSearch::new(Arc::clone(p.graph()), Strategy::Bfs)),
    },
    BuilderSpec {
        name: "online-DFS",
        meta: || OnlineSearch::new(Arc::new(fixtures::figure1a()), Strategy::Dfs).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(OnlineSearch::new(Arc::clone(p.graph()), Strategy::Dfs)),
    },
    BuilderSpec {
        name: "online-BiBFS",
        meta: || OnlineSearch::new(Arc::new(fixtures::figure1a()), Strategy::BiBfs).meta(),
        feasible: |_, _| true,
        build: |p, _| Box::new(OnlineSearch::new(Arc::clone(p.graph()), Strategy::BiBfs)),
    },
];

/// Looks up a plain registry entry by name.
pub fn plain_spec(name: &str) -> Option<&'static PlainSpec> {
    PLAIN_REGISTRY.iter().find(|s| s.name == name)
}

/// Every plain technique name, in Table-1 (registry) order.
pub fn plain_names() -> Vec<&'static str> {
    PLAIN_REGISTRY.iter().map(|s| s.name).collect()
}

/// Whether building `name` on a graph with `n` vertices and `m` edges
/// is practical. Unknown names are not feasible.
pub fn plain_feasible(name: &str, n: usize, m: usize) -> bool {
    plain_spec(name).is_some_and(|s| (s.feasible)(n, m))
}

/// The *native* classification of a plain technique (the paper's
/// Table-1 view). Panics on an unknown name.
pub fn plain_native_meta(name: &str) -> IndexMeta {
    let spec = plain_spec(name).unwrap_or_else(|| panic!("unknown plain index {name:?}"));
    (spec.meta)()
}

/// Builds the named plain index over shared prepared artifacts.
/// Panics on an unknown name.
pub fn build_plain_prepared(
    name: &str,
    prepared: &PreparedGraph,
    opts: &BuildOpts,
) -> Box<dyn ReachIndex> {
    let spec = plain_spec(name).unwrap_or_else(|| panic!("unknown plain index {name:?}"));
    (spec.build)(prepared, opts)
}

/// Builds through `spec` and reports per-phase wall time and size.
///
/// Condense/order time is attributed to the build that actually forced
/// the shared condensation; builds that reuse it report zero for both
/// phases (see [`BuildReport::reused_condensation`]).
pub fn build_with_report(
    spec: &PlainSpec,
    prepared: &PreparedGraph,
    opts: &BuildOpts,
) -> (Box<dyn ReachIndex>, BuildReport) {
    let runs_before = prepared.condensation_runs();
    let start = Instant::now();
    let idx = (spec.build)(prepared, opts);
    let total = start.elapsed();
    let timing = if prepared.condensation_runs() > runs_before {
        prepared.condense_timing()
    } else {
        CondenseTiming::default()
    };
    let report = BuildReport {
        name: spec.name,
        condense: timing.scc,
        order: timing.assemble,
        label: total.saturating_sub(timing.total()),
        total,
        size_bytes: idx.size_bytes(),
        size_entries: idx.size_entries(),
    };
    (idx, report)
}

/// [`build_with_report`] by name. Panics on an unknown name.
pub fn build_plain_with_report(
    name: &str,
    prepared: &PreparedGraph,
    opts: &BuildOpts,
) -> (Box<dyn ReachIndex>, BuildReport) {
    let spec = plain_spec(name).unwrap_or_else(|| panic!("unknown plain index {name:?}"));
    build_with_report(spec, prepared, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::DiGraph;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let names = plain_names();
        assert!(!names.is_empty());
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b, "duplicate registry entry");
            }
        }
    }

    #[test]
    fn every_spec_meta_matches_built_index_name() {
        for spec in PLAIN_REGISTRY {
            assert_eq!((spec.meta)().name, spec.name);
        }
    }

    #[test]
    fn full_registry_sweep_condenses_exactly_once() {
        // figure-eight general graph: two 3-cycles bridged by an edge
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let prepared = PreparedGraph::new(g);
        let opts = BuildOpts::default();
        for spec in PLAIN_REGISTRY {
            if (spec.feasible)(prepared.num_vertices(), prepared.num_edges()) {
                let _ = (spec.build)(&prepared, &opts);
            }
        }
        assert_eq!(
            prepared.condensation_runs(),
            1,
            "a full sweep must run SCC condensation exactly once"
        );
    }

    #[test]
    fn reports_charge_condensation_to_the_first_build_only() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let prepared = PreparedGraph::new(g);
        let opts = BuildOpts::default();
        let (_, first) = build_plain_with_report("Tree cover", &prepared, &opts);
        let (_, second) = build_plain_with_report("GRAIL", &prepared, &opts);
        assert!(!first.reused_condensation());
        assert!(second.reused_condensation());
        assert!(second.total >= second.label);
    }

    #[test]
    fn unknown_names_are_infeasible() {
        assert!(!plain_feasible("no such index", 10, 10));
        assert!(plain_spec("no such index").is_none());
    }

    #[test]
    fn index_trait_objects_are_send_sync() {
        // compile-time: the supertraits make every implementor — hence
        // every registry entry's Box<dyn ReachIndex> — shareable
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn ReachIndex>();
        assert_send_sync::<Box<dyn ReachIndex>>();
        assert_send_sync::<dyn crate::index::ReachFilter>();
    }

    #[test]
    fn every_registry_index_is_shareable_across_threads() {
        // runtime: one instance of each technique answers queries from
        // multiple threads concurrently, with verdicts matching the
        // single-threaded per-pair loop
        let g = DiGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (1, 6),
                (6, 7),
            ],
        );
        let prepared = PreparedGraph::new(g);
        let opts = BuildOpts::default();
        let pairs: Vec<(reach_graph::VertexId, reach_graph::VertexId)> = (0..8u32)
            .flat_map(|s| {
                (0..8u32).map(move |t| (reach_graph::VertexId(s), reach_graph::VertexId(t)))
            })
            .collect();
        for spec in PLAIN_REGISTRY {
            assert!(
                (spec.feasible)(prepared.num_vertices(), prepared.num_edges()),
                "{} should be feasible on a tiny graph",
                spec.name
            );
            let idx = (spec.build)(&prepared, &opts);
            let expected: Vec<bool> = pairs.iter().map(|&(s, t)| idx.query(s, t)).collect();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let idx = &idx;
                    let pairs = &pairs;
                    let expected = &expected;
                    scope.spawn(move || {
                        for round in 0..8 {
                            let got = if round % 2 == 0 {
                                pairs.iter().map(|&(s, t)| idx.query(s, t)).collect()
                            } else {
                                idx.query_batch(pairs)
                            };
                            assert_eq!(&got, expected, "{} diverged under sharing", spec.name);
                        }
                    });
                }
            });
        }
    }
}
