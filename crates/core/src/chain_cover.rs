//! Chain cover: transitive-closure compression over a chain
//! decomposition (Jagadish \[20\]).
//!
//! This module fills the path/chain-decomposition slot of Table 1: it
//! is the direct ancestor of Path-tree \[24, 27\] (which arranges the
//! paths of the decomposition into a tree) and the decomposition
//! underlying 3-hop \[26\] (which uses chains as the intermediate
//! structure of reachability paths); see DESIGN.md §2 for the
//! substitution note.
//!
//! The DAG is greedily decomposed into vertex-disjoint chains. Every
//! vertex stores, per chain, the *smallest position on that chain it
//! can reach* — `O(n·C)` entries for `C` chains, against `O(n²)` for
//! the full TC. `Qr(s,t)` is one array lookup:
//! `best[s][chain(t)] ≤ pos(t)`.

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use reach_graph::{Dag, VertexId};

const UNREACHED: u32 = u32::MAX;

/// The chain-cover index.
#[derive(Debug, Clone)]
pub struct ChainCover {
    chain_of: Vec<u32>,
    pos_of: Vec<u32>,
    num_chains: usize,
    /// `best[v * num_chains + c]`: minimum position on chain `c`
    /// reachable from `v` (including `v` itself), or `UNREACHED`.
    best: Vec<u32>,
}

impl ChainCover {
    /// Builds the index: greedy chain decomposition along the
    /// topological order, then one reverse-topological min-sweep.
    pub fn build(dag: &Dag) -> Self {
        let n = dag.num_vertices();
        let mut chain_of = vec![u32::MAX; n];
        let mut pos_of = vec![0u32; n];
        // tail[c] = last vertex currently on chain c
        let mut tails: Vec<VertexId> = Vec::new();
        let mut chain_len: Vec<u32> = Vec::new();
        for &v in dag.topo_order() {
            // extend a chain whose tail is an in-neighbor, if any
            let mut assigned = false;
            for &u in dag.in_neighbors(v) {
                let c = chain_of[u.index()];
                if tails[c as usize] == u {
                    chain_of[v.index()] = c;
                    pos_of[v.index()] = chain_len[c as usize];
                    chain_len[c as usize] += 1;
                    tails[c as usize] = v;
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                let c = tails.len() as u32;
                chain_of[v.index()] = c;
                pos_of[v.index()] = 0;
                tails.push(v);
                chain_len.push(1);
            }
        }
        let num_chains = tails.len();

        let mut best = vec![UNREACHED; n * num_chains];
        for &u in dag.topo_order().iter().rev() {
            let ui = u.index();
            for &v in dag.out_neighbors(u) {
                let vi = v.index();
                // elementwise min of u's row and v's row
                let (urow, vrow) = if ui < vi {
                    let (a, b) = best.split_at_mut(vi * num_chains);
                    (
                        &mut a[ui * num_chains..(ui + 1) * num_chains],
                        &b[..num_chains],
                    )
                } else {
                    let (a, b) = best.split_at_mut(ui * num_chains);
                    (
                        &mut b[..num_chains],
                        &a[vi * num_chains..(vi + 1) * num_chains] as &[u32],
                    )
                };
                for c in 0..num_chains {
                    urow[c] = urow[c].min(vrow[c]);
                }
            }
            let own = ui * num_chains + chain_of[ui] as usize;
            best[own] = best[own].min(pos_of[ui]);
        }
        ChainCover {
            chain_of,
            pos_of,
            num_chains,
            best,
        }
    }

    /// Number of chains in the decomposition.
    pub fn num_chains(&self) -> usize {
        self.num_chains
    }

    /// The chain id and position of `v`.
    pub fn chain_position(&self, v: VertexId) -> (u32, u32) {
        (self.chain_of[v.index()], self.pos_of[v.index()])
    }
}

impl ReachIndex for ChainCover {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        let c = self.chain_of[t.index()] as usize;
        self.best[s.index() * self.num_chains + c] <= self.pos_of[t.index()]
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "Chain cover",
            citation: "[20,24,26]",
            framework: Framework::TreeCover,
            completeness: Completeness::Complete,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        4 * (self.best.len() + self.chain_of.len() + self.pos_of.len())
    }

    fn size_entries(&self) -> usize {
        // non-trivial entries only: reachable (vertex, chain) pairs
        self.best.iter().filter(|&&x| x != UNREACHED).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{layered_dag, random_dag};
    use reach_graph::DiGraph;

    fn check(dag: &Dag) {
        let idx = ChainCover::build(dag);
        let tc = TransitiveClosure::build_dag(dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check(&Dag::new(fixtures::figure1a()).unwrap());
    }

    #[test]
    fn exact_on_random_dags() {
        let mut rng = SmallRng::seed_from_u64(81);
        for _ in 0..4 {
            check(&random_dag(70, 190, &mut rng));
        }
    }

    #[test]
    fn exact_on_layered_dags() {
        let mut rng = SmallRng::seed_from_u64(82);
        check(&layered_dag(6, 8, 2, &mut rng));
    }

    #[test]
    fn a_path_is_a_single_chain() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let idx = ChainCover::build(&Dag::new(g).unwrap());
        assert_eq!(idx.num_chains(), 1);
        // labels: each vertex needs only its own chain entry
        assert_eq!(idx.size_entries(), 5);
    }

    #[test]
    fn an_antichain_needs_one_chain_per_vertex() {
        let g = DiGraph::from_edges(4, &[]);
        let idx = ChainCover::build(&Dag::new(g).unwrap());
        assert_eq!(idx.num_chains(), 4);
    }

    #[test]
    fn positions_increase_along_chains() {
        let mut rng = SmallRng::seed_from_u64(83);
        let dag = random_dag(60, 150, &mut rng);
        let idx = ChainCover::build(&dag);
        let tc = TransitiveClosure::build_dag(&dag);
        // same-chain vertices at increasing positions must be reachable
        for s in dag.vertices() {
            for t in dag.vertices() {
                let (cs, ps) = idx.chain_position(s);
                let (ct, pt) = idx.chain_position(t);
                if cs == ct && ps <= pt {
                    assert!(tc.reaches(s, t));
                }
            }
        }
    }
}
