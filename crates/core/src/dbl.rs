//! DBL \[29\]: dynamic double labeling for insertion-only graphs.
//!
//! Two complementary label families, both cheap to maintain under edge
//! insertions because they only ever *grow*:
//!
//! * the **DL label** — bitsets over ≤64 high-degree landmarks:
//!   `dl_out(v)` = landmarks reachable from `v`, `dl_in(v)` =
//!   landmarks reaching `v`. A common landmark is a definite
//!   *positive* answer.
//! * the **BL label** — a 32-bit hash sketch of the full forward /
//!   backward closure. `s → t` implies `closure(t) ⊆ closure(s)` and
//!   therefore `bl_out(t) ⊆ bl_out(s)`; a failed subset test is a
//!   definite *negative* answer (§3.3's contra-positive observation).
//!
//! Queries undecided by both labels fall back to a pruned DFS over the
//! index's own (mutable) adjacency.

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use reach_graph::traverse::{Side, VisitMap};
use reach_graph::{DiGraph, ScratchPool, VertexId};

/// The DBL index. Owns a mutable copy of the graph so that
/// [`insert_edge`](Self::insert_edge) is self-contained.
pub struct Dbl {
    out_adj: Vec<Vec<VertexId>>,
    in_adj: Vec<Vec<VertexId>>,
    /// vertex -> landmark slot (u8::MAX if not a landmark)
    landmark_slot: Vec<u8>,
    dl_in: Vec<u64>,
    dl_out: Vec<u64>,
    bl_in: Vec<u32>,
    bl_out: Vec<u32>,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    stack: Vec<VertexId>,
    visit: VisitMap,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Dbl {
    /// Builds the index: the 64 highest-degree vertices become
    /// landmarks, BL sketches are computed to fixpoint.
    pub fn build(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let mut by_degree: Vec<VertexId> = g.vertices().collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        let landmarks: Vec<VertexId> = by_degree.into_iter().take(64).collect();
        let mut landmark_slot = vec![u8::MAX; n];
        for (i, &v) in landmarks.iter().enumerate() {
            landmark_slot[v.index()] = i as u8;
        }

        let mut dbl = Dbl {
            out_adj: g.vertices().map(|v| g.out_neighbors(v).to_vec()).collect(),
            in_adj: g.vertices().map(|v| g.in_neighbors(v).to_vec()).collect(),
            landmark_slot,
            dl_in: vec![0; n],
            dl_out: vec![0; n],
            bl_in: (0..n).map(|i| 1u32 << (splitmix(i as u64) % 32)).collect(),
            bl_out: (0..n).map(|i| 1u32 << (splitmix(i as u64) % 32)).collect(),
            scratch: ScratchPool::new(),
        };
        // landmark reach sets by BFS
        for (i, &lm) in landmarks.iter().enumerate() {
            dbl.mark_closure(lm, 1u64 << i, true);
            dbl.mark_closure(lm, 1u64 << i, false);
        }
        // BL sketches to fixpoint (handles cycles)
        dbl.bl_fixpoint();
        dbl
    }

    fn mark_closure(&mut self, from: VertexId, bit: u64, forward: bool) {
        let mut queue = vec![from];
        let dl = if forward {
            &mut self.dl_in
        } else {
            &mut self.dl_out
        };
        dl[from.index()] |= bit;
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            let adj = if forward {
                &self.out_adj[x.index()]
            } else {
                &self.in_adj[x.index()]
            };
            let dl = if forward {
                &mut self.dl_in
            } else {
                &mut self.dl_out
            };
            for &y in adj {
                if dl[y.index()] & bit == 0 {
                    dl[y.index()] |= bit;
                    queue.push(y);
                }
            }
        }
    }

    fn bl_fixpoint(&mut self) {
        // worklist: bl_out flows backward over edges, bl_in forward
        let n = self.out_adj.len();
        let mut queue: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        let mut queued = vec![true; n];
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            queued[x.index()] = false;
            let mut acc = self.bl_out[x.index()];
            for &y in &self.out_adj[x.index()] {
                acc |= self.bl_out[y.index()];
            }
            if acc != self.bl_out[x.index()] {
                self.bl_out[x.index()] = acc;
                for &p in &self.in_adj[x.index()] {
                    if !queued[p.index()] {
                        queued[p.index()] = true;
                        queue.push(p);
                    }
                }
            }
        }
        let mut queue: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        let mut queued = vec![true; n];
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            queued[x.index()] = false;
            let mut acc = self.bl_in[x.index()];
            for &y in &self.in_adj[x.index()] {
                acc |= self.bl_in[y.index()];
            }
            if acc != self.bl_in[x.index()] {
                self.bl_in[x.index()] = acc;
                for &p in &self.out_adj[x.index()] {
                    if !queued[p.index()] {
                        queued[p.index()] = true;
                        queue.push(p);
                    }
                }
            }
        }
    }

    /// Inserts the edge `u -> v`, growing all four label families
    /// monotonically (the insertion-only regime DBL targets).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        if self.out_adj[u.index()].contains(&v) {
            return;
        }
        self.out_adj[u.index()].push(v);
        self.in_adj[v.index()].push(u);
        // landmarks reaching u now reach closure(v)
        let bits = self.dl_in[u.index()];
        if bits != 0 {
            self.propagate_dl(v, bits, true);
        }
        let bits = self.dl_out[v.index()];
        if bits != 0 {
            self.propagate_dl(u, bits, false);
        }
        // BL: re-establish the edge-wise subset invariant
        self.propagate_bl(u, self.bl_out[v.index()], true);
        self.propagate_bl(v, self.bl_in[u.index()], false);
    }

    fn propagate_dl(&mut self, start: VertexId, bits: u64, forward: bool) {
        let mut queue = vec![start];
        {
            let dl = if forward {
                &mut self.dl_in
            } else {
                &mut self.dl_out
            };
            if dl[start.index()] | bits == dl[start.index()] {
                return;
            }
            dl[start.index()] |= bits;
        }
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            let adj = if forward {
                &self.out_adj[x.index()]
            } else {
                &self.in_adj[x.index()]
            };
            let dl = if forward {
                &mut self.dl_in
            } else {
                &mut self.dl_out
            };
            for &y in adj {
                if dl[y.index()] | bits != dl[y.index()] {
                    dl[y.index()] |= bits;
                    queue.push(y);
                }
            }
        }
    }

    fn propagate_bl(&mut self, start: VertexId, bits: u32, out_side: bool) {
        let mut queue = vec![start];
        {
            let bl = if out_side {
                &mut self.bl_out
            } else {
                &mut self.bl_in
            };
            if bl[start.index()] | bits == bl[start.index()] {
                return;
            }
            bl[start.index()] |= bits;
        }
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            // bl_out flows backward (predecessors absorb), bl_in forward
            let adj = if out_side {
                &self.in_adj[x.index()]
            } else {
                &self.out_adj[x.index()]
            };
            let bl = if out_side {
                &mut self.bl_out
            } else {
                &mut self.bl_in
            };
            let grown = bl[x.index()];
            for &y in adj {
                if bl[y.index()] | grown != bl[y.index()] {
                    bl[y.index()] |= grown;
                    queue.push(y);
                }
            }
        }
    }

    /// One label-only lookup: `Some(true)` / `Some(false)` are
    /// definite, `None` means the labels cannot decide.
    pub fn lookup(&self, s: VertexId, t: VertexId) -> Option<bool> {
        if s == t {
            return Some(true);
        }
        if self.dl_out[s.index()] & self.dl_in[t.index()] != 0 {
            return Some(true);
        }
        if self.bl_out[t.index()] & !self.bl_out[s.index()] != 0 {
            return Some(false);
        }
        if self.bl_in[s.index()] & !self.bl_in[t.index()] != 0 {
            return Some(false);
        }
        None
    }

    /// Number of landmarks in use.
    pub fn num_landmarks(&self) -> usize {
        self.landmark_slot.iter().filter(|&&s| s != u8::MAX).count()
    }
}

impl ReachIndex for Dbl {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        match self.lookup(s, t) {
            Some(answer) => answer,
            None => {
                // pruned DFS over the stored adjacency
                let scratch = &mut *self.scratch.checkout(|| Scratch {
                    stack: Vec::new(),
                    visit: VisitMap::new(self.out_adj.len()),
                });
                scratch.stack.clear();
                scratch.visit.reset();
                scratch.stack.push(s);
                scratch.visit.mark(s, Side::Forward);
                while let Some(x) = scratch.stack.pop() {
                    for &y in &self.out_adj[x.index()] {
                        if y == t {
                            return true;
                        }
                        if !scratch.visit.mark(y, Side::Forward) {
                            continue;
                        }
                        match self.lookup(y, t) {
                            Some(true) => return true,
                            Some(false) => {}
                            None => scratch.stack.push(y),
                        }
                    }
                }
                false
            }
        }
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "DBL",
            citation: "[29]",
            framework: Framework::TwoHop,
            completeness: Completeness::Partial,
            input: InputClass::General,
            dynamism: Dynamism::InsertOnly,
        }
    }

    fn size_bytes(&self) -> usize {
        // dl bitsets (8B) + bl sketches (4B) per side per vertex
        self.dl_in.len() * (8 + 8 + 4 + 4)
    }

    fn size_entries(&self) -> usize {
        2 * self.dl_in.len() + 2 * self.bl_in.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use reach_graph::fixtures;
    use reach_graph::generators::random_digraph;

    fn check_exact(g: &DiGraph, dbl: &Dbl) {
        let tc = TransitiveClosure::build(g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(dbl.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        let g = fixtures::figure1a();
        check_exact(&g, &Dbl::build(&g));
    }

    #[test]
    fn exact_on_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(121);
        for _ in 0..4 {
            let g = random_digraph(60, 170, &mut rng);
            check_exact(&g, &Dbl::build(&g));
        }
    }

    #[test]
    fn lookup_verdicts_are_sound() {
        let mut rng = SmallRng::seed_from_u64(122);
        let g = random_digraph(50, 140, &mut rng);
        let dbl = Dbl::build(&g);
        let tc = TransitiveClosure::build(&g);
        let mut decided = 0;
        for s in g.vertices() {
            for t in g.vertices() {
                if let Some(ans) = dbl.lookup(s, t) {
                    decided += 1;
                    assert_eq!(ans, tc.reaches(s, t), "lookup wrong at {s:?}->{t:?}");
                }
            }
        }
        assert!(decided > 0, "labels should decide at least some pairs");
    }

    #[test]
    fn insertions_match_rebuild() {
        let mut rng = SmallRng::seed_from_u64(123);
        let g = random_digraph(30, 50, &mut rng);
        let mut dbl = Dbl::build(&g);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..30 {
            let u = rng.random_range(0..30u32);
            let mut v = rng.random_range(0..29u32);
            if v >= u {
                v += 1;
            }
            dbl.insert_edge(VertexId(u), VertexId(v));
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
            let g2 = DiGraph::from_edges(30, &edges);
            check_exact(&g2, &dbl);
        }
    }

    #[test]
    fn landmark_count_is_capped() {
        let mut rng = SmallRng::seed_from_u64(124);
        let g = random_digraph(200, 600, &mut rng);
        let dbl = Dbl::build(&g);
        assert_eq!(dbl.num_landmarks(), 64);
        let small = DiGraph::from_edges(5, &[(0, 1)]);
        assert_eq!(Dbl::build(&small).num_landmarks(), 5);
    }

    #[test]
    fn insert_creating_cycle_stays_exact() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut dbl = Dbl::build(&g);
        dbl.insert_edge(VertexId(3), VertexId(0));
        let g2 = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        check_exact(&g2, &dbl);
    }
}
