//! BFL \[41\]: Bloom-filter labeling — the state-of-the-art
//! approximate-transitive-closure index (§3.3).
//!
//! Replaces IP's k-min-wise sketch with a Bloom filter: every vertex
//! hashes to one of `B` buckets, and `Lout(v)` is the exact union of
//! the buckets of `v`'s forward closure (dually `Lin`). Containment of
//! closures implies containment of bucket sets, so a failed subset
//! test is a proof of non-reachability. A spanning-forest interval
//! provides definite positives and topological levels an extra
//! negative filter; the remaining pairs go to the guided DFS.

use crate::engine::GuidedSearch;
use crate::index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter,
};
use crate::interval::SpanningForest;
use reach_graph::topo::topological_levels;
use reach_graph::{Dag, DiGraph, VertexId};
use std::sync::Arc;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The Bloom-filter-labeling filter.
#[derive(Debug, Clone)]
pub struct BflFilter {
    /// per-vertex Bloom labels, `words` u64s each
    lout: Vec<u64>,
    lin: Vec<u64>,
    words: usize,
    forest: SpanningForest,
    level_fwd: Vec<u32>,
    level_bwd: Vec<u32>,
}

impl BflFilter {
    /// Builds the filter with `bits`-bucket Bloom labels (rounded up
    /// to a multiple of 64, minimum 64).
    pub fn build(dag: &Dag, bits: usize, seed: u64) -> Self {
        let g = dag.graph();
        let n = g.num_vertices();
        let words = bits.div_ceil(64).max(1);
        let buckets = (words * 64) as u64;
        let bucket_of: Vec<usize> = (0..n)
            .map(|i| (splitmix(seed ^ (i as u64)) % buckets) as usize)
            .collect();

        let mut lout = vec![0u64; n * words];
        for &u in dag.topo_order().iter().rev() {
            let ui = u.index();
            for &v in dag.out_neighbors(u) {
                or_rows(&mut lout, ui, v.index(), words);
            }
            lout[ui * words + bucket_of[ui] / 64] |= 1 << (bucket_of[ui] % 64);
        }
        let mut lin = vec![0u64; n * words];
        for &u in dag.topo_order() {
            let ui = u.index();
            for &v in dag.in_neighbors(u) {
                or_rows(&mut lin, ui, v.index(), words);
            }
            lin[ui * words + bucket_of[ui] / 64] |= 1 << (bucket_of[ui] % 64);
        }
        BflFilter {
            lout,
            lin,
            words,
            forest: SpanningForest::build(g),
            level_fwd: topological_levels(g).expect("DAG input"),
            level_bwd: topological_levels(&g.reverse()).expect("DAG input"),
        }
    }

    fn row(table: &[u64], i: usize, words: usize) -> &[u64] {
        &table[i * words..(i + 1) * words]
    }

    /// Number of Bloom buckets per label.
    pub fn num_buckets(&self) -> usize {
        self.words * 64
    }
}

/// `table[dst] |= table[src]`, rows of `words` u64s.
fn or_rows(table: &mut [u64], dst: usize, src: usize, words: usize) {
    debug_assert_ne!(dst, src);
    let (d, s) = if dst < src {
        let (a, b) = table.split_at_mut(src * words);
        (&mut a[dst * words..dst * words + words], &b[..words])
    } else {
        let (a, b) = table.split_at_mut(dst * words);
        (
            &mut b[..words],
            &a[src * words..src * words + words] as &[u64],
        )
    };
    for w in 0..words {
        d[w] |= s[w];
    }
}

impl ReachFilter for BflFilter {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        if s == t {
            return Certainty::Reachable;
        }
        if self.level_fwd[s.index()] >= self.level_fwd[t.index()]
            || self.level_bwd[s.index()] <= self.level_bwd[t.index()]
        {
            return Certainty::Unreachable;
        }
        if self.forest.contains(s, t) {
            return Certainty::Reachable;
        }
        let s_out = Self::row(&self.lout, s.index(), self.words);
        let t_out = Self::row(&self.lout, t.index(), self.words);
        for w in 0..self.words {
            if t_out[w] & !s_out[w] != 0 {
                return Certainty::Unreachable;
            }
        }
        let s_in = Self::row(&self.lin, s.index(), self.words);
        let t_in = Self::row(&self.lin, t.index(), self.words);
        for w in 0..self.words {
            if s_in[w] & !t_in[w] != 0 {
                return Certainty::Unreachable;
            }
        }
        Certainty::Unknown
    }

    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: true,
            definite_negative: true,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * (self.lout.len() + self.lin.len()) + 16 * self.level_fwd.len()
    }

    fn size_entries(&self) -> usize {
        self.lout.len() + self.lin.len()
    }
}

/// BFL as an exact oracle.
pub type Bfl = GuidedSearch<BflFilter>;

/// Builds BFL with `bits`-bucket Bloom labels.
pub fn build_bfl(dag: &Dag, bits: usize, seed: u64) -> Bfl {
    build_bfl_shared(dag.shared_graph(), dag, bits, seed)
}

/// Builds BFL over an explicitly shared graph.
pub fn build_bfl_shared(graph: Arc<DiGraph>, dag: &Dag, bits: usize, seed: u64) -> Bfl {
    let filter = BflFilter::build(dag, bits, seed);
    GuidedSearch::new(
        graph,
        filter,
        IndexMeta {
            name: "BFL",
            citation: "[41]",
            framework: Framework::ApproximateTc,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ReachIndex;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{power_law_dag, random_dag};

    #[test]
    fn filter_verdicts_are_sound() {
        let mut rng = SmallRng::seed_from_u64(151);
        for bits in [64, 256] {
            let dag = random_dag(90, 240, &mut rng);
            let f = BflFilter::build(&dag, bits, 9);
            let tc = TransitiveClosure::build_dag(&dag);
            for s in dag.vertices() {
                for t in dag.vertices() {
                    match f.certain(s, t) {
                        Certainty::Reachable => assert!(tc.reaches(s, t)),
                        Certainty::Unreachable => assert!(!tc.reaches(s, t)),
                        Certainty::Unknown => {}
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_is_exact() {
        let mut rng = SmallRng::seed_from_u64(152);
        let dag = random_dag(75, 200, &mut rng);
        let idx = build_bfl(&dag, 128, 4);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t));
            }
        }
    }

    #[test]
    fn figure1_queries() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = build_bfl(&dag, 64, 2);
        assert!(idx.query(fixtures::A, fixtures::G));
        assert!(!idx.query(fixtures::G, fixtures::D));
    }

    #[test]
    fn more_bits_decide_more() {
        let mut rng = SmallRng::seed_from_u64(153);
        let dag = power_law_dag(250, 2, &mut rng);
        let count_unknown = |bits: usize| {
            let f = BflFilter::build(&dag, bits, 17);
            let mut unknown = 0;
            for s in dag.vertices() {
                for t in dag.vertices() {
                    if f.certain(s, t) == Certainty::Unknown {
                        unknown += 1;
                    }
                }
            }
            unknown
        };
        assert!(count_unknown(512) <= count_unknown(64));
    }

    #[test]
    fn bucket_rounding() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        assert_eq!(BflFilter::build(&dag, 1, 0).num_buckets(), 64);
        assert_eq!(BflFilter::build(&dag, 100, 0).num_buckets(), 128);
    }
}
