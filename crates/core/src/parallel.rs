//! Parallel index construction — the survey's closing open challenge
//! (§5: *"the parallel computation of indexes (e.g., parallel 2-hop
//! indexing \[22\]) is also worth exploring"*).
//!
//! Three construction problems here are embarrassingly parallel and
//! get scoped-thread implementations producing *bit-identical* results
//! to their sequential counterparts:
//!
//! * GRAIL's `k` labelings are mutually independent random DFS runs;
//! * HL's per-landmark reach sets are independent BFS pairs;
//! * TOL's canonical labels are per-hop-local restricted closures
//!   (the same locality that enables its dynamic maintenance), so hop
//!   BFSs can run concurrently and be merged — the simplest member of
//!   the design space that \[22\] explores for *pruned* labelings,
//!   where cross-hop pruning dependencies make parallelism hard.

use crate::grail::{Grail, GrailFilter};
use crate::hl::Hl;
use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass};
use crate::tol::Tol;
use crate::GuidedSearch;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reach_graph::{Dag, DiGraph, VertexId};

/// Splits `0..total` into at most `threads` contiguous chunks.
///
/// Shared by the parallel builders here and by
/// [`crate::query_engine::QueryEngine`]'s batch sharding.
pub fn chunks(total: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.clamp(1, total.max(1));
    let per = total.div_ceil(threads);
    (0..total)
        .step_by(per.max(1))
        .map(|lo| lo..(lo + per).min(total))
        .collect()
}

/// Builds GRAIL's `k` labelings on `threads` worker threads.
///
/// Each labeling is seeded independently from `seed`, so the result is
/// deterministic and independent of the thread count.
pub fn build_grail_parallel(dag: &Dag, k: usize, seed: u64, threads: usize) -> Grail {
    assert!(k >= 1);
    let mut labelings: Vec<Vec<(u32, u32)>> = Vec::with_capacity(k);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..k)
            .map(|i| {
                scope.spawn(move || {
                    let mut rng =
                        SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    GrailFilter::build(dag, 1, &mut rng)
                        .into_labelings()
                        .remove(0)
                })
            })
            .collect();
        let _ = threads; // labelings are the natural work unit
        for h in handles {
            labelings.push(h.join().expect("labeling worker panicked"));
        }
    });
    GuidedSearch::new(
        dag.shared_graph(),
        GrailFilter::from_labelings(labelings),
        IndexMeta {
            name: "GRAIL",
            citation: "[50]",
            framework: Framework::TreeCover,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        },
    )
}

/// Builds the HL landmark oracle with per-landmark BFS pairs running
/// on `threads` worker threads.
pub fn build_hl_parallel(dag: &Dag, k: usize, threads: usize) -> Hl {
    let graph = dag.shared_graph();
    let n = graph.num_vertices();
    let k = k.min(n);
    let mut by_degree: Vec<VertexId> = graph.vertices().collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.0));
    let landmarks: Vec<VertexId> = by_degree.into_iter().take(k).collect();
    let words = n.div_ceil(64).max(1);

    let mut fwd = vec![0u64; k * words];
    let mut bwd = vec![0u64; k * words];
    std::thread::scope(|scope| {
        let fwd_chunks = fwd.chunks_mut(words.max(1));
        let bwd_chunks = bwd.chunks_mut(words.max(1));
        let mut pending = Vec::new();
        for (chunk_ids, (frows, brows)) in chunks(k, threads)
            .into_iter()
            .zip(zip_rows(fwd_chunks, bwd_chunks, k, threads))
        {
            let graph = &graph;
            let landmarks = &landmarks;
            pending.push(scope.spawn(move || {
                // per-worker scratch reused across this chunk's landmarks
                let mut visit = reach_graph::traverse::VisitMap::new(graph.num_vertices());
                let mut closure = Vec::new();
                for ((i, frow), brow) in chunk_ids.clone().zip(frows).zip(brows) {
                    let lm = landmarks[i];
                    reach_graph::traverse::forward_closure_with(
                        graph,
                        lm,
                        &mut visit,
                        &mut closure,
                    );
                    for &v in &closure {
                        frow[v.index() / 64] |= 1 << (v.index() % 64);
                    }
                    reach_graph::traverse::backward_closure_with(
                        graph,
                        lm,
                        &mut visit,
                        &mut closure,
                    );
                    for &v in &closure {
                        brow[v.index() / 64] |= 1 << (v.index() % 64);
                    }
                }
            }));
        }
        for h in pending {
            h.join().expect("landmark worker panicked");
        }
    });
    Hl::from_parts(graph, landmarks, words, fwd, bwd)
}

/// Groups per-row mutable chunks into per-thread batches matching
/// [`chunks`]' ranges.
#[allow(clippy::type_complexity)]
fn zip_rows<'a>(
    fwd: std::slice::ChunksMut<'a, u64>,
    bwd: std::slice::ChunksMut<'a, u64>,
    total: usize,
    threads: usize,
) -> Vec<(Vec<&'a mut [u64]>, Vec<&'a mut [u64]>)> {
    let ranges = chunks(total, threads);
    let mut fwd_rows: Vec<&mut [u64]> = fwd.collect();
    let mut bwd_rows: Vec<&mut [u64]> = bwd.collect();
    let mut out = Vec::with_capacity(ranges.len());
    for range in ranges.iter().rev() {
        let f = fwd_rows.split_off(range.start);
        let b = bwd_rows.split_off(range.start);
        out.push((f, b));
    }
    out.reverse();
    out
}

/// Builds TOL's canonical labels with hop BFSs distributed over
/// `threads` workers, then merges the per-hop results. Identical
/// output to [`Tol::build_with_order`].
pub fn build_tol_parallel(g: &DiGraph, order: &[VertexId], threads: usize) -> Tol {
    let n = g.num_vertices();
    assert_eq!(order.len(), n);
    let mut rank_of = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank_of[v.index()] = r as u32;
    }
    // each worker computes, for its hop range, the restricted closures
    // as (hop rank, member) pair lists
    let mut fwd_pairs: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut bwd_pairs: Vec<Vec<(u32, u32)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks(n, threads)
            .into_iter()
            .map(|range| {
                let rank_of = &rank_of;
                let order = &order;
                scope.spawn(move || {
                    let mut fwd = Vec::new();
                    let mut bwd = Vec::new();
                    let mut seen = vec![false; n];
                    for r in range {
                        restricted_closure(
                            g, order[r], r as u32, rank_of, true, &mut seen, &mut fwd,
                        );
                        restricted_closure(
                            g, order[r], r as u32, rank_of, false, &mut seen, &mut bwd,
                        );
                    }
                    (fwd, bwd)
                })
            })
            .collect();
        for h in handles {
            let (f, b) = h.join().expect("hop worker panicked");
            fwd_pairs.push(f);
            bwd_pairs.push(b);
        }
    });
    // merge: per-vertex sorted rank lists (workers produce ascending ranks)
    let mut lin: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut lout: Vec<Vec<u32>> = vec![Vec::new(); n];
    for batch in fwd_pairs {
        for (r, x) in batch {
            lin[x as usize].push(r);
        }
    }
    for batch in bwd_pairs {
        for (r, x) in batch {
            lout[x as usize].push(r);
        }
    }
    for l in lin.iter_mut().chain(lout.iter_mut()) {
        l.sort_unstable();
    }
    Tol::from_parts(
        g,
        order.to_vec(),
        rank_of,
        lin,
        lout,
        IndexMeta {
            name: "TOL",
            citation: "[55]",
            framework: Framework::TwoHop,
            completeness: Completeness::Complete,
            input: InputClass::Dag,
            dynamism: Dynamism::InsertDelete,
        },
    )
}

/// One restricted BFS (see [`crate::tol`]), appending `(rank, member)`
/// pairs instead of mutating shared label tables.
fn restricted_closure(
    g: &DiGraph,
    w: VertexId,
    r: u32,
    rank_of: &[u32],
    forward: bool,
    seen: &mut [bool],
    out: &mut Vec<(u32, u32)>,
) {
    let mut queue = vec![w];
    seen[w.index()] = true;
    let mut head = 0;
    while head < queue.len() {
        let x = queue[head];
        head += 1;
        out.push((r, x.0));
        if x == w || rank_of[x.index()] >= r {
            let adj = if forward {
                g.out_neighbors(x)
            } else {
                g.in_neighbors(x)
            };
            for &y in adj {
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    queue.push(y);
                }
            }
        }
    }
    for &x in &queue {
        seen[x.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{ReachFilter, ReachIndex};
    use crate::tc::TransitiveClosure;
    use crate::tol::OrderStrategy;
    use rand::Rng;
    use reach_graph::generators::{power_law_dag, random_dag, random_digraph};

    #[test]
    fn parallel_grail_is_exact() {
        let mut rng = SmallRng::seed_from_u64(301);
        let dag = random_dag(80, 200, &mut rng);
        let idx = build_grail_parallel(&dag, 4, 9, 4);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t));
            }
        }
    }

    #[test]
    fn parallel_grail_is_deterministic_across_thread_counts() {
        let mut rng = SmallRng::seed_from_u64(302);
        let dag = random_dag(60, 150, &mut rng);
        let a = build_grail_parallel(&dag, 3, 5, 1);
        let b = build_grail_parallel(&dag, 3, 5, 8);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(
                    a.filter().certain(s, t),
                    b.filter().certain(s, t),
                    "verdicts must not depend on thread count"
                );
            }
        }
    }

    #[test]
    fn parallel_hl_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(303);
        let dag = power_law_dag(150, 3, &mut rng);
        let par = build_hl_parallel(&dag, 12, 4);
        let seq = Hl::build(&dag, 12);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(par.query(s, t), seq.query(s, t));
            }
        }
        assert_eq!(par.size_entries(), seq.size_entries());
    }

    #[test]
    fn parallel_tol_matches_sequential_exactly() {
        let mut rng = SmallRng::seed_from_u64(304);
        let g = random_digraph(70, 200, &mut rng);
        let seq = Tol::build(&g, OrderStrategy::DegreeDescending);
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        let par = build_tol_parallel(&g, &order, 4);
        for x in g.vertices() {
            assert_eq!(par.lin(x), seq.lin(x), "lin({x:?})");
            assert_eq!(par.lout(x), seq.lout(x), "lout({x:?})");
        }
    }

    #[test]
    fn parallel_tol_supports_updates_after_build() {
        let mut rng = SmallRng::seed_from_u64(305);
        let g = random_digraph(30, 60, &mut rng);
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        let mut tol = build_tol_parallel(&g, &order, 3);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        for _ in 0..10 {
            let u = rng.random_range(0..30u32);
            let mut v = rng.random_range(0..29u32);
            if v >= u {
                v += 1;
            }
            tol.insert_edge(VertexId(u), VertexId(v));
            if !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
        }
        let now = DiGraph::from_edges(30, &edges);
        let tc = TransitiveClosure::build(&now);
        for s in now.vertices() {
            for t in now.vertices() {
                assert_eq!(tol.query(s, t), tc.reaches(s, t));
            }
        }
    }

    #[test]
    fn chunking_covers_everything() {
        for (total, threads) in [(10, 3), (1, 8), (0, 4), (16, 16), (7, 1)] {
            let ranges = chunks(total, threads);
            let covered: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(covered, total, "total={total} threads={threads}");
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous");
            }
        }
    }
}
