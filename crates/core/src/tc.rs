//! The materialized transitive closure — the naive baseline of §2.3.
//!
//! *"TC computes and stores the existence of a path between every pair
//! of vertices in the graph. Although query processing with TC
//! requires only constant time, the high computation and storage costs
//! make it infeasible in practice."* It is, however, the perfect test
//! oracle: every other index in this workspace is validated against it.

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use reach_graph::{Dag, DiGraph, VertexId};

/// A dense bitset transitive closure: one `n`-bit row per vertex.
///
/// `O(n²/8)` bytes and `O(n·m/64)` build time — quadratic storage is
/// exactly the infeasibility the survey points out, so keep it to
/// graphs of at most a few tens of thousands of vertices.
///
/// ```
/// use reach_core::TransitiveClosure;
/// use reach_graph::{DiGraph, VertexId};
///
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
/// let tc = TransitiveClosure::build(&g);
/// assert!(tc.reaches(VertexId(0), VertexId(2)));
/// assert_eq!(tc.num_pairs(), 3 + 3); // reflexive + path pairs
/// ```
#[derive(Debug, Clone)]
pub struct TransitiveClosure {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl TransitiveClosure {
    /// Builds the closure of a DAG with one reverse-topological sweep
    /// (`row(v) = {v} ∪ ⋃ row(succ)`), the fastest exact method.
    pub fn build_dag(dag: &Dag) -> Self {
        let n = dag.num_vertices();
        let words = n.div_ceil(64).max(1);
        let mut rows = vec![0u64; n * words];
        for &u in dag.topo_order().iter().rev() {
            let ui = u.index();
            for &v in dag.out_neighbors(u) {
                let vi = v.index();
                let (urow, vrow) = if ui < vi {
                    let (a, b) = rows.split_at_mut(vi * words);
                    (&mut a[ui * words..ui * words + words], &b[..words])
                } else {
                    let (a, b) = rows.split_at_mut(ui * words);
                    (
                        &mut b[..words],
                        &a[vi * words..vi * words + words] as &[u64],
                    )
                };
                for w in 0..words {
                    urow[w] |= vrow[w];
                }
            }
            rows[ui * words + ui / 64] |= 1u64 << (ui % 64);
        }
        TransitiveClosure { n, words, rows }
    }

    /// Builds the closure of an arbitrary digraph with one BFS per
    /// vertex (`O(n·m)`).
    pub fn build(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let words = n.div_ceil(64).max(1);
        let mut rows = vec![0u64; n * words];
        let mut queue: Vec<VertexId> = Vec::new();
        for s in g.vertices() {
            let base = s.index() * words;
            rows[base + s.index() / 64] |= 1u64 << (s.index() % 64);
            queue.clear();
            queue.push(s);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &v in g.out_neighbors(u) {
                    let bit = base + v.index() / 64;
                    let mask = 1u64 << (v.index() % 64);
                    if rows[bit] & mask == 0 {
                        rows[bit] |= mask;
                        queue.push(v);
                    }
                }
            }
        }
        TransitiveClosure { n, words, rows }
    }

    /// Whether the closure contains the pair `(s, t)`.
    #[inline]
    pub fn reaches(&self, s: VertexId, t: VertexId) -> bool {
        self.rows[s.index() * self.words + t.index() / 64] >> (t.index() % 64) & 1 == 1
    }

    /// Number of reachable pairs (including the `n` reflexive pairs) —
    /// the size a full TC materialization would pay for.
    pub fn num_pairs(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.n
    }
}

impl ReachIndex for TransitiveClosure {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        self.reaches(s, t)
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "TC",
            citation: "[2]",
            framework: Framework::TransitiveClosure,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        self.rows.len() * 8
    }

    fn size_entries(&self) -> usize {
        self.num_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::generators::{random_dag, random_digraph};
    use reach_graph::traverse::{bfs_reaches, VisitMap};

    #[test]
    fn dag_and_general_builders_agree() {
        let mut rng = SmallRng::seed_from_u64(11);
        let dag = random_dag(80, 200, &mut rng);
        let a = TransitiveClosure::build_dag(&dag);
        let b = TransitiveClosure::build(dag.graph());
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(a.reaches(s, t), b.reaches(s, t));
            }
        }
    }

    #[test]
    fn matches_bfs_on_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(12);
        let g = random_digraph(50, 130, &mut rng);
        let tc = TransitiveClosure::build(&g);
        let mut vm = VisitMap::new(g.num_vertices());
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(tc.reaches(s, t), bfs_reaches(&g, s, t, &mut vm));
            }
        }
    }

    #[test]
    fn reflexive_and_empty() {
        let g = DiGraph::from_edges(3, &[]);
        let tc = TransitiveClosure::build(&g);
        assert!(tc.reaches(VertexId(0), VertexId(0)));
        assert!(!tc.reaches(VertexId(0), VertexId(1)));
        assert_eq!(tc.num_pairs(), 3);
    }

    #[test]
    fn pair_count_of_a_chain() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let tc = TransitiveClosure::build(&g);
        // 4 reflexive + 3+2+1 path pairs
        assert_eq!(tc.num_pairs(), 10);
    }

    #[test]
    fn large_vertex_count_crossing_word_boundary() {
        // 130 vertices spans three 64-bit words per row
        let edges: Vec<(u32, u32)> = (0..129).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(130, &edges);
        let tc = TransitiveClosure::build(&g);
        assert!(tc.reaches(VertexId(0), VertexId(129)));
        assert!(!tc.reaches(VertexId(129), VertexId(0)));
    }
}
