//! Tree + SSPI \[9\]: spanning-tree intervals plus a surrogate
//! predecessor index over non-tree edges.
//!
//! A partial tree-cover index: the spanning-forest interval answers
//! tree-descendant pairs in O(1); everything else is resolved by
//! hopping *backward* over non-tree edges — if some non-tree edge
//! `(u, v)` has the current target inside `v`'s subtree, then reaching
//! `u` suffices, so `u` joins the target frontier. Any `s`–`t` path
//! decomposes into tree segments joined by non-tree edges, which makes
//! the hop traversal exact.

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use crate::interval::SpanningForest;
use reach_graph::traverse::{Side, VisitMap};
use reach_graph::{Dag, ScratchPool, VertexId};

/// The Tree+SSPI index.
pub struct TreeSspi {
    forest: SpanningForest,
    /// the surrogate predecessor index: for each vertex `v`, the tails
    /// `u` of non-tree edges `(u, v)` entering it
    tails_by_head: Vec<Vec<VertexId>>,
    num_non_tree: usize,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    /// vertices already pushed onto the hop frontier
    frontier: VisitMap,
    /// ancestors whose surrogate-predecessor lists were already drained
    processed: VisitMap,
    stack: Vec<VertexId>,
}

impl TreeSspi {
    /// Builds the index for a DAG.
    pub fn build(dag: &Dag) -> Self {
        let forest = SpanningForest::build(dag.graph());
        let n = dag.num_vertices();
        let mut tails_by_head: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(u, v) in forest.non_tree_edges() {
            tails_by_head[v.index()].push(u);
        }
        TreeSspi {
            num_non_tree: forest.non_tree_edges().len(),
            forest,
            tails_by_head,
            scratch: ScratchPool::new(),
        }
    }

    /// The spanning forest the index is built on.
    pub fn forest(&self) -> &SpanningForest {
        &self.forest
    }
}

impl ReachIndex for TreeSspi {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        if self.forest.contains(s, t) {
            return true;
        }
        // Backward hop search: a frontier vertex w is reachable from s
        // through some non-tree edge (u, v) with v a tree ancestor of w
        // — so walk w's ancestor chain once (Forward marks), pushing
        // each ancestor's surrogate predecessors (Backward marks).
        let n = self.forest.num_vertices();
        let scratch = &mut *self.scratch.checkout(|| Scratch {
            frontier: VisitMap::new(n),
            processed: VisitMap::new(n),
            stack: Vec::new(),
        });
        scratch.frontier.reset();
        scratch.processed.reset();
        scratch.stack.clear();
        scratch.stack.push(t);
        scratch.frontier.mark(t, Side::Backward);
        while let Some(w) = scratch.stack.pop() {
            if self.forest.contains(s, w) {
                return true;
            }
            let mut a = Some(w);
            while let Some(v) = a {
                // ancestors above a processed vertex were processed with it
                if !scratch.processed.mark(v, Side::Forward) {
                    break;
                }
                for &u in &self.tails_by_head[v.index()] {
                    if scratch.frontier.mark(u, Side::Backward) {
                        scratch.stack.push(u);
                    }
                }
                a = self.forest.parent(v);
            }
        }
        false
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "Tree+SSPI",
            citation: "[9]",
            framework: Framework::TreeCover,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        // two interval bounds per vertex + the surrogate predecessor lists
        8 * self.forest.num_vertices() + 8 * self.num_non_tree
    }

    fn size_entries(&self) -> usize {
        self.forest.num_vertices() + self.num_non_tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{random_dag, random_tree_plus_edges};

    fn check(dag: &Dag) {
        let idx = TreeSspi::build(dag);
        let tc = TransitiveClosure::build_dag(dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check(&Dag::new(fixtures::figure1a()).unwrap());
    }

    #[test]
    fn exact_on_tree_heavy_dags() {
        let mut rng = SmallRng::seed_from_u64(51);
        check(&random_tree_plus_edges(100, 12, &mut rng));
    }

    #[test]
    fn exact_on_dense_dags() {
        let mut rng = SmallRng::seed_from_u64(52);
        check(&random_dag(60, 220, &mut rng));
    }

    #[test]
    fn pure_tree_answers_without_hops() {
        let mut rng = SmallRng::seed_from_u64(53);
        let dag = random_tree_plus_edges(80, 0, &mut rng);
        let idx = TreeSspi::build(&dag);
        assert!(idx.forest().non_tree_edges().is_empty());
        check(&dag);
    }

    #[test]
    fn index_size_counts_tree_and_links() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = TreeSspi::build(&dag);
        let nontree = idx.forest().non_tree_edges().len();
        assert_eq!(idx.size_entries(), 9 + nontree);
        assert_eq!(nontree, 13 - 8, "9 vertices, 1 root => 8 tree edges");
    }
}
