//! The original 2-hop index of Cohen, Halperin, Kaplan & Zwick \[14\],
//! built with the greedy set-cover approximation.
//!
//! §3.2: computing the *minimum* 2-hop index is NP-hard; the original
//! work proposed an approximation whose time complexity is O(n⁴) —
//! *"infeasible for large graphs"*. This implementation is the
//! faithful small-graph reference point the survey's narrative starts
//! from: repeatedly choose the hop vertex covering the most
//! still-uncovered reachable pairs, until every pair is covered.

use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use crate::tc::TransitiveClosure;
use crate::tol::sorted_intersects;
use reach_graph::{DiGraph, VertexId};

/// The greedily-covered 2-hop index.
#[derive(Debug, Clone)]
pub struct Hop2 {
    /// `lin[x]`: hop vertex ids (sorted) with a path hop → x.
    lin: Vec<Vec<u32>>,
    /// `lout[x]`: hop vertex ids (sorted) with a path x → hop.
    lout: Vec<Vec<u32>>,
    rounds: usize,
}

impl Hop2 {
    /// Builds the index. Quadratic memory and roughly O(n³)–O(n⁴)
    /// time: intended for graphs of at most a few hundred vertices
    /// (which is the point the survey makes about this technique).
    pub fn build(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let tc = TransitiveClosure::build(g);
        let rev_tc = TransitiveClosure::build(&g.reverse());
        // uncovered[s*n + t] for reachable pairs (including reflexive)
        let words = (n * n).div_ceil(64).max(1);
        let mut uncovered = vec![0u64; words];
        let mut remaining = 0usize;
        for s in 0..n {
            for t in 0..n {
                // reflexive pairs are answered by the s == t fast path,
                // so the cover only needs the proper pairs
                if s != t && tc.reaches(VertexId::new(s), VertexId::new(t)) {
                    uncovered[(s * n + t) / 64] |= 1 << ((s * n + t) % 64);
                    remaining += 1;
                }
            }
        }
        let mut lin: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut lout: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rounds = 0;
        while remaining > 0 {
            // pick hop w maximizing the number of uncovered pairs
            // (s, t) with s → w and w → t
            let mut best_w = 0usize;
            let mut best_gain = 0usize;
            for w in 0..n {
                let wv = VertexId::new(w);
                let mut gain = 0usize;
                for s in 0..n {
                    if !rev_tc.reaches(wv, VertexId::new(s)) {
                        continue; // s does not reach w
                    }
                    for t in 0..n {
                        if tc.reaches(wv, VertexId::new(t))
                            && uncovered[(s * n + t) / 64] >> ((s * n + t) % 64) & 1 == 1
                        {
                            gain += 1;
                        }
                    }
                }
                if gain > best_gain {
                    best_gain = gain;
                    best_w = w;
                }
            }
            debug_assert!(best_gain > 0, "greedy cover stalled");
            let wv = VertexId::new(best_w);
            #[allow(clippy::needless_range_loop)] // s/t index two tables in lockstep
            for s in 0..n {
                if rev_tc.reaches(wv, VertexId::new(s)) {
                    lout[s].push(best_w as u32);
                }
            }
            #[allow(clippy::needless_range_loop)]
            for t in 0..n {
                if tc.reaches(wv, VertexId::new(t)) {
                    lin[t].push(best_w as u32);
                }
            }
            for s in 0..n {
                if !rev_tc.reaches(wv, VertexId::new(s)) {
                    continue;
                }
                for t in 0..n {
                    let bit = s * n + t;
                    if tc.reaches(wv, VertexId::new(t))
                        && uncovered[bit / 64] >> (bit % 64) & 1 == 1
                    {
                        uncovered[bit / 64] &= !(1 << (bit % 64));
                        remaining -= 1;
                    }
                }
            }
            rounds += 1;
        }
        for l in lin.iter_mut().chain(lout.iter_mut()) {
            l.sort_unstable();
        }
        Hop2 { lin, lout, rounds }
    }

    /// Number of hop vertices the greedy cover selected.
    pub fn num_hops(&self) -> usize {
        self.rounds
    }
}

impl ReachIndex for Hop2 {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        s == t || sorted_intersects(&self.lout[s.index()], &self.lin[t.index()])
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "2-Hop",
            citation: "[14]",
            framework: Framework::TwoHop,
            completeness: Completeness::Complete,
            input: InputClass::General,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        4 * self.size_entries() + 48 * self.lin.len()
    }

    fn size_entries(&self) -> usize {
        self.lin.iter().map(Vec::len).sum::<usize>() + self.lout.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::random_digraph;

    fn check_exact(g: &DiGraph) {
        let idx = Hop2::build(g);
        let tc = TransitiveClosure::build(g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1() {
        check_exact(&fixtures::figure1a());
    }

    #[test]
    fn exact_on_small_cyclic_graphs() {
        let mut rng = SmallRng::seed_from_u64(111);
        for _ in 0..3 {
            check_exact(&random_digraph(25, 60, &mut rng));
        }
    }

    #[test]
    fn greedy_cover_is_smaller_than_tc() {
        let mut rng = SmallRng::seed_from_u64(112);
        let g = random_digraph(40, 120, &mut rng);
        let idx = Hop2::build(&g);
        let tc = TransitiveClosure::build(&g);
        assert!(
            idx.size_entries() < tc.num_pairs(),
            "2-hop ({}) should compress the TC ({} pairs)",
            idx.size_entries(),
            tc.num_pairs()
        );
    }

    #[test]
    fn a_star_graph_needs_one_hop() {
        // all paths go through the center: greedy should pick it once
        let g = DiGraph::from_edges(5, &[(1, 0), (2, 0), (0, 3), (0, 4)]);
        let idx = Hop2::build(&g);
        assert_eq!(idx.num_hops(), 1, "the center covers every pair at once");
        check_exact(&g);
    }

    #[test]
    fn edgeless_graph_covers_reflexive_pairs() {
        let g = DiGraph::from_edges(3, &[]);
        check_exact(&g);
    }
}
