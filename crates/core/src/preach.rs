//! PReaCH \[31\]: pruned bidirectional search with contraction-style
//! filters (§3.4).
//!
//! PReaCH combines cheap per-vertex certificates — DFS subtree
//! intervals (definite positives), topological levels in both
//! directions (definite negatives) — with a *bidirectional* pruned
//! BFS. Both frontiers consult the certificates: the forward frontier
//! skips vertices that provably cannot reach `t`, the backward
//! frontier skips vertices provably unreachable from `s`, and a
//! frontier meeting or a positive certificate terminates early.

use crate::index::{
    Certainty, Completeness, Dynamism, FilterGuarantees, Framework, IndexMeta, InputClass,
    ReachFilter, ReachIndex,
};
use crate::interval::SpanningForest;
use reach_graph::topo::topological_levels;
use reach_graph::traverse::{Side, VisitMap};
use reach_graph::{Dag, DiGraph, ScratchPool, VertexId};
use std::sync::Arc;

/// The PReaCH certificate set, usable stand-alone as a filter.
#[derive(Debug, Clone)]
pub struct PreachFilter {
    forest: SpanningForest,
    level_fwd: Vec<u32>,
    level_bwd: Vec<u32>,
    /// min forward level reachable... rather: smallest DFS post-order
    /// number in the forward closure (a GRAIL-style lower bound).
    min_post: Vec<u32>,
}

impl PreachFilter {
    /// Builds the certificates for a DAG.
    pub fn build(dag: &Dag) -> Self {
        let g = dag.graph();
        let forest = SpanningForest::build(g);
        let mut min_post: Vec<u32> = (0..g.num_vertices())
            .map(|i| forest.end(VertexId::new(i)))
            .collect();
        for &u in dag.topo_order().iter().rev() {
            for &v in dag.out_neighbors(u) {
                min_post[u.index()] = min_post[u.index()].min(min_post[v.index()]);
            }
        }
        PreachFilter {
            forest,
            level_fwd: topological_levels(g).expect("DAG input"),
            level_bwd: topological_levels(&g.reverse()).expect("DAG input"),
            min_post,
        }
    }
}

impl ReachFilter for PreachFilter {
    fn certain(&self, s: VertexId, t: VertexId) -> Certainty {
        if s == t {
            return Certainty::Reachable;
        }
        if self.level_fwd[s.index()] >= self.level_fwd[t.index()]
            || self.level_bwd[s.index()] <= self.level_bwd[t.index()]
        {
            return Certainty::Unreachable;
        }
        if self.forest.contains(s, t) {
            return Certainty::Reachable;
        }
        // GRAIL-style containment: the forward closure of s spans
        // post-order numbers [min_post(s), post(s)]
        let post_t = self.forest.end(t);
        if post_t < self.min_post[s.index()] || post_t > self.forest.end(s) {
            return Certainty::Unreachable;
        }
        Certainty::Unknown
    }

    fn guarantees(&self) -> FilterGuarantees {
        FilterGuarantees {
            definite_positive: true,
            definite_negative: true,
        }
    }

    fn size_bytes(&self) -> usize {
        // interval (8) + two levels (8) + min_post (4) per vertex
        20 * self.level_fwd.len()
    }

    fn size_entries(&self) -> usize {
        self.level_fwd.len()
    }
}

/// The PReaCH oracle: certificates plus pruned bidirectional BFS.
pub struct Preach {
    graph: Arc<DiGraph>,
    filter: PreachFilter,
    scratch: ScratchPool<VisitMap>,
}

impl Preach {
    /// Builds PReaCH over a DAG.
    pub fn build(dag: &Dag) -> Self {
        Self::build_shared(dag.shared_graph(), dag)
    }

    /// Builds PReaCH over an explicitly shared graph.
    pub fn build_shared(graph: Arc<DiGraph>, dag: &Dag) -> Self {
        Preach {
            graph,
            filter: PreachFilter::build(dag),
            scratch: ScratchPool::new(),
        }
    }

    /// The certificate filter.
    pub fn filter(&self) -> &PreachFilter {
        &self.filter
    }
}

impl ReachIndex for Preach {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        match self.filter.certain(s, t) {
            Certainty::Reachable => return true,
            Certainty::Unreachable => return false,
            Certainty::Unknown => {}
        }
        let visit = &mut *self
            .scratch
            .checkout(|| VisitMap::new(self.graph.num_vertices()));
        visit.reset();
        visit.mark(s, Side::Forward);
        visit.mark(t, Side::Backward);
        // double-buffered frontiers, as in `bibfs_reaches`
        let mut fwd = vec![s];
        let mut bwd = vec![t];
        let mut next = Vec::new();
        while !fwd.is_empty() && !bwd.is_empty() {
            if fwd.len() <= bwd.len() {
                for &u in &fwd {
                    for &v in self.graph.out_neighbors(u) {
                        if visit.is_marked(v, Side::Backward) {
                            return true;
                        }
                        if !visit.mark(v, Side::Forward) {
                            continue;
                        }
                        match self.filter.certain(v, t) {
                            Certainty::Reachable => return true,
                            Certainty::Unreachable => {}
                            Certainty::Unknown => next.push(v),
                        }
                    }
                }
                std::mem::swap(&mut fwd, &mut next);
            } else {
                for &u in &bwd {
                    for &v in self.graph.in_neighbors(u) {
                        if visit.is_marked(v, Side::Forward) {
                            return true;
                        }
                        if !visit.mark(v, Side::Backward) {
                            continue;
                        }
                        match self.filter.certain(s, v) {
                            Certainty::Reachable => return true,
                            Certainty::Unreachable => {}
                            Certainty::Unknown => next.push(v),
                        }
                    }
                }
                std::mem::swap(&mut bwd, &mut next);
            }
            next.clear();
        }
        false
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "PReaCH",
            citation: "[31]",
            framework: Framework::Other,
            completeness: Completeness::Partial,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        self.filter.size_bytes()
    }

    fn size_entries(&self) -> usize {
        self.filter.size_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{layered_dag, random_dag};

    #[test]
    fn filter_verdicts_are_sound() {
        let mut rng = SmallRng::seed_from_u64(171);
        let dag = random_dag(90, 230, &mut rng);
        let f = PreachFilter::build(&dag);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                match f.certain(s, t) {
                    Certainty::Reachable => assert!(tc.reaches(s, t)),
                    Certainty::Unreachable => assert!(!tc.reaches(s, t)),
                    Certainty::Unknown => {}
                }
            }
        }
    }

    #[test]
    fn oracle_is_exact() {
        let mut rng = SmallRng::seed_from_u64(172);
        for _ in 0..3 {
            let dag = random_dag(75, 200, &mut rng);
            let idx = Preach::build(&dag);
            let tc = TransitiveClosure::build_dag(&dag);
            for s in dag.vertices() {
                for t in dag.vertices() {
                    assert_eq!(idx.query(s, t), tc.reaches(s, t), "at {s:?}->{t:?}");
                }
            }
        }
    }

    #[test]
    fn exact_on_deep_layered_dags() {
        // the level filters' best case
        let mut rng = SmallRng::seed_from_u64(173);
        let dag = layered_dag(10, 6, 2, &mut rng);
        let idx = Preach::build(&dag);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t));
            }
        }
    }

    #[test]
    fn figure1_queries() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = Preach::build(&dag);
        assert!(idx.query(fixtures::A, fixtures::G));
        assert!(!idx.query(fixtures::M, fixtures::H));
    }

    #[test]
    fn certificates_have_small_footprint() {
        let mut rng = SmallRng::seed_from_u64(174);
        let dag = random_dag(1000, 3000, &mut rng);
        let idx = Preach::build(&dag);
        // constant per-vertex certificate size
        assert_eq!(idx.size_entries(), 1000);
    }
}
