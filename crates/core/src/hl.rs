//! HL \[25\]: the hierarchical landmark reachability oracle (§3.4).
//!
//! Jin & Wang's "simple, fast, and scalable reachability oracle":
//! a small set of high-degree landmarks stores *complete* forward and
//! backward reach bitsets, answering every pair whose witness path
//! touches a landmark by two bit probes. Pairs connected only through
//! the landmark-free residual graph are answered by a DFS that skips
//! landmarks — bounded because removing the hubs shatters real graphs.
//! The combination is a complete index: lookups plus residual search
//! decide every query exactly.

use crate::audit::Violation;
use crate::index::{Completeness, Dynamism, Framework, IndexMeta, InputClass, ReachIndex};
use reach_graph::traverse::{Side, VisitMap};
use reach_graph::{Dag, DiGraph, ScratchPool, VertexId};
use std::sync::Arc;

/// The hierarchical-labeling oracle.
pub struct Hl {
    graph: Arc<DiGraph>,
    /// landmark order: `landmarks[i]` owns bit row `i`
    landmarks: Vec<VertexId>,
    is_landmark: Vec<bool>,
    words: usize,
    /// `fwd[i]`: bitset of vertices reachable from landmark i
    fwd: Vec<u64>,
    /// `bwd[i]`: bitset of vertices reaching landmark i
    bwd: Vec<u64>,
    scratch: ScratchPool<Scratch>,
}

struct Scratch {
    visit: VisitMap,
    stack: Vec<VertexId>,
}

impl Hl {
    /// Builds the oracle with `k` landmarks chosen by descending degree.
    pub fn build(dag: &Dag, k: usize) -> Self {
        Self::build_shared(dag.shared_graph(), k)
    }

    /// Builds the oracle over an explicitly shared graph (acyclicity
    /// is not actually required by the construction, but the technique
    /// is classified as DAG-input in the survey).
    pub fn build_shared(graph: Arc<DiGraph>, k: usize) -> Self {
        let n = graph.num_vertices();
        let k = k.min(n);
        let words = n.div_ceil(64).max(1);
        let mut by_degree: Vec<VertexId> = graph.vertices().collect();
        by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.0));
        let landmarks: Vec<VertexId> = by_degree.into_iter().take(k).collect();
        let mut is_landmark = vec![false; n];
        for &lm in &landmarks {
            is_landmark[lm.index()] = true;
        }
        let mut fwd = vec![0u64; k * words];
        let mut bwd = vec![0u64; k * words];
        // one visit map + closure buffer reused across every landmark,
        // instead of a fresh `vec![false; n]` per traversal
        let mut visit = VisitMap::new(n);
        let mut closure = Vec::new();
        for (i, &lm) in landmarks.iter().enumerate() {
            reach_graph::traverse::forward_closure_with(&graph, lm, &mut visit, &mut closure);
            for &v in &closure {
                fwd[i * words + v.index() / 64] |= 1 << (v.index() % 64);
            }
            reach_graph::traverse::backward_closure_with(&graph, lm, &mut visit, &mut closure);
            for &v in &closure {
                bwd[i * words + v.index() / 64] |= 1 << (v.index() % 64);
            }
        }
        Hl {
            graph,
            landmarks,
            is_landmark,
            words,
            fwd,
            bwd,
            scratch: ScratchPool::new(),
        }
    }

    /// Assembles an oracle from precomputed landmark reach sets (used
    /// by the parallel builder).
    pub(crate) fn from_parts(
        graph: Arc<DiGraph>,
        landmarks: Vec<VertexId>,
        words: usize,
        fwd: Vec<u64>,
        bwd: Vec<u64>,
    ) -> Self {
        let n = graph.num_vertices();
        let mut is_landmark = vec![false; n];
        for &lm in &landmarks {
            is_landmark[lm.index()] = true;
        }
        Hl {
            graph,
            landmarks,
            is_landmark,
            words,
            fwd,
            bwd,
            scratch: ScratchPool::new(),
        }
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    #[inline]
    fn bit(table: &[u64], row: usize, words: usize, v: VertexId) -> bool {
        table[row * words + v.index() / 64] >> (v.index() % 64) & 1 == 1
    }
}

impl ReachIndex for Hl {
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        if s == t {
            return true;
        }
        // landmark lookup: any landmark on some s-t path decides
        for i in 0..self.landmarks.len() {
            if Self::bit(&self.bwd, i, self.words, s) && Self::bit(&self.fwd, i, self.words, t) {
                return true;
            }
        }
        // residual search: paths avoiding every landmark
        if self.is_landmark[s.index()] || self.is_landmark[t.index()] {
            // any path from/to a landmark endpoint touches a landmark,
            // so the lookup above was already conclusive
            return false;
        }
        let scratch = &mut *self.scratch.checkout(|| Scratch {
            visit: VisitMap::new(self.graph.num_vertices()),
            stack: Vec::new(),
        });
        scratch.visit.reset();
        scratch.stack.clear();
        scratch.stack.push(s);
        scratch.visit.mark(s, Side::Forward);
        while let Some(u) = scratch.stack.pop() {
            for &v in self.graph.out_neighbors(u) {
                if v == t {
                    return true;
                }
                if !self.is_landmark[v.index()] && scratch.visit.mark(v, Side::Forward) {
                    scratch.stack.push(v);
                }
            }
        }
        false
    }

    fn meta(&self) -> IndexMeta {
        IndexMeta {
            name: "HL",
            citation: "[25]",
            framework: Framework::Other,
            completeness: Completeness::Complete,
            input: InputClass::Dag,
            dynamism: Dynamism::Static,
        }
    }

    fn size_bytes(&self) -> usize {
        8 * (self.fwd.len() + self.bwd.len()) + self.is_landmark.len()
    }

    fn size_entries(&self) -> usize {
        // set bits are the materialized reachability facts
        self.fwd
            .iter()
            .chain(self.bwd.iter())
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// HL's lookup is only as good as its landmark bitsets: each
    /// landmark's forward (resp. backward) row must equal its exact
    /// forward (resp. backward) closure — a stale or truncated row
    /// silently turns lookups into guesses the residual DFS can't
    /// repair (it skips landmarks by design).
    fn check_invariants(&self, graph: &DiGraph) -> Vec<Violation> {
        let name = "HL";
        let mut out = Vec::new();
        let n = graph.num_vertices();
        if n != self.is_landmark.len() {
            out.push(Violation {
                index: name,
                rule: "graph-mismatch",
                detail: format!(
                    "index covers {} vertices, graph has {n}",
                    self.is_landmark.len()
                ),
            });
            return out;
        }
        let mut visit = VisitMap::new(n);
        let mut closure = Vec::new();
        for (i, &lm) in self.landmarks.iter().enumerate() {
            if !self.is_landmark[lm.index()] {
                out.push(Violation {
                    index: name,
                    rule: "hl-landmark-set",
                    detail: format!("landmark {lm:?} missing from the is_landmark map"),
                });
            }
            for (table, table_name, closure_of) in [
                (
                    &self.fwd,
                    "forward",
                    reach_graph::traverse::forward_closure_with
                        as fn(&DiGraph, VertexId, &mut VisitMap, &mut Vec<VertexId>),
                ),
                (
                    &self.bwd,
                    "backward",
                    reach_graph::traverse::backward_closure_with,
                ),
            ] {
                closure_of(graph, lm, &mut visit, &mut closure);
                let mut expected = vec![false; n];
                for &v in &closure {
                    expected[v.index()] = true;
                }
                for v in graph.vertices() {
                    if Self::bit(table, i, self.words, v) != expected[v.index()] {
                        out.push(Violation {
                            index: name,
                            rule: "hl-landmark-closure",
                            detail: format!(
                                "landmark {lm:?} {table_name} row disagrees with its true \
                                 closure at {v:?}"
                            ),
                        });
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TransitiveClosure;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use reach_graph::fixtures;
    use reach_graph::generators::{power_law_dag, random_dag};

    fn check(dag: &Dag, k: usize) {
        let idx = Hl::build(dag, k);
        let tc = TransitiveClosure::build_dag(dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t), "k={k} at {s:?}->{t:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure1_for_all_k() {
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        for k in [0, 1, 3, 9] {
            check(&dag, k);
        }
    }

    #[test]
    fn exact_on_random_dags() {
        let mut rng = SmallRng::seed_from_u64(181);
        for _ in 0..3 {
            check(&random_dag(70, 190, &mut rng), 8);
        }
    }

    #[test]
    fn exact_on_hub_graphs() {
        let mut rng = SmallRng::seed_from_u64(182);
        check(&power_law_dag(150, 2, &mut rng), 10);
    }

    #[test]
    fn zero_landmarks_degenerates_to_search() {
        let mut rng = SmallRng::seed_from_u64(183);
        check(&random_dag(40, 100, &mut rng), 0);
    }

    #[test]
    fn landmark_endpoint_pairs_use_lookup_only() {
        // s itself a landmark: every s-t path "touches a landmark" at s
        let dag = Dag::new(fixtures::figure1a()).unwrap();
        let idx = Hl::build(&dag, 9); // all vertices are landmarks
        assert_eq!(idx.num_landmarks(), 9);
        let tc = TransitiveClosure::build_dag(&dag);
        for s in dag.vertices() {
            for t in dag.vertices() {
                assert_eq!(idx.query(s, t), tc.reaches(s, t));
            }
        }
    }
}
