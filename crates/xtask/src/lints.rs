//! The lint engine: plain-text source scans encoding workspace
//! invariants that `rustc`/`clippy` cannot express.
//!
//! Four rule families (see DESIGN.md §5e):
//!
//! 1. **interior-mutability** — `RefCell`, `Cell<`, and
//!    `thread_local!` are banned from every index-implementation
//!    crate.  PR 2 removed the per-query `RefCell` scratch state so
//!    that `ReachIndex: Send + Sync` holds; this lint keeps it
//!    removed.  `crates/graph/src/scratch.rs` is whitelisted (its
//!    `UnsafeCell` *is* the sanctioned replacement).
//! 2. **panic-free-server** — `unwrap`/`expect`/`panic!`-family
//!    macros are banned from `crates/server/src` request paths; a
//!    worker panic would poison the queue mutex and take down every
//!    subsequent request.
//! 3. **unsafe-whitelist** — the token `unsafe` may appear only in
//!    `crates/graph/src/scratch.rs`; every crate root must carry
//!    `#![forbid(unsafe_code)]` (or `deny` for the graph crate,
//!    which needs a module-scoped allow).
//! 4. **registry-completeness** — every module implementing
//!    `ReachIndex`/`ReachFilter` (core) or `LcrIndex` (labeled) must
//!    be referenced from its crate's `pipeline.rs`, i.e. reachable
//!    from `plain_names()`/`lcr_names()`; an index that exists but
//!    is not registered silently escapes the differential and audit
//!    suites.
//!
//! Scans are token-based with identifier-boundary checks (so
//! `UnsafeCell<...>` does not trip `Cell<`), strip `//` comments, and
//! stop at the first `#[cfg(test)]` so test modules may use
//! `unwrap()` freely.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding, formatted `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The workspace lint policy.  Paths are relative to the repo root,
/// forward-slash separated; this doubles as the recorded whitelist
/// the satellite task asks for.
pub struct LintConfig {
    /// Directories whose `.rs` files may not use interior mutability.
    pub interior_mutability_roots: &'static [&'static str],
    /// Files exempt from the interior-mutability scan.
    pub interior_mutability_allow: &'static [&'static str],
    /// Directories whose `.rs` files must be panic-free outside tests.
    pub panic_free_roots: &'static [&'static str],
    /// The only files allowed to contain the `unsafe` token.
    pub unsafe_allow: &'static [&'static str],
    /// Crate directories under `crates/` whose root source must carry
    /// an unsafe-code attribute (lib.rs, or main.rs for bin-only
    /// crates); the repo root `src/lib.rs` is always checked.
    pub registries: &'static [RegistryRule],
}

/// A registry-completeness rule: every index-impl module under `src`
/// must be referenced as `crate::<stem>` from `pipeline`.
pub struct RegistryRule {
    pub src: &'static str,
    pub pipeline: &'static str,
    /// `impl` markers that identify an index module.
    pub impl_markers: &'static [&'static str],
    /// File names (not paths) exempt from the rule: trait/machinery
    /// modules and indexes dispatched outside the registry.
    pub allow: &'static [&'static str],
    /// Human name of the registry accessor, for messages.
    pub accessor: &'static str,
}

impl LintConfig {
    /// The shipped policy for this workspace.
    pub fn workspace() -> Self {
        LintConfig {
            interior_mutability_roots: &[
                "crates/core/src",
                "crates/labeled/src",
                "crates/graph/src",
                "crates/server/src",
            ],
            interior_mutability_allow: &["crates/graph/src/scratch.rs"],
            panic_free_roots: &["crates/server/src"],
            unsafe_allow: &["crates/graph/src/scratch.rs"],
            registries: &[
                RegistryRule {
                    src: "crates/core/src",
                    pipeline: "crates/core/src/pipeline.rs",
                    impl_markers: &["ReachIndex for", "ReachFilter for"],
                    // engine.rs / index.rs define the traits and the
                    // generic GuidedSearch machinery, not a concrete
                    // index module.
                    allow: &["engine.rs", "index.rs"],
                    accessor: "plain_names()",
                },
                RegistryRule {
                    src: "crates/labeled/src",
                    pipeline: "crates/labeled/src/pipeline.rs",
                    impl_markers: &["LcrIndex for", "RlcIndexApi for"],
                    // lcr.rs defines the traits; rlc.rs is the
                    // concatenation-constraint index, dispatched by
                    // constraint class rather than the LCR registry.
                    allow: &["lcr.rs", "rlc.rs"],
                    accessor: "lcr_names()",
                },
            ],
        }
    }
}

/// Run every lint under `root` (the repo checkout) and return all
/// findings.  I/O errors are reported as violations on the offending
/// path rather than aborting the run.
pub fn run_lints(root: &Path, cfg: &LintConfig) -> Vec<LintViolation> {
    let mut out = Vec::new();
    lint_interior_mutability(root, cfg, &mut out);
    lint_panic_free(root, cfg, &mut out);
    lint_unsafe(root, cfg, &mut out);
    lint_registries(root, cfg, &mut out);
    out
}

/// Number of `.rs` files the policy covers, for the summary line.
pub fn files_in_scope(root: &Path) -> usize {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    collect_rs_files(&root.join("tests"), &mut files);
    files.len()
}

// The scanner reads this very file, so the banned keyword is spelled
// in two halves: the concatenated constant exists only in the binary,
// never as a matchable token in the source text.
const UNSAFE_TOKEN: &str = concat!("un", "safe");
const RULE_UNSAFE: &str = concat!("un", "safe", "-whitelist");

// ---------------------------------------------------------------
// rule 1: interior mutability
// ---------------------------------------------------------------

fn lint_interior_mutability(root: &Path, cfg: &LintConfig, out: &mut Vec<LintViolation>) {
    for dir in cfg.interior_mutability_roots {
        for file in rs_files_under(root, dir) {
            if is_allowed(root, &file, cfg.interior_mutability_allow) {
                continue;
            }
            scan_tokens(
                &file,
                "interior-mutability",
                &[
                    ("RefCell", Boundary::Both),
                    ("Cell<", Boundary::Before),
                    ("thread_local!", Boundary::Before),
                ],
                "interior mutability breaks the Send+Sync contract of the index traits; \
                 use reach_graph::scratch::ScratchPool",
                out,
            );
        }
    }
}

// ---------------------------------------------------------------
// rule 2: panic-free server request paths
// ---------------------------------------------------------------

fn lint_panic_free(root: &Path, cfg: &LintConfig, out: &mut Vec<LintViolation>) {
    for dir in cfg.panic_free_roots {
        for file in rs_files_under(root, dir) {
            scan_tokens(
                &file,
                "panic-free-server",
                &[
                    (".unwrap()", Boundary::None),
                    (".expect(", Boundary::None),
                    ("panic!(", Boundary::Before),
                    ("unreachable!(", Boundary::Before),
                    ("todo!(", Boundary::Before),
                    ("unimplemented!(", Boundary::Before),
                ],
                "a panic on a request path poisons the queue mutex and kills the worker; \
                 return an error response instead",
                out,
            );
        }
    }
}

// ---------------------------------------------------------------
// rule 3: unsafe whitelist
// ---------------------------------------------------------------

fn lint_unsafe(root: &Path, cfg: &LintConfig, out: &mut Vec<LintViolation>) {
    // 3a: the `unsafe` token appears only in whitelisted files.
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    for file in files {
        if is_allowed(root, &file, cfg.unsafe_allow) {
            continue;
        }
        // `unsafe_code` (the attribute name) has `_` after the token,
        // so the boundary check admits the forbid/deny attributes.
        scan_tokens(
            &file,
            RULE_UNSAFE,
            &[(UNSAFE_TOKEN, Boundary::Both)],
            "this keyword is allowed only in crates/graph/src/scratch.rs",
            out,
        );
    }
    // 3b: every crate root opts out of unsafe at the language level.
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            let main = dir.join("src/main.rs");
            if lib.is_file() {
                roots.push(lib);
            } else if main.is_file() {
                roots.push(main);
            }
        }
    }
    for crate_root in roots {
        let Ok(text) = fs::read_to_string(&crate_root) else {
            push_io(&crate_root, out);
            continue;
        };
        if !text.contains("#![forbid(unsafe_code)]") && !text.contains("#![deny(unsafe_code)]") {
            out.push(LintViolation {
                file: crate_root,
                line: 1,
                rule: RULE_UNSAFE,
                message: "crate root must carry #![forbid(unsafe_code)] \
                          (or #![deny(unsafe_code)] with a module-scoped allow)"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------
// rule 4: registry completeness
// ---------------------------------------------------------------

fn lint_registries(root: &Path, cfg: &LintConfig, out: &mut Vec<LintViolation>) {
    for rule in cfg.registries {
        let pipeline_path = root.join(rule.pipeline);
        let Ok(pipeline) = fs::read_to_string(&pipeline_path) else {
            push_io(&pipeline_path, out);
            continue;
        };
        for file in rs_files_under(root, rule.src) {
            let name = file
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let stem = name.trim_end_matches(".rs").to_string();
            if file == pipeline_path || rule.allow.contains(&name.as_str()) {
                continue;
            }
            let Ok(text) = fs::read_to_string(&file) else {
                push_io(&file, out);
                continue;
            };
            let code = active_code(&text);
            if !rule.impl_markers.iter().any(|m| code.contains(m)) {
                continue;
            }
            if !pipeline.contains(&format!("crate::{stem}")) {
                out.push(LintViolation {
                    file,
                    line: 1,
                    rule: "registry-completeness",
                    message: format!(
                        "module `{stem}` implements an index trait but is not referenced \
                         from {} — it is unreachable from {} and escapes the audit suite",
                        rule.pipeline, rule.accessor
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------
// scanning machinery
// ---------------------------------------------------------------

/// Which sides of a pattern must be non-identifier characters.
#[derive(Clone, Copy)]
enum Boundary {
    None,
    Before,
    Both,
}

/// Strip the text down to what the lints should see: everything up
/// to the first `#[cfg(test)]`, with `//` comments removed per line.
fn active_code(text: &str) -> String {
    let mut code = String::with_capacity(text.len());
    for line in text.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let stripped = match line.find("//") {
            Some(pos) => &line[..pos],
            None => line,
        };
        code.push_str(stripped);
        code.push('\n');
    }
    code
}

fn is_ident(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_'
}

fn matches_at(code: &str, pos: usize, pat: &str, boundary: Boundary) -> bool {
    let bytes = code.as_bytes();
    let before_ok = match boundary {
        Boundary::None => true,
        Boundary::Before | Boundary::Both => pos == 0 || !is_ident(bytes[pos - 1]),
    };
    let end = pos + pat.len();
    let after_ok = match boundary {
        Boundary::None | Boundary::Before => true,
        Boundary::Both => end == bytes.len() || !is_ident(bytes[end]),
    };
    before_ok && after_ok
}

fn scan_tokens(
    file: &Path,
    rule: &'static str,
    patterns: &[(&str, Boundary)],
    why: &str,
    out: &mut Vec<LintViolation>,
) {
    let Ok(text) = fs::read_to_string(file) else {
        push_io(file, out);
        return;
    };
    let code = active_code(&text);
    for (lineno, line) in code.lines().enumerate() {
        for &(pat, boundary) in patterns {
            let mut from = 0;
            while let Some(off) = line[from..].find(pat) {
                let pos = from + off;
                if matches_at(line, pos, pat, boundary) {
                    out.push(LintViolation {
                        file: file.to_path_buf(),
                        line: lineno + 1,
                        rule,
                        message: format!("`{pat}` is forbidden here: {why}"),
                    });
                    break; // one finding per pattern per line
                }
                from = pos + pat.len();
            }
        }
    }
}

fn rs_files_under(root: &Path, dir: &str) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rs_files(&root.join(dir), &mut files);
    files
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn is_allowed(root: &Path, file: &Path, allow: &[&str]) -> bool {
    allow.iter().any(|a| root.join(a) == *file)
}

fn push_io(path: &Path, out: &mut Vec<LintViolation>) {
    out.push(LintViolation {
        file: path.to_path_buf(),
        line: 0,
        rule: "io",
        message: "could not read file".into(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a throwaway tree under target/ so tests need no tempdir
    /// dependency; each test uses a distinct subdirectory.
    fn scratch_root(name: &str) -> PathBuf {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/xtask-lint-tests")
            .join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create scratch root");
        root
    }

    fn write(root: &Path, rel: &str, contents: &str) {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, contents).expect("write fixture");
    }

    /// The acceptance-criteria test: seeding a `RefCell` into an
    /// index file makes the lint fail.
    #[test]
    fn injected_refcell_is_flagged() {
        let root = scratch_root("refcell");
        write(
            &root,
            "crates/core/src/bad.rs",
            "use std::cell::RefCell;\npub struct Bad { cache: RefCell<Vec<u32>> }\n",
        );
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        let interior: Vec<_> = hits
            .iter()
            .filter(|v| v.rule == "interior-mutability")
            .collect();
        assert_eq!(interior.len(), 2, "one per RefCell line: {hits:?}");
        assert!(interior[0].file.ends_with("bad.rs"));
    }

    #[test]
    fn unsafe_cell_does_not_trip_the_cell_pattern() {
        let root = scratch_root("unsafecell");
        write(
            &root,
            "crates/core/src/ok.rs",
            // UnsafeCell< must not match `Cell<` (identifier boundary);
            // the unsafe-whitelist rule fires instead, proving the
            // file is still covered.
            "use core::cell::UnsafeCell;\npub struct S(UnsafeCell<u8>);\n",
        );
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        assert!(
            hits.iter().all(|v| v.rule != "interior-mutability"),
            "UnsafeCell mis-flagged: {hits:?}"
        );
    }

    #[test]
    fn comments_and_test_modules_are_ignored() {
        let root = scratch_root("comments");
        write(
            &root,
            "crates/server/src/ok.rs",
            "// a worker never calls .unwrap() on the queue lock\n\
             pub fn f() {}\n\
             #[cfg(test)]\n\
             mod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        assert!(
            hits.iter().all(|v| v.rule != "panic-free-server"),
            "comment/test unwrap mis-flagged: {hits:?}"
        );
    }

    #[test]
    fn server_unwrap_outside_tests_is_flagged() {
        let root = scratch_root("serverunwrap");
        write(
            &root,
            "crates/server/src/bad.rs",
            "pub fn f(lock: std::sync::Mutex<u8>) -> u8 { *lock.lock().unwrap() }\n",
        );
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        assert!(
            hits.iter()
                .any(|v| v.rule == "panic-free-server" && v.line == 1),
            "unwrap not flagged: {hits:?}"
        );
    }

    #[test]
    fn unsafe_outside_whitelist_is_flagged_and_scratch_is_exempt() {
        let root = scratch_root("unsafe");
        write(
            &root,
            "crates/graph/src/scratch.rs",
            "pub struct Slot;\nunsafe impl Sync for Slot {}\n",
        );
        write(
            &root,
            "crates/core/src/bad.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        let unsafe_hits: Vec<_> = hits
            .iter()
            .filter(|v| v.rule == "unsafe-whitelist" && v.line > 0)
            .collect();
        assert_eq!(unsafe_hits.len(), 1, "{hits:?}");
        assert!(unsafe_hits[0].file.ends_with("crates/core/src/bad.rs"));
    }

    #[test]
    fn missing_forbid_attribute_on_crate_root_is_flagged() {
        let root = scratch_root("attr");
        write(
            &root,
            "src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn ok() {}\n",
        );
        write(&root, "crates/thing/src/lib.rs", "pub fn nope() {}\n");
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        let attr_hits: Vec<_> = hits
            .iter()
            .filter(|v| v.rule == "unsafe-whitelist" && v.message.contains("crate root"))
            .collect();
        assert_eq!(attr_hits.len(), 1, "{hits:?}");
        assert!(attr_hits[0].file.ends_with("crates/thing/src/lib.rs"));
    }

    #[test]
    fn unregistered_index_module_is_flagged() {
        let root = scratch_root("registry");
        write(
            &root,
            "crates/core/src/pipeline.rs",
            "use crate::good::Good;\npub fn plain_names() -> Vec<&'static str> { vec![\"Good\"] }\n",
        );
        write(
            &root,
            "crates/core/src/good.rs",
            "pub struct Good;\nimpl crate::index::ReachIndex for Good {}\n",
        );
        write(
            &root,
            "crates/core/src/orphan.rs",
            "pub struct Orphan;\nimpl crate::index::ReachIndex for Orphan {}\n",
        );
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        let reg: Vec<_> = hits
            .iter()
            .filter(|v| v.rule == "registry-completeness")
            .collect();
        assert_eq!(reg.len(), 1, "{hits:?}");
        assert!(reg[0].file.ends_with("orphan.rs"));
        assert!(reg[0].message.contains("plain_names()"));
    }

    /// The real workspace must pass its own policy clean.
    #[test]
    fn shipped_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let cfg = LintConfig::workspace();
        let hits = run_lints(&root, &cfg);
        assert!(
            hits.is_empty(),
            "workspace lint violations:\n{}",
            render(&hits)
        );
    }

    fn render(hits: &[LintViolation]) -> String {
        hits.iter().map(|v| format!("{v}\n")).collect()
    }
}
