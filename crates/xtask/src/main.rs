//! `cargo xtask` — the workspace task runner.
//!
//! Subcommands:
//!
//! * `cargo xtask lint` — run the repo-specific source lints (see
//!   [`lints`] and DESIGN.md §5e).  Exits non-zero on any violation.
//!
//! Flags: `--root <dir>` overrides the workspace root (defaults to
//! the directory two levels above this crate's manifest).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

mod lints;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xtask: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "lint" if cmd.is_none() => cmd = Some("lint"),
            other => {
                eprintln!("xtask: unknown argument `{other}`");
                return usage();
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        // When run via the cargo alias, the manifest dir is
        // crates/xtask; the workspace root is two levels up.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    match cmd {
        Some("lint") => {
            let cfg = lints::LintConfig::workspace();
            let violations = lints::run_lints(&root, &cfg);
            if violations.is_empty() {
                println!(
                    "xtask lint: {} source files in scope, 0 violations",
                    lints::files_in_scope(&root)
                );
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--root <dir>]");
    ExitCode::FAILURE
}
