//! Server metrics: request counters, per-endpoint latency histograms,
//! batch-size distribution, admission-control rejects — rendered as a
//! plain-text exposition on `GET /metrics`.
//!
//! Everything is a relaxed atomic: recording a sample is a handful of
//! `fetch_add`s on the request path, and the exposition reads whatever
//! snapshot the atomics hold. Quantiles are derived from fixed
//! power-of-two bucket boundaries, so a reported p99 is the *upper
//! bound* of the bucket holding the 99th-percentile sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two histogram buckets: bucket `i` counts samples with
/// `value <= 2^i` (microseconds for latencies, pairs for batch sizes),
/// and the last bucket is the overflow (+inf) bucket.
pub const HIST_BUCKETS: usize = 22;

/// A fixed-bucket log₂ histogram with a running sum.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Upper bound of bucket `i` (`None` for the +inf bucket).
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i + 1 < HIST_BUCKETS).then(|| 1u64 << i)
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            // index of the smallest 2^i >= value, capped at overflow
            (64 - (value - 1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`), or
    /// `None` if the histogram is empty. The +inf bucket reports the
    /// last finite bound.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..HIST_BUCKETS {
            seen += self.counts[i].load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_bound(i).unwrap_or(1u64 << (HIST_BUCKETS - 2)));
            }
        }
        None
    }

    /// Per-bucket cumulative counts `(upper_bound, cumulative)`, the
    /// shape the text exposition prints.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        (0..HIST_BUCKETS)
            .map(|i| {
                acc += self.counts[i].load(Ordering::Relaxed);
                (Self::bucket_bound(i), acc)
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The routes the server accounts for. Every handled request maps to
/// exactly one endpoint; unroutable or unreadable requests count under
/// [`Endpoint::Other`], so endpoint counts and status counts add up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /query` — one plain reachability pair.
    Query,
    /// `POST /batch` — newline-separated pairs through the engine.
    Batch,
    /// `POST /lcr` — one label-constrained pair.
    Lcr,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
    /// `POST /admin/shutdown`.
    Shutdown,
    /// Anything else: unknown paths, bad methods, unparseable requests.
    Other,
}

/// All endpoints, in exposition order.
pub const ENDPOINTS: [Endpoint; 7] = [
    Endpoint::Query,
    Endpoint::Batch,
    Endpoint::Lcr,
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Shutdown,
    Endpoint::Other,
];

impl Endpoint {
    /// Label value used in the exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Lcr => "lcr",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            Endpoint::Query => 0,
            Endpoint::Batch => 1,
            Endpoint::Lcr => 2,
            Endpoint::Healthz => 3,
            Endpoint::Metrics => 4,
            Endpoint::Shutdown => 5,
            Endpoint::Other => 6,
        }
    }
}

/// Statuses the server can emit; anything else lands in the last slot.
const STATUSES: [u16; 9] = [200, 400, 404, 405, 408, 413, 429, 431, 0];

/// All counters and histograms for one server instance.
#[derive(Debug)]
pub struct Metrics {
    requests: [AtomicU64; ENDPOINTS.len()],
    latency_us: [Histogram; ENDPOINTS.len()],
    responses: [AtomicU64; STATUSES.len()],
    batch_pairs: AtomicU64,
    batch_sizes: Histogram,
    rejected_queue_full: AtomicU64,
    connections: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics {
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_us: std::array::from_fn(|_| Histogram::new()),
            responses: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_pairs: AtomicU64::new(0),
            batch_sizes: Histogram::new(),
            rejected_queue_full: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        }
    }

    /// Records a handled request: which endpoint, how long, what
    /// status went out. Exactly one call per written response keeps
    /// `sum(requests) == sum(responses)`.
    pub fn record_request(&self, endpoint: Endpoint, elapsed: Duration, status: u16) {
        self.requests[endpoint.idx()].fetch_add(1, Ordering::Relaxed);
        self.latency_us[endpoint.idx()].observe(elapsed.as_micros() as u64);
        let slot = STATUSES
            .iter()
            .position(|&s| s == status)
            .unwrap_or(STATUSES.len() - 1);
        self.responses[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the size of one `/batch` request.
    pub fn record_batch(&self, pairs: usize) {
        self.batch_pairs.fetch_add(pairs as u64, Ordering::Relaxed);
        self.batch_sizes.observe(pairs as u64);
    }

    /// Records a connection rejected at accept because the queue was
    /// full (the 429 path — no request is ever parsed).
    pub fn record_queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests handled on `endpoint`.
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.idx()].load(Ordering::Relaxed)
    }

    /// Responses written with `status`.
    pub fn responses_with_status(&self, status: u16) -> u64 {
        STATUSES
            .iter()
            .position(|&s| s == status)
            .map(|i| self.responses[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total requests across every endpoint.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total responses across every status.
    pub fn total_responses(&self) -> u64 {
        self.responses
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Connections rejected with 429 at accept time.
    pub fn queue_full_rejects(&self) -> u64 {
        self.rejected_queue_full.load(Ordering::Relaxed)
    }

    /// Renders the text exposition. `build_info` lines (index name,
    /// build phases, graph size) are appended verbatim by the server,
    /// which knows what it built.
    pub fn render(&self, build_info: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let _ = writeln!(
            out,
            "# reach-server metrics (latencies in microseconds, histogram bounds are powers of two)"
        );
        for ep in ENDPOINTS {
            let _ = writeln!(
                out,
                "reach_requests_total{{endpoint=\"{}\"}} {}",
                ep.as_str(),
                self.requests(ep)
            );
        }
        for (i, &status) in STATUSES.iter().enumerate() {
            let count = self.responses[i].load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let label = if status == 0 {
                "other".to_string()
            } else {
                status.to_string()
            };
            let _ = writeln!(out, "reach_responses_total{{status=\"{label}\"}} {count}");
        }
        for ep in ENDPOINTS {
            let h = &self.latency_us[ep.idx()];
            if h.count() == 0 {
                continue;
            }
            for (bound, cum) in h.cumulative() {
                let le = bound.map_or("+Inf".to_string(), |b| b.to_string());
                let _ = writeln!(
                    out,
                    "reach_request_latency_us_bucket{{endpoint=\"{}\",le=\"{le}\"}} {cum}",
                    ep.as_str()
                );
            }
            let _ = writeln!(
                out,
                "reach_request_latency_us_count{{endpoint=\"{}\"}} {}",
                ep.as_str(),
                h.count()
            );
            let _ = writeln!(
                out,
                "reach_request_latency_us_sum{{endpoint=\"{}\"}} {}",
                ep.as_str(),
                h.sum()
            );
            for (q, name) in [(0.5, "0.5"), (0.99, "0.99")] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(
                        out,
                        "reach_request_latency_us{{endpoint=\"{}\",quantile=\"{name}\"}} {v}",
                        ep.as_str()
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "reach_batch_pairs_total {}",
            self.batch_pairs.load(Ordering::Relaxed)
        );
        if self.batch_sizes.count() > 0 {
            for (bound, cum) in self.batch_sizes.cumulative() {
                let le = bound.map_or("+Inf".to_string(), |b| b.to_string());
                let _ = writeln!(out, "reach_batch_size_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "reach_batch_size_count {}", self.batch_sizes.count());
        }
        let _ = writeln!(
            out,
            "reach_rejected_total{{reason=\"queue_full\"}} {}",
            self.queue_full_rejects()
        );
        let _ = writeln!(
            out,
            "reach_connections_total {}",
            self.connections.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "reach_scratch_overflows_total {}",
            reach_graph::scratch_overflow_count()
        );
        out.push_str(build_info);
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1110);
        // samples ≤ bounds 1,2,4,4,128,1024 → p50 rank 3 lands in the ≤4 bucket
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(0.99), Some(1024));
        // huge values land in the overflow bucket but never panic
        h.observe(u64::MAX);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn bucket_index_is_smallest_upper_bound() {
        let h = Histogram::new();
        h.observe(1u64 << 63);
        let cum = h.cumulative();
        assert_eq!(cum[HIST_BUCKETS - 1].1, 1, "overflow bucket");
        assert_eq!(cum[HIST_BUCKETS - 2].1, 0);
    }

    #[test]
    fn counters_add_up_and_render() {
        let m = Metrics::new();
        m.record_request(Endpoint::Query, Duration::from_micros(10), 200);
        m.record_request(Endpoint::Query, Duration::from_micros(20), 400);
        m.record_request(Endpoint::Other, Duration::from_micros(5), 404);
        m.record_batch(64);
        m.record_queue_full();
        assert_eq!(m.requests(Endpoint::Query), 2);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_responses(), 3);
        assert_eq!(m.responses_with_status(200), 1);
        let text = m.render("reach_build_info{index=\"BFL\"} 1\n");
        assert!(text.contains("reach_requests_total{endpoint=\"query\"} 2"));
        assert!(text.contains("reach_responses_total{status=\"404\"} 1"));
        assert!(text.contains("reach_batch_pairs_total 64"));
        assert!(text.contains("reach_rejected_total{reason=\"queue_full\"} 1"));
        assert!(text.contains("reach_scratch_overflows_total"));
        assert!(text.contains("reach_build_info"));
    }
}
