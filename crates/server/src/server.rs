//! The threaded HTTP query service: a listener thread feeding a
//! bounded connection queue drained by a fixed worker pool.
//!
//! Admission control happens in three places, each returning a real
//! HTTP status instead of falling over:
//!
//! * **accept**: when the queue already holds `queue_capacity`
//!   connections the listener answers `429` and closes — workers never
//!   see the connection;
//! * **head**: header blocks over [`crate::http::MAX_HEAD_BYTES`] get
//!   `431`, bodies declared larger than `max_body_bytes` get `413`,
//!   both before any proportional allocation;
//! * **time**: per-socket read/write timeouts turn a stalled client
//!   into a `408` (or a dropped write) instead of a parked worker.
//!
//! Shutdown is a flag plus a drain: `shutdown()` (or
//! `POST /admin/shutdown`) stops the accept loop, then every queued
//! connection is served exactly one final response with
//! `Connection: close`, then workers exit and `join()` returns. A
//! request that was accepted is always answered in full.

use crate::http::{read_request, write_response, RecvError, Request};
use crate::metrics::{Endpoint, Metrics};
use reach_core::IndexService;
use reach_graph::{Label, LabelSet, VertexId};
use reach_labeled::LcrService;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Bound on connections waiting for a worker; beyond it, `429`.
    pub queue_capacity: usize,
    /// Per-socket read timeout (stalled request → `408`).
    pub read_timeout: Duration,
    /// Per-socket write timeout (stalled client → connection dropped).
    pub write_timeout: Duration,
    /// Admission cap on request bodies (`413` beyond it).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
        }
    }
}

/// The warm indexes a server answers from: a plain service (always)
/// and optionally an LCR service over the labeled variant of the same
/// graph.
pub struct Services {
    /// Plain reachability: `/query` and `/batch`.
    pub plain: Arc<IndexService>,
    /// Label-constrained reachability: `/lcr` (404 when absent).
    pub lcr: Option<Arc<LcrService>>,
}

impl Services {
    /// Build-report lines appended to the `/metrics` exposition.
    fn build_info(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let r = self.plain.report();
        let _ = writeln!(
            out,
            "reach_build_info{{index=\"{}\",n=\"{}\",m=\"{}\"}} 1",
            self.plain.name(),
            self.plain.num_vertices(),
            self.plain.num_edges()
        );
        for (phase, d) in [
            ("condense", r.condense),
            ("order", r.order),
            ("label", r.label),
            ("total", r.total),
        ] {
            let _ = writeln!(
                out,
                "reach_build_seconds{{phase=\"{phase}\"}} {:.6}",
                d.as_secs_f64()
            );
        }
        let _ = writeln!(out, "reach_index_bytes {}", r.size_bytes);
        let _ = writeln!(out, "reach_index_entries {}", r.size_entries);
        let _ = writeln!(out, "reach_engine_threads {}", self.plain.engine_threads());
        if let Some(lcr) = &self.lcr {
            let _ = writeln!(
                out,
                "reach_build_info{{index=\"{}\",kind=\"lcr\",n=\"{}\",labels=\"{}\"}} 1",
                lcr.name(),
                lcr.num_vertices(),
                lcr.num_labels()
            );
            let _ = writeln!(
                out,
                "reach_build_seconds{{phase=\"lcr_total\"}} {:.6}",
                lcr.build_time().as_secs_f64()
            );
        }
        out
    }
}

struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    services: Services,
    build_info: String,
    metrics: Metrics,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    not_empty: Condvar,
}

impl Shared {
    /// Locks the connection queue, recovering from poisoning: the
    /// queue holds plain `TcpStream`s with no invariant a mid-panic
    /// thread could have broken, so the remaining threads keep serving
    /// instead of cascading the panic through every lock site.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<TcpStream>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.not_empty.notify_all();
        // wake the accept loop so the listener thread observes the flag
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: its bound address, its metrics, and the handle to
/// stop it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live metrics for this instance.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Whether shutdown has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates graceful shutdown: stop accepting, drain the queue,
    /// answer every accepted request. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the listener and every worker to exit. Call
    /// [`ServerHandle::shutdown`] first (or hit `/admin/shutdown`) or
    /// this blocks until someone does.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds, spawns the listener and `cfg.workers` workers, and returns.
pub fn start(services: Services, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let build_info = services.build_info();
    let workers = cfg.workers.max(1);
    let shared = Arc::new(Shared {
        cfg,
        addr,
        services,
        build_info,
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
    });
    let mut threads = Vec::with_capacity(workers + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&shared, listener)));
    }
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    Ok(ServerHandle { shared, threads })
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // likely the wake-up connection from begin_shutdown; any
            // real late-comer gets a clean 503 instead of a hang
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
            let _ = write_response(&mut stream, 503, "shutting down\n", false);
            return;
        }
        shared.metrics.record_connection();
        let rejected = {
            let mut queue = shared.lock_queue();
            if queue.len() >= shared.cfg.queue_capacity {
                Some(stream)
            } else {
                queue.push_back(stream);
                shared.not_empty.notify_one();
                None
            }
        };
        if let Some(mut stream) = rejected {
            // admission control: reject at the door, don't park
            shared.metrics.record_queue_full();
            let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
            let _ = write_response(
                &mut stream,
                429,
                "server busy: connection queue full\n",
                false,
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match stream {
            Some(stream) => serve_connection(shared, stream),
            None => return,
        }
    }
}

/// Granularity at which an idle worker re-checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(25);

fn serve_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(reader_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_half);
    let mut stream = stream;
    loop {
        // Idle wait: poll for the first byte of the next request in
        // short slices so a blocked worker notices shutdown quickly.
        // `fill_buf` consumes nothing, so timing out here never
        // corrupts a request; once bytes arrive the full read timeout
        // governs the actual parse.
        let idle_deadline = Instant::now() + shared.cfg.read_timeout;
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        loop {
            use std::io::BufRead as _;
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF between requests
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return; // drain: idle connections just close
                    }
                    if Instant::now() >= idle_deadline {
                        let _ = write_response(&mut stream, 408, "request read timed out\n", false);
                        shared
                            .metrics
                            .record_request(Endpoint::Other, Duration::ZERO, 408);
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
        match read_request(&mut reader, shared.cfg.max_body_bytes) {
            Ok(req) => {
                let started = Instant::now();
                let (endpoint, status, body) = route(shared, &req);
                let keep = req.keep_alive
                    && endpoint != Endpoint::Shutdown
                    && !shared.shutdown.load(Ordering::SeqCst);
                let write = write_response(&mut stream, status, &body, keep);
                shared
                    .metrics
                    .record_request(endpoint, started.elapsed(), status);
                if write.is_err() || !keep {
                    return;
                }
            }
            Err(e) => {
                let (status, msg) = match e {
                    RecvError::Closed | RecvError::Io(_) => return,
                    RecvError::Timeout => (408, "request read timed out\n".to_string()),
                    RecvError::BodyTooLarge { declared, limit } => {
                        // drain a bounded amount of the oversized body
                        // so closing doesn't RST the client before it
                        // reads the 413 (unread data triggers a reset)
                        let drain = declared.min(256 * 1024) as u64;
                        let _ = std::io::copy(
                            &mut std::io::Read::take(&mut reader, drain),
                            &mut std::io::sink(),
                        );
                        (
                            413,
                            format!("body of {declared} bytes exceeds the {limit}-byte limit\n"),
                        )
                    }
                    RecvError::HeadTooLarge => (431, "header block too large\n".to_string()),
                    RecvError::Malformed(m) => (400, format!("bad request: {m}\n")),
                };
                let _ = write_response(&mut stream, status, &msg, false);
                shared
                    .metrics
                    .record_request(Endpoint::Other, Duration::ZERO, status);
                return;
            }
        }
    }
}

/// Routes one request; returns `(endpoint, status, body)`.
fn route(shared: &Shared, req: &Request) -> (Endpoint, u16, String) {
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => (Endpoint::Healthz, 200, "ok\n".into()),
        ("GET", "/metrics") => (
            Endpoint::Metrics,
            200,
            shared.metrics.render(&shared.build_info),
        ),
        ("POST", "/query") => match handle_query(shared, &req.body) {
            Ok(body) => (Endpoint::Query, 200, body),
            Err(msg) => (Endpoint::Query, 400, msg),
        },
        ("POST", "/batch") => match handle_batch(shared, &req.body) {
            Ok(body) => (Endpoint::Batch, 200, body),
            Err(msg) => (Endpoint::Batch, 400, msg),
        },
        ("POST", "/lcr") => match &shared.services.lcr {
            None => (
                Endpoint::Lcr,
                404,
                "no LCR index loaded (start with --lcr NAME over a labeled graph)\n".into(),
            ),
            Some(svc) => match handle_lcr(svc, &req.body) {
                Ok(body) => (Endpoint::Lcr, 200, body),
                Err(msg) => (Endpoint::Lcr, 400, msg),
            },
        },
        ("POST", "/admin/shutdown") => {
            shared.begin_shutdown();
            (Endpoint::Shutdown, 200, "draining\n".into())
        }
        (_, "/healthz" | "/metrics" | "/query" | "/batch" | "/lcr" | "/admin/shutdown") => (
            Endpoint::Other,
            405,
            format!("method {} not allowed on {path}\n", req.method),
        ),
        _ => (Endpoint::Other, 404, format!("no such endpoint {path}\n")),
    }
}

fn parse_vertex(tok: &str, n: usize) -> Result<VertexId, String> {
    let id: u32 = tok
        .parse()
        .map_err(|_| format!("bad vertex id {tok:?}\n"))?;
    if id as usize >= n {
        return Err(format!("vertex id {id} out of range (n = {n})\n"));
    }
    Ok(VertexId(id))
}

fn parse_pair(line: &str, n: usize) -> Result<(VertexId, VertexId), String> {
    let mut toks = line.split_whitespace();
    let (Some(s), Some(t), None) = (toks.next(), toks.next(), toks.next()) else {
        return Err(format!("expected \"<s> <t>\", got {line:?}\n"));
    };
    Ok((parse_vertex(s, n)?, parse_vertex(t, n)?))
}

fn handle_query(shared: &Shared, body: &str) -> Result<String, String> {
    let svc = &shared.services.plain;
    let (s, t) = parse_pair(body.trim(), svc.num_vertices())?;
    Ok(if svc.query(s, t) { "true\n" } else { "false\n" }.into())
}

fn handle_batch(shared: &Shared, body: &str) -> Result<String, String> {
    let svc = &shared.services.plain;
    let n = svc.num_vertices();
    let pairs: Vec<(VertexId, VertexId)> = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| parse_pair(l, n))
        .collect::<Result<_, _>>()?;
    if pairs.is_empty() {
        return Err("empty batch: send one \"<s> <t>\" pair per line\n".into());
    }
    shared.metrics.record_batch(pairs.len());
    let answers = svc.query_batch(&pairs);
    let mut out = String::with_capacity(6 * answers.len());
    for a in answers {
        out.push_str(if a { "true\n" } else { "false\n" });
    }
    Ok(out)
}

fn handle_lcr(svc: &LcrService, body: &str) -> Result<String, String> {
    let mut toks = body.split_whitespace();
    let (Some(s), Some(t), Some(labels), None) =
        (toks.next(), toks.next(), toks.next(), toks.next())
    else {
        return Err(format!(
            "expected \"<s> <t> <l1,l2,…|*>\", got {:?}\n",
            body.trim()
        ));
    };
    let n = svc.num_vertices();
    let (s, t) = (parse_vertex(s, n)?, parse_vertex(t, n)?);
    let k = svc.num_labels();
    let allowed = if labels == "*" {
        LabelSet::full(k)
    } else {
        let mut set = LabelSet(0);
        for tok in labels.split(',') {
            let l: u32 = tok.parse().map_err(|_| format!("bad label {tok:?}\n"))?;
            if l as usize >= k {
                return Err(format!("label {l} outside alphabet 0..{k}\n"));
            }
            let l = Label::try_new(l).map_err(|e| format!("{e}\n"))?;
            set = set.insert(l);
        }
        set
    };
    Ok(if svc.query(s, t, allowed) {
        "true\n"
    } else {
        "false\n"
    }
    .into())
}
