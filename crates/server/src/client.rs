//! A minimal blocking HTTP/1.1 client with keep-alive — just enough
//! to drive the server from the load generator, the integration tests,
//! and CI smoke checks without external dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Decoded body.
    pub body: String,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
}

/// A persistent connection to one server.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    open: bool,
}

impl Client {
    /// Connects with the given I/O timeouts.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            open: true,
        })
    }

    /// Whether the last response kept the connection alive.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Sends one request and reads the full response. After a
    /// `Connection: close` response the client must be reconnected.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        if !self.open {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection closed by a previous response",
            ));
        }
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nHost: reach\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(msg.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            self.open = false;
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a status line",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("EOF inside response headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
                } else if name.eq_ignore_ascii_case("connection") {
                    keep_alive = !value.eq_ignore_ascii_case("close");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8"))?;
        self.open = keep_alive;
        Ok(Response {
            status,
            body,
            keep_alive,
        })
    }
}

/// One-shot convenience: connect, send, read, close.
pub fn request_once(
    addr: impl ToSocketAddrs,
    timeout: Duration,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Response> {
    Client::connect(addr, timeout)?.request(method, path, body)
}
