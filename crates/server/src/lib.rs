//! # reach-server
//!
//! A threaded HTTP/1.1 query service over warm reachability indexes.
//!
//! The survey's headline economics — seconds to build an index, then
//! microseconds per query (§5) — only pay off when the index outlives
//! a single process invocation. This crate keeps the index warm behind
//! a long-lived service built entirely on `std::net`:
//!
//! * `POST /query` — one `<s> <t>` pair, answered `true`/`false`;
//! * `POST /batch` — newline-separated pairs, evaluated through
//!   `reach-core`'s sharded [`QueryEngine`](reach_core::QueryEngine);
//! * `POST /lcr` — one `<s> <t> <l1,l2,…|*>` label-constrained pair
//!   (when started with an LCR index);
//! * `GET /healthz`, `GET /metrics` — liveness and a text exposition
//!   of request counts, per-endpoint latency histograms, batch sizes,
//!   scratch-pool overflows, and the build report;
//! * `POST /admin/shutdown` — graceful drain.
//!
//! Architecture: one listener thread feeds a **bounded** connection
//! queue drained by a fixed worker pool; overload returns `429`/`413`
//! instead of falling over, and responses are byte-identical at every
//! worker count. See `DESIGN.md` §5d.

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod server;

pub use client::{request_once, Client, Response};
pub use metrics::{Endpoint, Histogram, Metrics};
pub use server::{start, ServerConfig, ServerHandle, Services};
