//! A minimal HTTP/1.1 implementation over `std::net` — the build
//! environment is offline, so the server carries exactly the subset of
//! the protocol it needs: request-line + headers + `Content-Length`
//! bodies in, fixed-length responses out, with keep-alive.
//!
//! Admission control lives here: header blocks are capped at
//! [`MAX_HEAD_BYTES`] (431 on overflow) and bodies at the configured
//! limit (413), both *before* any allocation proportional to the
//! declared size, so an abusive client cannot balloon the server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// Request path (`/query`, …), query strings not split off.
    pub path: String,
    /// Decoded body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why reading a request failed. Each variant maps to one response (or
/// to silently closing, for a clean EOF between requests).
#[derive(Debug)]
pub enum RecvError {
    /// Clean close: EOF before the first request byte.
    Closed,
    /// The socket read timed out mid-request (408).
    Timeout,
    /// Declared body exceeds the admission limit (413).
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// Header block exceeds [`MAX_HEAD_BYTES`] (431).
    HeadTooLarge,
    /// Anything else unparseable (400).
    Malformed(String),
    /// Transport error; the connection is dropped without a response.
    Io(std::io::Error),
}

impl From<std::io::Error> for RecvError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RecvError::Timeout,
            std::io::ErrorKind::UnexpectedEof => {
                RecvError::Malformed("connection closed mid-request".into())
            }
            _ => RecvError::Io(e),
        }
    }
}

/// Reads one request from the connection's buffered reader.
///
/// `max_body` is the admission-control cap: a `Content-Length` above
/// it fails *before* reading the body.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, RecvError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(RecvError::Closed);
    }
    let mut head_bytes = n;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("request line missing path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("request line missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(RecvError::Malformed("EOF inside header block".into()));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RecvError::HeadTooLarge);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RecvError::Malformed(format!("bad header line {header:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| RecvError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }

    if content_length > max_body {
        return Err(RecvError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| RecvError::Malformed("request body is not UTF-8".into()))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Canonical reason phrase for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one fixed-length plain-text response.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    // one buffer, one write: two small writes interact badly with
    // Nagle + delayed ACK (~40ms stalls per response)
    let mut msg = String::with_capacity(128 + body.len());
    use std::fmt::Write as _;
    let _ = write!(
        msg,
        "HTTP/1.1 {} {}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(msg.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Feeds `raw` to a loopback socket and parses it server-side.
    fn parse(raw: &str, max_body: usize) -> Result<Request, RecvError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let req = read_request(&mut reader, max_body);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\n3 901",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, "3 901");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n", 64).unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n", 64).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let err = parse(
            "POST /batch HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            1024,
        )
        .unwrap_err();
        match err {
            RecvError::BodyTooLarge { declared, limit } => {
                assert_eq!(declared, 999_999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_header_block_is_rejected() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse(&raw, 64).unwrap_err(),
            RecvError::HeadTooLarge
        ));
    }

    #[test]
    fn malformed_requests_are_malformed() {
        assert!(matches!(
            parse("\r\n", 64).unwrap_err(),
            RecvError::Malformed(_)
        ));
        assert!(matches!(
            parse("GET /\r\n\r\n", 64).unwrap_err(),
            RecvError::Malformed(_)
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n", 64).unwrap_err(),
            RecvError::Malformed(_)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: soon\r\n\r\n", 64).unwrap_err(),
            RecvError::Malformed(_)
        ));
        assert!(matches!(parse("", 64).unwrap_err(), RecvError::Closed));
    }
}
