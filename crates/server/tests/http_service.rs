//! End-to-end tests: a real server on an ephemeral port, driven by
//! real sockets — concurrent clients, malformed traffic, admission
//! control, metrics accounting, and graceful shutdown under load.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reach_core::{BuildOpts, IndexService};
use reach_graph::generators::random_digraph;
use reach_graph::{fixtures, LabelSet, PreparedGraph, VertexId};
use reach_labeled::LcrService;
use reach_server::{request_once, start, Client, Endpoint, ServerConfig, Services};
use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn plain_service(n: u32, m: usize, seed: u64) -> Arc<IndexService> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = Arc::new(random_digraph(n as usize, m, &mut rng));
    let prepared = PreparedGraph::new_shared(g);
    Arc::new(IndexService::build("BFL", prepared, &BuildOpts::default(), 2).unwrap())
}

fn lcr_service() -> Arc<LcrService> {
    Arc::new(
        LcrService::build(
            "Landmark index",
            Arc::new(fixtures::figure1b()),
            &BuildOpts::default(),
        )
        .unwrap(),
    )
}

fn test_config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        ..ServerConfig::default()
    }
}

#[test]
fn concurrent_clients_match_direct_queries_and_metrics_add_up() {
    let svc = plain_service(400, 1600, 11);
    let handle = start(
        Services {
            plain: Arc::clone(&svc),
            lcr: Some(lcr_service()),
        },
        test_config(4),
    )
    .unwrap();
    let addr = handle.addr();

    const CLIENTS: usize = 6;
    const QUERIES_PER_CLIENT: usize = 40;
    let mismatches = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let svc = Arc::clone(&svc);
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(1000 + c as u64);
                let mut client = Client::connect(addr, TIMEOUT).unwrap();
                let mut bad = 0;
                for _ in 0..QUERIES_PER_CLIENT {
                    let s = VertexId(rng.random_range(0..400));
                    let t = VertexId(rng.random_range(0..400));
                    let resp = client
                        .request("POST", "/query", &format!("{} {}", s.0, t.0))
                        .unwrap();
                    let expect = if svc.query(s, t) { "true\n" } else { "false\n" };
                    if resp.status != 200 || resp.body != expect {
                        bad += 1;
                    }
                }
                bad
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
    });
    assert_eq!(mismatches, 0, "every HTTP answer must match the index");

    // a batch must agree with the engine's batch evaluation
    let mut rng = SmallRng::seed_from_u64(77);
    let pairs: Vec<(VertexId, VertexId)> = (0..100)
        .map(|_| {
            (
                VertexId(rng.random_range(0..400)),
                VertexId(rng.random_range(0..400)),
            )
        })
        .collect();
    let body: String = pairs
        .iter()
        .map(|(s, t)| format!("{} {}\n", s.0, t.0))
        .collect();
    let resp = request_once(addr, TIMEOUT, "POST", "/batch", &body).unwrap();
    assert_eq!(resp.status, 200);
    let expect: String = svc
        .query_batch(&pairs)
        .into_iter()
        .map(|a| if a { "true\n" } else { "false\n" })
        .collect();
    assert_eq!(resp.body, expect);

    // LCR endpoint answers like the direct index
    let lcr = lcr_service();
    let no_works_for = LabelSet::from_labels([fixtures::FRIEND_OF, fixtures::FOLLOWS]);
    let resp = request_once(
        addr,
        TIMEOUT,
        "POST",
        "/lcr",
        &format!("{} {} 0,1", fixtures::A.0, fixtures::G.0),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    let expect = lcr.query(fixtures::A, fixtures::G, no_works_for);
    assert_eq!(resp.body.trim() == "true", expect);
    let resp = request_once(
        addr,
        TIMEOUT,
        "POST",
        "/lcr",
        &format!("{} {} *", fixtures::A.0, fixtures::G.0),
    )
    .unwrap();
    assert_eq!(resp.body, "true\n");

    // malformed traffic gets 4xx, never a hang or a crash
    for (method, path, body, status) in [
        ("POST", "/query", "1", 400),
        ("POST", "/query", "1 2 3", 400),
        ("POST", "/query", "1 99999", 400),
        ("POST", "/query", "x y", 400),
        ("POST", "/batch", "", 400),
        ("POST", "/lcr", "0 1 9", 400),
        ("POST", "/lcr", "0 1", 400),
        ("GET", "/nope", "", 404),
        ("GET", "/query", "", 405),
        ("POST", "/healthz", "", 405),
    ] {
        let resp = request_once(addr, TIMEOUT, method, path, body).unwrap();
        assert_eq!(resp.status, status, "{method} {path} {body:?}");
    }

    assert_eq!(
        request_once(addr, TIMEOUT, "GET", "/healthz", "")
            .unwrap()
            .body,
        "ok\n"
    );

    // metrics accounting: fetch /metrics and cross-check the counters
    // (give workers a moment to finish recording the last responses —
    // a response reaches the client just before its counters bump)
    std::thread::sleep(Duration::from_millis(200));
    let m = handle.metrics();
    let queries_sent = (CLIENTS * QUERIES_PER_CLIENT) as u64 + 4; // + the 4 malformed /query
    assert_eq!(m.requests(Endpoint::Query), queries_sent);
    assert_eq!(m.requests(Endpoint::Batch), 2); // one good, one empty
    assert_eq!(m.requests(Endpoint::Lcr), 4);
    assert_eq!(
        m.total_requests(),
        m.total_responses(),
        "every request gets one response"
    );

    let text = request_once(addr, TIMEOUT, "GET", "/metrics", "")
        .unwrap()
        .body;
    std::thread::sleep(Duration::from_millis(100));
    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
    };
    assert_eq!(
        metric("reach_requests_total{endpoint=\"query\"}"),
        queries_sent
    );
    assert_eq!(metric("reach_batch_pairs_total"), 100);
    assert!(metric("reach_request_latency_us_count{endpoint=\"query\"}") == queries_sent);
    assert!(text.contains("reach_build_info{index=\"BFL\""));
    assert!(text.contains("reach_scratch_overflows_total"));
    // the exposition's own request is in flight while it renders, so
    // re-read the totals invariant afterwards
    assert_eq!(m.total_requests(), m.total_responses());

    handle.shutdown_and_join();
}

#[test]
fn responses_are_byte_identical_at_every_worker_count() {
    let svc = plain_service(200, 700, 5);
    let mut rng = SmallRng::seed_from_u64(42);
    let requests: Vec<(String, String)> = (0..60)
        .map(|i| {
            if i % 10 == 0 {
                let body: String = (0..8)
                    .map(|_| {
                        format!(
                            "{} {}\n",
                            rng.random_range(0..200u32),
                            rng.random_range(0..200u32)
                        )
                    })
                    .collect();
                ("/batch".to_string(), body)
            } else {
                (
                    "/query".to_string(),
                    format!(
                        "{} {}",
                        rng.random_range(0..200u32),
                        rng.random_range(0..200u32)
                    ),
                )
            }
        })
        .collect();

    let mut transcripts = Vec::new();
    for workers in [1, 4] {
        let handle = start(
            Services {
                plain: Arc::clone(&svc),
                lcr: None,
            },
            test_config(workers),
        )
        .unwrap();
        let mut client = Client::connect(handle.addr(), TIMEOUT).unwrap();
        let mut transcript = String::new();
        for (path, body) in &requests {
            let resp = client.request("POST", path, body).unwrap();
            assert_eq!(resp.status, 200);
            transcript.push_str(&resp.body);
        }
        transcripts.push(transcript);
        handle.shutdown_and_join();
    }
    assert_eq!(transcripts[0], transcripts[1]);
}

#[test]
fn admission_control_rejects_oversize_and_queue_overflow() {
    let svc = plain_service(50, 120, 9);
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        max_body_bytes: 256,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let handle = start(
        Services {
            plain: svc,
            lcr: None,
        },
        cfg,
    )
    .unwrap();
    let addr = handle.addr();

    // 413: declared body over the cap, rejected before it is read
    let big = "0 1\n".repeat(500);
    let resp = request_once(addr, TIMEOUT, "POST", "/batch", &big).unwrap();
    assert_eq!(resp.status, 413);
    assert!(resp.body.contains("256-byte limit"), "{}", resp.body);

    // occupy the single worker with a silent connection, fill the
    // 1-slot queue with a second, then the third must be turned away
    let worker_hog = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let it reach a worker
    let _queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // let it be enqueued
    let mut rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut raw = String::new();
    rejected.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 429"), "expected 429, got {raw:?}");
    assert!(handle.metrics().queue_full_rejects() >= 1);

    // the hogged worker times the silent connection out with a 408
    let mut hog = worker_hog;
    hog.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut raw = String::new();
    hog.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 408"), "expected 408, got {raw:?}");

    handle.shutdown_and_join();
}

#[test]
fn graceful_shutdown_drains_in_flight_load() {
    let svc = plain_service(300, 1000, 21);
    let handle = start(
        Services {
            plain: Arc::clone(&svc),
            lcr: None,
        },
        test_config(3),
    )
    .unwrap();
    let addr = handle.addr();

    // clients hammer the server; after a warm-up, shutdown fires
    let results = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..4u64 {
            clients.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(900 + c);
                let mut completed = 0u32;
                let mut truncated = 0u32;
                'outer: loop {
                    let Ok(mut client) = Client::connect(addr, TIMEOUT) else {
                        break; // accept loop is gone: clean refusal
                    };
                    loop {
                        let body =
                            format!("{} {}", rng.random_range(0..300), rng.random_range(0..300));
                        match client.request("POST", "/query", &body) {
                            Ok(resp) => {
                                // an accepted request must be answered
                                // completely and correctly
                                if resp.status == 200
                                    && (resp.body == "true\n" || resp.body == "false\n")
                                {
                                    completed += 1;
                                } else if resp.status == 503 {
                                    break 'outer; // turned away at the door
                                } else {
                                    truncated += 1;
                                }
                                if !resp.keep_alive {
                                    break; // server is draining this conn
                                }
                            }
                            Err(_) => break 'outer, // closed between requests
                        }
                        if completed > 5000 {
                            break 'outer; // safety valve
                        }
                    }
                }
                (completed, truncated)
            }));
        }
        // let the load build, then pull the plug mid-flight
        std::thread::sleep(Duration::from_millis(300));
        handle.shutdown();
        clients
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    let total_completed: u32 = results.iter().map(|r| r.0).sum();
    let total_truncated: u32 = results.iter().map(|r| r.1).sum();
    assert!(total_completed > 0, "some requests must finish pre-drain");
    assert_eq!(total_truncated, 0, "no accepted request may be truncated");

    handle.join();
    // after join, the port no longer accepts (or resets immediately)
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = String::new();
            s.read_to_string(&mut buf).is_err() || buf.is_empty()
        }
    };
    assert!(refused, "server must be gone after shutdown_and_join");
}

#[test]
fn shutdown_endpoint_drains_the_server() {
    let svc = plain_service(60, 150, 3);
    let handle = start(
        Services {
            plain: svc,
            lcr: None,
        },
        test_config(2),
    )
    .unwrap();
    let addr = handle.addr();
    let resp = request_once(addr, TIMEOUT, "POST", "/query", "0 59").unwrap();
    assert_eq!(resp.status, 200);
    let resp = request_once(addr, TIMEOUT, "POST", "/admin/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(!resp.keep_alive, "shutdown response closes the connection");
    assert!(handle.is_shutting_down());
    handle.join();
}

#[test]
fn lcr_without_index_is_a_clean_404() {
    let svc = plain_service(40, 100, 2);
    let handle = start(
        Services {
            plain: svc,
            lcr: None,
        },
        test_config(1),
    )
    .unwrap();
    let resp = request_once(handle.addr(), TIMEOUT, "POST", "/lcr", "0 1 *").unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("--lcr"));
    handle.shutdown_and_join();
}
