//! # reach-cli
//!
//! The `reach` command-line tool: generate workloads, inspect graphs,
//! build any index from the survey's Tables 1 and 2, and answer plain
//! or path-constrained reachability queries from the shell.
//!
//! ```text
//! reach gen sparse-dag 1000 --out g.el            # generate a workload
//! reach gen cyclic 500 --labels 4 --out lg.el     # labeled variant
//! reach stats g.el                                # structural summary
//! reach indexes                                   # list techniques
//! reach query g.el --index BFL 0 999 5 7          # plain queries
//! reach lcr lg.el --index P2H+ --constraint "(0|2)*" 3 77
//! reach bench g.el --index GRAIL --index PLL --queries 2000
//! ```
//!
//! The library surface exists so tests can drive every command
//! in-process; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]

use reach_bench::queries::query_mix;
use reach_bench::registry::{
    build_lcr, build_plain_with_report, lcr_names, plain_feasible, plain_names, plain_native_meta,
    BuildOpts,
};
use reach_bench::report::{fmt_build_report, fmt_bytes, fmt_duration, timed, Table};
use reach_bench::workloads::{Shape, ALL_SHAPES};
use reach_graph::{io, DiGraph, GraphError, LabeledGraph, PreparedGraph, VertexId};
use reach_labeled::rlc::RlcIndex;
use reach_labeled::{ConstraintKind, RlcIndexApi};
use std::fmt;
use std::io::Write;
use std::sync::Arc;

/// A CLI-level error. Every variant renders a complete, user-facing
/// message through `Display` (no `Debug` formatting anywhere on the
/// error path) and chains its cause through `Error::source`, so CLI
/// and server code compose errors with `?`.
#[derive(Debug)]
pub enum CliError {
    /// Wrong arguments, unknown names, out-of-range values.
    Usage(String),
    /// Reading or writing a user-named file failed.
    File {
        /// The file the user named.
        path: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A graph file failed to parse; the [`GraphError`] carries the
    /// 1-based line number of the offending edge line.
    Graph {
        /// The file the user named.
        path: String,
        /// What went wrong, and where.
        source: GraphError,
    },
    /// Output-stream or server transport failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::File { path, source } => write!(f, "{path}: {source}"),
            CliError::Graph { path, source } => write!(f, "{path}: {source}"),
            CliError::Io(source) => write!(f, "I/O error: {source}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::File { source, .. } => Some(source),
            CliError::Graph { source, .. } => Some(source),
            CliError::Io(source) => Some(source),
        }
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// A loaded graph file: plain or labeled, detected from the header.
pub enum LoadedGraph {
    /// A plain digraph (header: `<n>`).
    Plain(Arc<DiGraph>),
    /// An edge-labeled digraph (header: `<n> <k>`).
    Labeled(Arc<LabeledGraph>),
}

/// Loads an edge-list file, detecting the labeled variant from the
/// two-token header. Errors name the offending path, and parse errors
/// additionally carry the 1-based line number of the bad edge line.
pub fn load_graph(path: &str) -> Result<LoadedGraph, CliError> {
    let file_err = |source| CliError::File {
        path: path.to_string(),
        source,
    };
    let graph_err = |source| CliError::Graph {
        path: path.to_string(),
        source,
    };
    let text = std::fs::read_to_string(path).map_err(file_err)?;
    let header = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .ok_or_else(|| err(format!("{path}: empty edge-list file")))?;
    let labeled = header.split_whitespace().count() == 2;
    if labeled {
        Ok(LoadedGraph::Labeled(Arc::new(
            io::read_labeled(&text).map_err(graph_err)?,
        )))
    } else {
        Ok(LoadedGraph::Plain(Arc::new(
            io::read_digraph(&text).map_err(graph_err)?,
        )))
    }
}

/// Entry point shared by the binary and the tests.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => cmd_help(out),
        Some("gen") => cmd_gen(&args[1..], out),
        Some("stats") => cmd_stats(&args[1..], out),
        Some("indexes") => cmd_indexes(out),
        Some("query") => cmd_query(&args[1..], out),
        Some("lcr") => cmd_lcr(&args[1..], out),
        Some("witness") => cmd_witness(&args[1..], out),
        Some("bench") => cmd_bench(&args[1..], out),
        Some("verify") => cmd_verify(&args[1..], out),
        Some("serve") => cmd_serve(&args[1..], out),
        Some(other) => Err(err(format!("unknown command {other:?}"))),
    }
}

/// Renders a witness path as `v -label-> v -label-> v`.
fn render_witness(w: &reach_labeled::Witness) -> String {
    if w.is_empty() {
        return format!("{} (empty path)", w.vertices[0]);
    }
    let mut s = w.vertices[0].to_string();
    for (i, l) in w.labels.iter().enumerate() {
        s.push_str(&format!(" -{}-> {}", l, w.vertices[i + 1]));
    }
    s
}

fn cmd_witness(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use reach_labeled::witness::{lcr_witness, rlc_witness, rpq_witness};
    let flags = parse_flags(args)?;
    let (path, pairs_tokens) = flags
        .rest
        .split_first()
        .ok_or_else(|| err("usage: witness <labeled-graph> --constraint EXPR <s> <t> [...]"))?;
    let LoadedGraph::Labeled(g) = load_graph(path)? else {
        return Err(err(format!(
            "{path} is a plain graph; witness needs a labeled one"
        )));
    };
    let expr = flags.constraint.as_deref().unwrap_or("");
    let alphabet: Vec<&str> = flags.alphabet.iter().map(String::as_str).collect();
    let pairs = parse_pairs(pairs_tokens, g.num_vertices())?;
    for (s, t) in pairs {
        let witness = if expr.is_empty() {
            reach_labeled::witness::plain_witness(&g, s, t)
        } else {
            let ast = reach_labeled::parse(expr, &alphabet).map_err(|e| err(e.to_string()))?;
            match ast.classify() {
                ConstraintKind::Alternation(allowed) => lcr_witness(&g, s, t, allowed),
                ConstraintKind::Concatenation(unit) => rlc_witness(&g, s, t, &unit),
                ConstraintKind::General => {
                    rpq_witness(&g, s, t, &reach_labeled::Nfa::compile(&ast))
                }
            }
        };
        match witness {
            Some(w) => writeln!(out, "{s} ⇝ {t}: {}", render_witness(&w))?,
            None => writeln!(out, "{s} ⇝ {t}: unreachable")?,
        }
    }
    Ok(())
}

fn cmd_help(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(
        out,
        "reach — reachability indexes on graphs (SIGMOD'23 survey implementation)\n\
         \n\
         commands:\n\
         \x20 gen <shape> <n> [--seed S] [--labels K] [--out FILE]   generate a workload\n\
         \x20 stats <graph>                                          structural summary\n\
         \x20 indexes                                                list techniques (Table 1 & 2)\n\
         \x20 query <graph> --index NAME <s> <t> [<s> <t> ...]       plain reachability\n\
         \x20 query <graph> --index NAME --batch FILE [--threads N]  batch evaluation\n\
         \x20 lcr <graph> --index NAME --constraint EXPR <s> <t>     path-constrained reachability\n\
         \x20 witness <graph> [--constraint EXPR] <s> <t>            show an explaining path\n\
         \x20 bench <graph> [--index NAME ...] [--queries N] [--positive P]\n\
         \x20 verify <graph> (--index NAME ...|--all) [--queries N] [--seed S]\n\
         \x20        audit index invariants against the BFS ground truth\n\
         \x20 serve <graph> [--index NAME] [--lcr NAME] [--port N] [--workers K]\n\
         \x20       [--threads N] [--port-file FILE]                 HTTP query service\n\
         \n\
         shapes: {}\n\
         constraint syntax: l | a·b (or a.b) | a∪b (or a|b) | a* | a+ | (...)\n\
         labels in constraints: numeric (0,1,2,…) or --alphabet name,name,…",
        ALL_SHAPES.map(|s| s.name()).join(", ")
    )?;
    Ok(())
}

fn parse_shape(name: &str) -> Result<Shape, CliError> {
    ALL_SHAPES
        .into_iter()
        .find(|s| s.name() == name)
        .ok_or_else(|| {
            err(format!(
                "unknown shape {name:?} (expected one of: {})",
                ALL_SHAPES.map(|s| s.name()).join(", ")
            ))
        })
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| err(format!("invalid {what}: {s:?}")))
}

fn cmd_gen(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut pos = Vec::new();
    let mut seed = 42u64;
    let mut labels: Option<usize> = None;
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = parse_num(
                    args.get(i).ok_or_else(|| err("--seed needs a value"))?,
                    "seed",
                )?;
            }
            "--labels" => {
                i += 1;
                labels = Some(parse_num(
                    args.get(i).ok_or_else(|| err("--labels needs a value"))?,
                    "label count",
                )?);
            }
            "--out" => {
                i += 1;
                path = Some(
                    args.get(i)
                        .ok_or_else(|| err("--out needs a value"))?
                        .clone(),
                );
            }
            other => pos.push(other.to_string()),
        }
        i += 1;
    }
    let [shape, n] = pos.as_slice() else {
        return Err(err(
            "usage: gen <shape> <n> [--seed S] [--labels K] [--out FILE]",
        ));
    };
    let shape = parse_shape(shape)?;
    let n: usize = parse_num(n, "vertex count")?;
    if n < 2 {
        return Err(err("vertex count must be at least 2"));
    }
    if labels == Some(0) || labels.is_some_and(|k| k > 64) {
        return Err(err("label count must be between 1 and 64"));
    }
    let text = match labels {
        Some(k) => io::write_labeled(&shape.generate_labeled(n, k, seed)),
        None => io::write_digraph(&shape.generate(n, seed)),
    };
    match path {
        Some(p) => {
            std::fs::write(&p, &text).map_err(|source| CliError::File {
                path: p.clone(),
                source,
            })?;
            writeln!(out, "wrote {} ({} lines)", p, text.lines().count())?;
        }
        None => out.write_all(text.as_bytes())?,
    }
    Ok(())
}

fn cmd_stats(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let [path] = args else {
        return Err(err("usage: stats <graph-file>"));
    };
    let (g, labels) = match load_graph(path)? {
        LoadedGraph::Plain(g) => (g, None),
        LoadedGraph::Labeled(lg) => (Arc::new(lg.to_digraph()), Some(lg.num_labels())),
    };
    let prepared = PreparedGraph::new_shared(g);
    let s = prepared.stats();
    writeln!(out, "{path}:")?;
    writeln!(out, "  vertices        {}", s.num_vertices)?;
    writeln!(out, "  edges           {}", s.num_edges)?;
    if let Some(k) = labels {
        writeln!(out, "  label alphabet  {k}")?;
    }
    writeln!(out, "  avg degree      {:.2}", s.avg_degree)?;
    writeln!(out, "  max degree      {}", s.max_degree)?;
    writeln!(
        out,
        "  SCCs            {} (largest {})",
        s.num_sccs, s.largest_scc
    )?;
    match s.depth {
        Some(d) => writeln!(out, "  depth (DAG)     {d}")?,
        None => writeln!(
            out,
            "  depth           cyclic (condense first for DAG indexes)"
        )?,
    }
    writeln!(out, "  sources/sinks   {}/{}", s.num_sources, s.num_sinks)?;
    Ok(())
}

fn cmd_indexes(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "plain reachability indexes (Table 1):")?;
    for name in plain_names() {
        if name.starts_with("online") {
            continue;
        }
        let m = plain_native_meta(name);
        writeln!(
            out,
            "  {:<14} {:?} / {:?} / {:?} input / {:?}",
            m.name, m.framework, m.completeness, m.input, m.dynamism
        )?;
    }
    writeln!(
        out,
        "\npath-constrained indexes (Table 2): {}",
        lcr_names().join(", ")
    )?;
    writeln!(out, "  plus: RLC index (concatenation constraints)")?;
    writeln!(
        out,
        "\nonline baselines: online-BFS, online-DFS, online-BiBFS"
    )?;
    Ok(())
}

struct Flags {
    indexes: Vec<String>,
    constraint: Option<String>,
    alphabet: Vec<String>,
    queries: usize,
    positive: f64,
    batch: Option<String>,
    threads: usize,
    all: bool,
    seed: Option<u64>,
    rest: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut f = Flags {
        indexes: Vec::new(),
        constraint: None,
        alphabet: Vec::new(),
        queries: 1000,
        positive: 0.5,
        batch: None,
        threads: 1,
        all: false,
        seed: None,
        rest: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--index" => {
                i += 1;
                f.indexes.push(
                    args.get(i)
                        .ok_or_else(|| err("--index needs a value"))?
                        .clone(),
                );
            }
            "--constraint" => {
                i += 1;
                f.constraint = Some(
                    args.get(i)
                        .ok_or_else(|| err("--constraint needs a value"))?
                        .clone(),
                );
            }
            "--alphabet" => {
                i += 1;
                f.alphabet = args
                    .get(i)
                    .ok_or_else(|| err("--alphabet needs a value"))?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--queries" => {
                i += 1;
                f.queries = parse_num(
                    args.get(i).ok_or_else(|| err("--queries needs a value"))?,
                    "query count",
                )?;
            }
            "--positive" => {
                i += 1;
                f.positive = parse_num(
                    args.get(i).ok_or_else(|| err("--positive needs a value"))?,
                    "positive share",
                )?;
            }
            "--batch" => {
                i += 1;
                f.batch = Some(
                    args.get(i)
                        .ok_or_else(|| err("--batch needs a file"))?
                        .clone(),
                );
            }
            "--all" => f.all = true,
            "--seed" => {
                i += 1;
                f.seed = Some(parse_num(
                    args.get(i).ok_or_else(|| err("--seed needs a value"))?,
                    "seed",
                )?);
            }
            "--threads" => {
                i += 1;
                f.threads = parse_num(
                    args.get(i).ok_or_else(|| err("--threads needs a value"))?,
                    "thread count",
                )?;
                if f.threads == 0 {
                    return Err(err("thread count must be at least 1"));
                }
            }
            other => f.rest.push(other.to_string()),
        }
        i += 1;
    }
    Ok(f)
}

fn parse_pairs(tokens: &[String], n: usize) -> Result<Vec<(VertexId, VertexId)>, CliError> {
    if tokens.is_empty() || !tokens.len().is_multiple_of(2) {
        return Err(err("queries come as <s> <t> pairs"));
    }
    tokens
        .chunks(2)
        .map(|pair| {
            let s: u32 = parse_num(&pair[0], "vertex id")?;
            let t: u32 = parse_num(&pair[1], "vertex id")?;
            if s as usize >= n || t as usize >= n {
                return Err(err(format!("vertex id out of range (n = {n})")));
            }
            Ok((VertexId(s), VertexId(t)))
        })
        .collect()
}

/// Reads a batch file of `<s> <t>` lines (blank lines and `#` comments
/// skipped) into query pairs.
fn read_batch_file(path: &str, n: usize) -> Result<Vec<(VertexId, VertexId)>, CliError> {
    let text = std::fs::read_to_string(path).map_err(|source| CliError::File {
        path: path.to_string(),
        source,
    })?;
    let tokens: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .flat_map(|l| l.split_whitespace().map(str::to_string))
        .collect();
    if tokens.is_empty() {
        return Err(err(format!("{path}: no query pairs")));
    }
    parse_pairs(&tokens, n)
}

fn cmd_query(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let (path, pairs_tokens) = flags
        .rest
        .split_first()
        .ok_or_else(|| err("usage: query <graph> --index NAME <s> <t> [...]"))?;
    let g = match load_graph(path)? {
        LoadedGraph::Plain(g) => g,
        LoadedGraph::Labeled(lg) => Arc::new(lg.to_digraph()),
    };
    let name = flags.indexes.first().map(String::as_str).unwrap_or("BFL");
    if !plain_names().contains(&name) {
        return Err(err(format!(
            "unknown plain index {name:?} (see `reach indexes`)"
        )));
    }
    let pairs = match &flags.batch {
        Some(file) => {
            if !pairs_tokens.is_empty() {
                return Err(err("--batch replaces inline <s> <t> pairs"));
            }
            read_batch_file(file, g.num_vertices())?
        }
        None => parse_pairs(pairs_tokens, g.num_vertices())?,
    };
    let prepared = PreparedGraph::new_shared(g);
    let (idx, report) = build_plain_with_report(name, &prepared, &BuildOpts::default());
    writeln!(out, "built {}", fmt_build_report(&report))?;
    if flags.batch.is_some() {
        let engine = reach_core::QueryEngine::new(flags.threads);
        let (answers, elapsed) = timed(|| engine.run(idx.as_ref(), &pairs));
        for (&(s, t), answer) in pairs.iter().zip(&answers) {
            writeln!(out, "Qr({s}, {t}) = {answer}")?;
        }
        let qps = pairs.len() as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        writeln!(
            out,
            "batch: {} queries on {} thread(s) in {} ({:.0} queries/s)",
            pairs.len(),
            engine.threads(),
            fmt_duration(elapsed),
            qps
        )?;
    } else {
        for (s, t) in pairs {
            let (answer, t_q) = timed(|| idx.query(s, t));
            writeln!(out, "Qr({s}, {t}) = {answer}   [{}]", fmt_duration(t_q))?;
        }
    }
    Ok(())
}

fn cmd_lcr(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let (path, pairs_tokens) = flags
        .rest
        .split_first()
        .ok_or_else(|| err("usage: lcr <graph> --index NAME --constraint EXPR <s> <t> [...]"))?;
    let LoadedGraph::Labeled(g) = load_graph(path)? else {
        return Err(err(format!(
            "{path} is a plain graph; lcr needs a labeled one"
        )));
    };
    let expr = flags
        .constraint
        .as_deref()
        .ok_or_else(|| err("lcr requires --constraint"))?;
    let alphabet: Vec<&str> = flags.alphabet.iter().map(String::as_str).collect();
    let ast = reach_labeled::parse(expr, &alphabet).map_err(|e| err(e.to_string()))?;
    let pairs = parse_pairs(pairs_tokens, g.num_vertices())?;

    match ast.classify() {
        ConstraintKind::Alternation(allowed) => {
            let name = flags.indexes.first().map(String::as_str).unwrap_or("P2H+");
            if !lcr_names().contains(&name) {
                return Err(err(format!("unknown LCR index {name:?}")));
            }
            let (idx, build) = timed(|| build_lcr(name, &g));
            writeln!(
                out,
                "constraint is an alternation {allowed:?}; built {name} in {}",
                fmt_duration(build)
            )?;
            for (s, t) in pairs {
                writeln!(out, "Qr({s}, {t}, {expr}) = {}", idx.query(s, t, allowed))?;
            }
        }
        ConstraintKind::Concatenation(unit) => {
            let (idx, build) = timed(|| RlcIndex::build(&g, unit.len()));
            writeln!(
                out,
                "constraint is a concatenation of length {}; built RLC index in {}",
                unit.len(),
                fmt_duration(build)
            )?;
            for (s, t) in pairs {
                let answer = idx
                    .try_query(s, t, &unit)
                    .expect("index built for this unit length");
                writeln!(out, "Qr({s}, {t}, {expr}) = {answer}")?;
            }
        }
        ConstraintKind::General => {
            let nfa = reach_labeled::Nfa::compile(&ast);
            writeln!(
                out,
                "constraint is outside the indexable fragments (§5 open challenge); \
                 using automaton-guided traversal ({} NFA states)",
                nfa.num_states()
            )?;
            for (s, t) in pairs {
                let answer = reach_labeled::online::rpq_bfs(&g, s, t, &nfa);
                writeln!(out, "Qr({s}, {t}, {expr}) = {answer}")?;
            }
        }
    }
    Ok(())
}

/// `serve <graph> [--index NAME] [--lcr NAME] [--port N] [--workers K]
/// [--threads N] [--queue N] [--port-file FILE]`
///
/// Builds the chosen indexes once, then serves them over HTTP until a
/// `POST /admin/shutdown` drains the worker pool. `--port 0` binds an
/// ephemeral port; `--port-file` writes the bound address to a file so
/// scripts (and CI) can discover it.
fn cmd_serve(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use reach_core::IndexService;
    use reach_labeled::LcrService;
    use reach_server::{ServerConfig, Services};

    let mut graph_path: Option<String> = None;
    let mut index = "BFL".to_string();
    let mut lcr: Option<String> = None;
    let mut port: u16 = 7878;
    let mut port_file: Option<String> = None;
    let mut cfg = ServerConfig::default();
    let mut threads = 1usize;
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, CliError> {
        args.get(i)
            .cloned()
            .ok_or_else(|| err(format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--index" => {
                i += 1;
                index = value(args, i, "--index")?;
            }
            "--lcr" => {
                i += 1;
                lcr = Some(value(args, i, "--lcr")?);
            }
            "--port" => {
                i += 1;
                port = parse_num(&value(args, i, "--port")?, "port")?;
            }
            "--workers" => {
                i += 1;
                cfg.workers = parse_num(&value(args, i, "--workers")?, "worker count")?;
                if cfg.workers == 0 {
                    return Err(err("worker count must be at least 1"));
                }
            }
            "--threads" => {
                i += 1;
                threads = parse_num(&value(args, i, "--threads")?, "thread count")?;
                if threads == 0 {
                    return Err(err("thread count must be at least 1"));
                }
            }
            "--queue" => {
                i += 1;
                cfg.queue_capacity = parse_num(&value(args, i, "--queue")?, "queue capacity")?;
            }
            "--port-file" => {
                i += 1;
                port_file = Some(value(args, i, "--port-file")?);
            }
            other if graph_path.is_none() && !other.starts_with('-') => {
                graph_path = Some(other.to_string());
            }
            other => return Err(err(format!("unknown serve flag {other:?}"))),
        }
        i += 1;
    }
    let path = graph_path.ok_or_else(|| err("usage: serve <graph> [--index NAME] [--lcr NAME]"))?;

    let (g, labeled) = match load_graph(&path)? {
        LoadedGraph::Plain(g) => (g, None),
        LoadedGraph::Labeled(lg) => (Arc::new(lg.to_digraph()), Some(lg)),
    };
    let prepared = PreparedGraph::new_shared(g);
    let plain = Arc::new(
        IndexService::build(&index, prepared, &BuildOpts::default(), threads)
            .map_err(|e| err(format!("{e} (see `reach indexes`)")))?,
    );
    writeln!(out, "built {}", fmt_build_report(plain.report()))?;
    let lcr = match lcr {
        None => None,
        Some(name) => {
            let Some(lg) = labeled else {
                return Err(err(format!(
                    "{path} is a plain graph; --lcr needs a labeled one"
                )));
            };
            let svc = Arc::new(
                LcrService::build(&name, lg, &BuildOpts::default())
                    .map_err(|e| err(format!("{e} (see `reach indexes`)")))?,
            );
            writeln!(
                out,
                "built {} (LCR) in {}",
                svc.name(),
                fmt_duration(svc.build_time())
            )?;
            Some(svc)
        }
    };

    cfg.addr = format!("127.0.0.1:{port}");
    let handle = reach_server::start(Services { plain, lcr }, cfg.clone())?;
    if let Some(pf) = &port_file {
        std::fs::write(pf, handle.addr().to_string()).map_err(|source| CliError::File {
            path: pf.clone(),
            source,
        })?;
    }
    writeln!(
        out,
        "serving {path} on http://{} ({} workers, {} engine threads); \
         POST /query, /batch, /lcr — GET /healthz, /metrics — POST /admin/shutdown to stop",
        handle.addr(),
        cfg.workers,
        threads
    )?;
    out.flush()?;
    handle.join();
    writeln!(out, "server drained and stopped")?;
    Ok(())
}

/// `verify <graph> (--index NAME ...|--all) [--queries N] [--seed S]`
///
/// Rebuilds each chosen index over the graph and runs the invariant
/// audit: a sampled differential against the BFS ground truth,
/// batch-vs-scalar consistency, self-reachability, and the technique's
/// own structural invariants (interval nesting, 2-hop cover soundness
/// and completeness, condensation consistency, …). Labeled graphs
/// additionally audit the LCR indexes against the constrained BFS.
/// Exits nonzero if any audited index reports a violation.
fn cmd_verify(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use reach_core::audit::{AuditConfig, AuditOutcome};
    use reach_labeled::pipeline::lcr_feasible;

    let flags = parse_flags(args)?;
    let [path] = flags.rest.as_slice() else {
        return Err(err(
            "usage: verify <graph> (--index NAME ...|--all) [--queries N] [--seed S]",
        ));
    };
    if flags.indexes.is_empty() && !flags.all {
        return Err(err("verify needs --index NAME (repeatable) or --all"));
    }
    let (g, labeled) = match load_graph(path)? {
        LoadedGraph::Plain(g) => (g, None),
        LoadedGraph::Labeled(lg) => (Arc::new(lg.to_digraph()), Some(lg)),
    };
    let cfg = AuditConfig {
        pairs: flags.queries,
        seed: flags.seed.unwrap_or(AuditConfig::default().seed),
    };
    let opts = BuildOpts::default();
    let prepared = PreparedGraph::new_shared(Arc::clone(&g));
    let plain_known = plain_names();
    let lcr_known = lcr_names();

    let selected: Vec<&str> = if flags.all {
        plain_known
            .iter()
            .copied()
            .chain(if labeled.is_some() {
                lcr_known.clone()
            } else {
                Vec::new()
            })
            .collect()
    } else {
        flags.indexes.iter().map(String::as_str).collect()
    };

    let mut audited = 0usize;
    let mut total_violations = 0usize;
    let mut report = |out: &mut dyn Write, outcome: AuditOutcome| -> Result<(), CliError> {
        audited += 1;
        total_violations += outcome.violations.len();
        if outcome.is_clean() {
            writeln!(
                out,
                "{}: ok ({} pairs checked)",
                outcome.name, outcome.pairs_checked
            )?;
        } else {
            writeln!(
                out,
                "{}: {} violation(s) on {} pairs",
                outcome.name,
                outcome.violations.len(),
                outcome.pairs_checked
            )?;
            for v in &outcome.violations {
                writeln!(out, "  {v}")?;
            }
        }
        Ok(())
    };

    for name in selected {
        if plain_known.contains(&name) {
            if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
                writeln!(
                    out,
                    "{name}: skipped (infeasible at n={}, m={})",
                    g.num_vertices(),
                    g.num_edges()
                )?;
                continue;
            }
            if let Some(outcome) = reach_core::audit::audit_plain(name, &prepared, &opts, &cfg) {
                report(out, outcome)?;
            }
        } else if lcr_known.contains(&name) {
            let Some(lg) = &labeled else {
                writeln!(out, "{name}: skipped ({path} is a plain graph)")?;
                continue;
            };
            if !lcr_feasible(name, lg.num_vertices()) {
                writeln!(
                    out,
                    "{name}: skipped (infeasible at n={})",
                    lg.num_vertices()
                )?;
                continue;
            }
            if let Some(outcome) = reach_labeled::audit_lcr(name, lg, &opts, &cfg) {
                report(out, outcome)?;
            }
        } else {
            return Err(err(format!("unknown index {name:?} (see `reach indexes`)")));
        }
    }
    if total_violations > 0 {
        return Err(err(format!(
            "verify: {total_violations} violation(s) across {audited} audited index(es)"
        )));
    }
    writeln!(out, "verify: {audited} index(es) audited, 0 violations")?;
    Ok(())
}

fn cmd_bench(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    let [path] = flags.rest.as_slice() else {
        return Err(err(
            "usage: bench <graph> [--index NAME ...] [--queries N] [--positive P]",
        ));
    };
    let g = match load_graph(path)? {
        LoadedGraph::Plain(g) => g,
        LoadedGraph::Labeled(lg) => Arc::new(lg.to_digraph()),
    };
    let names: Vec<&str> = if flags.indexes.is_empty() {
        vec!["GRAIL", "BFL", "PLL", "online-BFS"]
    } else {
        flags.indexes.iter().map(String::as_str).collect()
    };
    let known = plain_names();
    for name in &names {
        if !known.contains(name) {
            return Err(err(format!("unknown plain index {name:?}")));
        }
    }
    let mix = query_mix(&g, flags.queries, flags.positive, 7);
    writeln!(
        out,
        "{}: n={} m={} | {} queries, {} reachable",
        path,
        g.num_vertices(),
        g.num_edges(),
        mix.pairs.len(),
        mix.positives
    )?;
    // one PreparedGraph for the whole run: every index shares the
    // condensation, and the "condense" column shows who paid for it
    let prepared = PreparedGraph::new_shared(Arc::clone(&g));
    let opts = BuildOpts::default();
    let mut table = Table::new([
        "index",
        "build",
        "condense",
        "label",
        "entries",
        "bytes",
        "query total",
        "query avg",
    ]);
    for name in names {
        if !plain_feasible(name, g.num_vertices(), g.num_edges()) {
            table.row([
                name.to_string(),
                "(infeasible at this size)".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            continue;
        }
        let (idx, report) = build_plain_with_report(name, &prepared, &opts);
        let (hits, q) = timed(|| mix.pairs.iter().filter(|&&(s, t)| idx.query(s, t)).count());
        assert_eq!(hits, mix.positives, "{name} answered a query wrongly");
        table.row([
            name.to_string(),
            fmt_duration(report.total),
            if report.reused_condensation() {
                "shared".to_string()
            } else {
                fmt_duration(report.condense + report.order)
            },
            fmt_duration(report.label),
            idx.size_entries().to_string(),
            fmt_bytes(idx.size_bytes()),
            fmt_duration(q),
            fmt_duration(q / mix.pairs.len().max(1) as u32),
        ]);
    }
    write!(out, "{}", table.render())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("reach-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_lists_commands() {
        let s = run_to_string(&["help"]).unwrap();
        assert!(s.contains("gen") && s.contains("query") && s.contains("lcr"));
        assert!(run_to_string(&[]).unwrap().contains("commands"));
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run_to_string(&["frobnicate"]).is_err());
    }

    #[test]
    fn gen_stats_query_round_trip() {
        let path = tmp("g1.el");
        let s =
            run_to_string(&["gen", "sparse-dag", "200", "--seed", "3", "--out", &path]).unwrap();
        assert!(s.contains("wrote"));
        let s = run_to_string(&["stats", &path]).unwrap();
        assert!(s.contains("vertices        200"), "{s}");
        let s = run_to_string(&["query", &path, "--index", "BFL", "0", "199", "5", "5"]).unwrap();
        assert!(s.contains("Qr(5, 5) = true"), "{s}");
        assert!(s.contains("built BFL"));
    }

    #[test]
    fn gen_writes_labeled_graphs() {
        let path = tmp("g2.el");
        run_to_string(&["gen", "cyclic", "100", "--labels", "3", "--out", &path]).unwrap();
        let s = run_to_string(&["stats", &path]).unwrap();
        assert!(s.contains("label alphabet  3"), "{s}");
    }

    #[test]
    fn lcr_dispatches_on_constraint_class() {
        let path = tmp("g3.el");
        run_to_string(&[
            "gen",
            "sparse-dag",
            "80",
            "--labels",
            "3",
            "--seed",
            "9",
            "--out",
            &path,
        ])
        .unwrap();
        // alternation → LCR index
        let s = run_to_string(&[
            "lcr",
            &path,
            "--index",
            "P2H+",
            "--constraint",
            "(0|1)*",
            "0",
            "79",
        ])
        .unwrap();
        assert!(s.contains("alternation"), "{s}");
        // concatenation → RLC index
        let s = run_to_string(&["lcr", &path, "--constraint", "(0.1)*", "0", "79"]).unwrap();
        assert!(s.contains("concatenation"), "{s}");
        // general → automaton
        let s = run_to_string(&["lcr", &path, "--constraint", "0*.1", "0", "79"]).unwrap();
        assert!(s.contains("automaton-guided"), "{s}");
    }

    #[test]
    fn lcr_with_named_alphabet() {
        let path = tmp("g4.el");
        run_to_string(&[
            "gen", "cyclic", "60", "--labels", "3", "--seed", "4", "--out", &path,
        ])
        .unwrap();
        let s = run_to_string(&[
            "lcr",
            &path,
            "--alphabet",
            "friendOf,follows,worksFor",
            "--constraint",
            "(friendOf ∪ follows)*",
            "0",
            "59",
        ])
        .unwrap();
        assert!(s.contains("Qr(0, 59"), "{s}");
    }

    #[test]
    fn bench_reports_a_table() {
        let path = tmp("g5.el");
        run_to_string(&["gen", "power-law", "300", "--out", &path]).unwrap();
        let s = run_to_string(&[
            "bench",
            &path,
            "--index",
            "GRAIL",
            "--index",
            "online-BFS",
            "--queries",
            "100",
        ])
        .unwrap();
        assert!(s.contains("GRAIL") && s.contains("online-BFS"), "{s}");
        assert!(s.contains("query avg"));
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(run_to_string(&["stats", "/nonexistent/file"]).is_err());
        assert!(run_to_string(&["gen", "bogus-shape", "10"]).is_err());
        assert!(run_to_string(&["query", "/nonexistent", "--index", "BFL", "0", "1"]).is_err());
        let path = tmp("g6.el");
        run_to_string(&["gen", "sparse-dag", "50", "--out", &path]).unwrap();
        assert!(run_to_string(&["query", &path, "--index", "NotAnIndex", "0", "1"]).is_err());
        assert!(
            run_to_string(&["query", &path, "--index", "BFL", "0"]).is_err(),
            "odd pair"
        );
        assert!(
            run_to_string(&["query", &path, "--index", "BFL", "0", "999"]).is_err(),
            "oob"
        );
        assert!(
            run_to_string(&["lcr", &path, "--constraint", "(0)*", "0", "1"]).is_err(),
            "plain graph rejected for lcr"
        );
    }

    #[test]
    fn witness_prints_paths() {
        let path = tmp("g7.el");
        run_to_string(&[
            "gen",
            "sparse-dag",
            "60",
            "--labels",
            "2",
            "--seed",
            "5",
            "--out",
            &path,
        ])
        .unwrap();
        // unconstrained witness: some pair must be reachable
        let s = run_to_string(&["witness", &path, "0", "59", "0", "0"]).unwrap();
        assert!(s.contains("0 ⇝ 0: 0 (empty path)"), "{s}");
        // constrained witness goes through the classifier
        let s = run_to_string(&["witness", &path, "--constraint", "(0|1)*", "0", "59"]).unwrap();
        assert!(s.contains("⇝ 59"), "{s}");
        // plain graphs are rejected
        let plain = tmp("g8.el");
        run_to_string(&["gen", "sparse-dag", "20", "--out", &plain]).unwrap();
        assert!(run_to_string(&["witness", &plain, "0", "1"]).is_err());
    }

    #[test]
    fn query_batch_file_reports_throughput() {
        let path = tmp("g9.el");
        run_to_string(&["gen", "sparse-dag", "120", "--seed", "6", "--out", &path]).unwrap();
        let batch = tmp("batch9.txt");
        std::fs::write(&batch, "# comment\n0 119\n5 5\n\n10 3\n").unwrap();
        let s = run_to_string(&[
            "query",
            &path,
            "--index",
            "online-BFS",
            "--batch",
            &batch,
            "--threads",
            "4",
        ])
        .unwrap();
        assert!(s.contains("Qr(5, 5) = true"), "{s}");
        assert!(s.contains("batch: 3 queries on 4 thread(s)"), "{s}");
        // same answers as per-pair queries, regardless of thread count
        let single =
            run_to_string(&["query", &path, "--index", "online-BFS", "--batch", &batch]).unwrap();
        let verdicts = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.starts_with("Qr("))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(verdicts(&s), verdicts(&single));
    }

    #[test]
    fn query_batch_errors_are_user_facing() {
        let path = tmp("g10.el");
        run_to_string(&["gen", "sparse-dag", "30", "--out", &path]).unwrap();
        let batch = tmp("batch10.txt");
        std::fs::write(&batch, "0 29\n").unwrap();
        // --batch plus inline pairs is ambiguous
        assert!(
            run_to_string(&["query", &path, "--index", "BFL", "--batch", &batch, "0", "1"])
                .is_err()
        );
        // missing batch file
        assert!(
            run_to_string(&["query", &path, "--index", "BFL", "--batch", "/nonexistent"]).is_err()
        );
        // zero threads rejected
        assert!(run_to_string(&[
            "query",
            &path,
            "--index",
            "BFL",
            "--batch",
            &batch,
            "--threads",
            "0"
        ])
        .is_err());
        // out-of-range vertex in the batch file
        std::fs::write(&batch, "0 999\n").unwrap();
        assert!(run_to_string(&["query", &path, "--index", "BFL", "--batch", &batch]).is_err());
    }

    #[test]
    fn verify_audits_named_indexes() {
        let path = tmp("v1.el");
        run_to_string(&["gen", "cyclic", "150", "--seed", "12", "--out", &path]).unwrap();
        let s = run_to_string(&[
            "verify",
            &path,
            "--index",
            "GRAIL",
            "--index",
            "PLL",
            "--queries",
            "200",
        ])
        .unwrap();
        assert!(s.contains("GRAIL: ok (200 pairs checked)"), "{s}");
        assert!(s.contains("PLL: ok"), "{s}");
        assert!(s.contains("2 index(es) audited, 0 violations"), "{s}");
    }

    #[test]
    fn verify_all_covers_both_registries_on_labeled_graphs() {
        let path = tmp("v2.el");
        run_to_string(&[
            "gen", "cyclic", "120", "--labels", "3", "--seed", "13", "--out", &path,
        ])
        .unwrap();
        let s = run_to_string(&["verify", &path, "--all", "--queries", "100"]).unwrap();
        // a plain technique and an LCR technique both get audited
        assert!(s.contains("GRAIL: ok"), "{s}");
        assert!(s.contains("P2H+: ok"), "{s}");
        assert!(s.contains("0 violations"), "{s}");
    }

    #[test]
    fn verify_errors_are_user_facing() {
        let path = tmp("v3.el");
        run_to_string(&["gen", "sparse-dag", "40", "--out", &path]).unwrap();
        // no selection
        assert!(run_to_string(&["verify", &path]).is_err());
        // unknown index
        assert!(run_to_string(&["verify", &path, "--index", "Nope"]).is_err());
        // LCR index against a plain graph is a skip, not an error
        let s = run_to_string(&["verify", &path, "--index", "P2H+"]).unwrap();
        assert!(s.contains("P2H+: skipped"), "{s}");
    }

    #[test]
    fn indexes_lists_the_taxonomy() {
        let s = run_to_string(&["indexes"]).unwrap();
        assert!(s.contains("GRAIL") && s.contains("P2H+") && s.contains("RLC index"));
    }

    #[test]
    fn load_graph_errors_name_the_path_and_line() {
        // missing file: the path must appear
        let e = load_graph("/nonexistent/graph.el").err().unwrap();
        assert!(matches!(e, CliError::File { .. }));
        assert!(e.to_string().contains("/nonexistent/graph.el"));
        // bad edge line: path AND 1-based line number must appear
        let path = tmp("bad_edge.el");
        std::fs::write(&path, "5\n0 1\n1 bogus\n").unwrap();
        let e = load_graph(&path).err().unwrap();
        assert!(matches!(e, CliError::Graph { .. }));
        let msg = e.to_string();
        assert!(msg.contains(&path), "path missing in {msg:?}");
        assert!(msg.contains("line 3"), "line number missing in {msg:?}");
        // the cause chains through Error::source for `?` composition
        assert!(std::error::Error::source(&e).is_some());
        // labeled variant too
        std::fs::write(&path, "5 2\n0 0 1\n0 9 1\n").unwrap();
        let msg = load_graph(&path).err().unwrap().to_string();
        assert!(msg.contains("line 3"), "{msg:?}");
    }

    #[test]
    fn serve_round_trip_over_http() {
        use reach_server::request_once;
        use std::time::Duration;

        let path = tmp("serve1.el");
        run_to_string(&[
            "gen",
            "sparse-dag",
            "150",
            "--labels",
            "3",
            "--seed",
            "8",
            "--out",
            &path,
        ])
        .unwrap();
        let pf = tmp("serve1.port");
        let _ = std::fs::remove_file(&pf);
        let args: Vec<String> = [
            "serve",
            &path,
            "--index",
            "BFL",
            "--lcr",
            "Landmark index",
            "--port",
            "0",
            "--workers",
            "2",
            "--threads",
            "2",
            "--port-file",
            &pf,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let mut buf = Vec::new();
            run(&args, &mut buf).map(|()| String::from_utf8(buf).unwrap())
        });
        // wait for the port file to appear
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(s) = std::fs::read_to_string(&pf) {
                    if !s.is_empty() {
                        break s;
                    }
                }
                tries += 1;
                assert!(tries < 200, "server never wrote the port file");
                std::thread::sleep(Duration::from_millis(50));
            }
        };
        let t = Duration::from_secs(10);
        assert_eq!(
            request_once(&*addr, t, "GET", "/healthz", "").unwrap().body,
            "ok\n"
        );
        let r = request_once(&*addr, t, "POST", "/query", "0 149").unwrap();
        assert!(r.status == 200 && (r.body == "true\n" || r.body == "false\n"));
        let r = request_once(&*addr, t, "POST", "/lcr", "0 149 *").unwrap();
        assert_eq!(r.status, 200);
        let r = request_once(&*addr, t, "POST", "/batch", "0 1\n2 3\n").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body.lines().count(), 2);
        let metrics = request_once(&*addr, t, "GET", "/metrics", "").unwrap().body;
        assert!(metrics.contains("reach_build_info{index=\"BFL\""));
        // graceful shutdown unblocks the serve command
        request_once(&*addr, t, "POST", "/admin/shutdown", "").unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("built BFL"), "{out}");
        assert!(out.contains("serving"), "{out}");
        assert!(out.contains("server drained and stopped"), "{out}");
    }

    #[test]
    fn serve_rejects_bad_configs() {
        let path = tmp("serve2.el");
        run_to_string(&["gen", "sparse-dag", "30", "--out", &path]).unwrap();
        // --lcr on a plain graph
        let e = run_to_string(&["serve", &path, "--lcr", "P2H+", "--port", "0"]).unwrap_err();
        assert!(e.to_string().contains("labeled"), "{e}");
        // unknown index
        let e = run_to_string(&["serve", &path, "--index", "Nope", "--port", "0"]).unwrap_err();
        assert!(e.to_string().contains("Nope"), "{e}");
        // zero workers, missing graph, unknown flag
        assert!(run_to_string(&["serve", &path, "--workers", "0"]).is_err());
        assert!(run_to_string(&["serve"]).is_err());
        assert!(run_to_string(&["serve", &path, "--frob"]).is_err());
    }
}
