//! `reach` — the command-line front end of the reachability workspace.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match reach_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `reach help` for usage");
            ExitCode::FAILURE
        }
    }
}
